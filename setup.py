"""Setuptools shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  ``python setup.py develop`` provides the same editable
install through the legacy egg-link path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Micro-benchmark — batched full-ranking evaluation throughput.

The full-ranking protocol (score *all* items per test user, cut top-K,
average Recall/NDCG) runs every ``evaluation.every`` rounds inside every
training run, so after the engine batched local training and the serving
tier batched queries, the per-user evaluation loop was the last Python
hot loop on the round path.  ``RankingEvaluator.evaluate`` now scores
users in memory-bounded chunks through the shared cohort scorer
(:mod:`repro.eval.scoring`), ranks each chunk with one vectorized
partition/sort and grades the ``(users, K)`` matrix with boolean
relevance tables.

This bench measures the per-user reference path (``batch_size=None``)
against the batched path at 100 / 300 test users and asserts the
acceptance bar: **>= 5x at 300 users**.  The two paths must also agree
``==`` — the batched evaluator is an execution change, not a protocol
change.
"""

from __future__ import annotations

import time

from conftest import SEED, print_table

from repro.data import debug_dataset
from repro.eval import RankingEvaluator
from repro.models.factory import create_model
from repro.utils import RngFactory

USER_COUNTS = (100, 300)
ASSERTED_USERS = 300
MIN_SPEEDUP = 5.0

NUM_USERS = 800
NUM_ITEMS = 2000
EMBEDDING_DIM = 32
TOP_K = 20
BATCH_SIZE = 128


def _build():
    rngs = RngFactory(SEED)
    dataset = debug_dataset(
        rngs.spawn("eval-data"), num_users=NUM_USERS, num_items=NUM_ITEMS,
        num_interactions=16000,
    )
    model = create_model(
        "mf", num_users=NUM_USERS, num_items=NUM_ITEMS,
        embedding_dim=EMBEDDING_DIM, rng=rngs.spawn("eval-model"),
    )
    evaluator = RankingEvaluator(dataset, k=TOP_K)
    return evaluator, model


def _seconds(evaluator, model, max_users: int, batch_size, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        evaluator.evaluate(model, max_users=max_users, batch_size=batch_size)
        best = min(best, time.perf_counter() - start)
    return best


def test_eval_throughput(benchmark):
    evaluator, model = _build()

    # Warm up both code paths (and check the execution contract: the
    # batched evaluator returns the *same* RankingResult, floats and all).
    warm_users = 32
    assert evaluator.evaluate(
        model, max_users=warm_users, batch_size=BATCH_SIZE
    ) == evaluator.evaluate(model, max_users=warm_users, batch_size=None)

    rows = []
    speedups = {}
    for count in USER_COUNTS:
        serial_s = _seconds(evaluator, model, count, batch_size=None)
        batched_s = _seconds(evaluator, model, count, batch_size=BATCH_SIZE, repeats=3)
        speedups[count] = serial_s / batched_s
        rows.append([
            count,
            f"{count / serial_s:,.0f} users/s",
            f"{count / batched_s:,.0f} users/s",
            f"{speedups[count]:.1f}x",
        ])

    benchmark.pedantic(
        lambda: _seconds(evaluator, model, ASSERTED_USERS, batch_size=BATCH_SIZE),
        rounds=1,
        iterations=1,
    )

    print_table(
        f"Full-ranking evaluation throughput (Recall/NDCG@{TOP_K}), "
        "per-user loop vs batched evaluator",
        ["#users", "per-user", "batched", "speedup"],
        rows,
    )
    assert speedups[ASSERTED_USERS] >= MIN_SPEEDUP, (
        f"batched evaluation must be >= {MIN_SPEEDUP}x the per-user loop at "
        f"{ASSERTED_USERS} users, measured {speedups[ASSERTED_USERS]:.1f}x"
    )

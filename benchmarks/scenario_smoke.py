"""CI smoke for dynamic-federation scenarios: run a fault, dump telemetry.

Runs one short faulted experiment (the fault preset named on the command
line) for both a prediction-transmission trainer (``ptf``) and a
parameter-transmission baseline (``fcf``), and writes the participation
telemetry — the per-round ``selected`` / ``completed`` / ``dropped`` /
``straggled`` / ``stale_applied`` counters plus the run totals and final
ranking metrics — as JSON.  The CI ``scenario-smoke`` job runs the preset
matrix under both tensor backends and uploads each leg's JSON as a
workflow artifact, so participation under faults is inspectable per
commit without rerunning anything.

Usage::

    PYTHONPATH=src python benchmarks/scenario_smoke.py <fault> [output.json]

where ``<fault>`` is one of ``churn``, ``straggler-sync``,
``straggler-async`` or ``everything``.
"""

from __future__ import annotations

import json
import os
import sys

import repro
from repro.scenario import PARTICIPATION_KEYS

SEED = 2024
ROUNDS = 6

#: Same convention as the test suite: REPRO_BACKEND selects the tensor
#: backend the runs compute under (default: the float64 reference).
BACKEND = os.environ.get("REPRO_BACKEND", "numpy")

FAULTS = {
    "churn": {"dropout": 0.2},
    "straggler-sync": {"deadline": 1.0, "latency_range": (0.5, 2.0)},
    "straggler-async": {
        "deadline": 1.0,
        "latency_range": (0.5, 2.5),
        "aggregation": "async",
        "staleness_alpha": 0.5,
        "max_staleness": 2,
    },
    "everything": {
        "dropout": 0.2,
        "deadline": 1.0,
        "latency_range": (0.5, 2.5),
        "aggregation": "async",
        "user_arrival_fraction": 0.3,
        "user_arrival_rounds": 3,
        "item_arrival_fraction": 0.2,
        "item_arrival_rounds": 3,
    },
}


def run_one(trainer: str, fault: str) -> dict:
    spec = repro.ExperimentSpec(
        trainer=trainer,
        seed=SEED,
        backend=BACKEND,
        model={"server_model": "mf", "client_model": "mf", "embedding_dim": 8},
        protocol={"rounds": ROUNDS, "client_local_epochs": 1, "server_epochs": 1},
        evaluation={"k": 10, "every": ROUNDS, "max_users": 32},
        scenario=FAULTS[fault],
    )
    result = repro.run(spec)  # synthetic dataset seeded from spec.seed
    rounds = [
        {"round": record.round_index,
         **{key: int(record.metrics[key]) for key in PARTICIPATION_KEYS}}
        for record in result.history
        if "selected" in record.metrics
    ]
    return {
        "trainer": trainer,
        "participation": result.participation.to_dict(),
        "completion_rate": result.participation.completion_rate,
        "rounds": rounds,
        "final": result.final.as_dict(),
        "duration_seconds": result.duration_seconds,
    }


def main(argv) -> None:
    fault = argv[1] if len(argv) > 1 else "everything"
    if fault not in FAULTS:
        raise SystemExit(f"unknown fault {fault!r}; choose from {sorted(FAULTS)}")
    output = argv[2] if len(argv) > 2 else f"participation-{fault}.json"
    payload = {
        "fault": fault,
        "scenario": FAULTS[fault],
        "backend": BACKEND,
        "seed": SEED,
        "runs": [run_one(trainer, fault) for trainer in ("ptf", "fcf")],
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    for run in payload["runs"]:
        totals = run["participation"]
        print(f"{fault} [{payload['backend']}] {run['trainer']}: "
              f"{totals['completed']}/{totals['selected']} on time, "
              f"{totals['dropped']} dropped, {totals['straggled']} straggled, "
              f"{totals['stale_applied']} stale applied "
              f"({run['duration_seconds']:.1f}s)")
    print(f"wrote {output}")


if __name__ == "__main__":
    main(sys.argv)

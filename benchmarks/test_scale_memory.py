"""Peak-memory benchmark for the sparse/sharded execution path.

The bounded-memory claim behind ``payload="sparse"`` + ``shard_size``:
a training round's transient memory is proportional to the *shard*, not
the cohort, so scaling the federation from thousands to tens of thousands
of clients leaves the peak resident set essentially flat (the only
per-client state that remains is the private user-embedding row, a few
hundred bytes each).

Two measurements back this up:

* ``test_peak_rss_flat_across_cohort_sizes`` runs a full federated round
  at 2,500 and at 10,000 clients in *fresh subprocesses* (so each
  measurement sees a clean interpreter) and compares their
  ``ru_maxrss``.  It also writes the memory telemetry as JSON — the CI
  ``scale-smoke`` job uploads that file as a workflow artifact (set
  ``SCALE_MEMORY_JSON`` to choose the path).
* ``test_sharding_bounds_transient_allocations`` uses ``tracemalloc``
  in-process to show the sharded round's allocation peak is a small
  fraction of the whole-cohort round's on the same federation.

The module is also runnable directly, printing one cohort's telemetry::

    PYTHONPATH=src python benchmarks/test_scale_memory.py 10000
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.data import debug_dataset
from repro.engine import EngineSpec
from repro.federated import FCF, FederatedConfig
from repro.utils import RngFactory

SEED = 2024
NUM_ITEMS = 400
EMBEDDING_DIM = 16
SHARD_SIZE = 256

#: Same convention as the test suite and scenario_smoke.py.
BACKEND = os.environ.get("REPRO_BACKEND", "numpy")

#: Cohort sizes for the flat-envelope comparison.  The upper size is the
#: acceptance floor: one real federated round at >= 10k clients.
COHORT_SIZES = (2_500, 10_000)

#: Allowed peak-RSS growth over a 4x client increase.  The interpreter
#: baseline dominates both runs; per-client state is ~KBs, so anything
#: close to linear growth (4.0) means the cohort leaked into the round.
MAX_RSS_RATIO = 1.5


def _scale_config(shard_size: int = SHARD_SIZE) -> FederatedConfig:
    return FederatedConfig(
        rounds=1,
        local_epochs=1,
        embedding_dim=EMBEDDING_DIM,
        seed=SEED,
        backend=BACKEND,
        engine=EngineSpec(
            scheduler="batched", payload="sparse", shard_size=shard_size
        ),
    )


def _scale_dataset(num_clients: int):
    return debug_dataset(
        RngFactory(SEED).spawn("scale-memory"),
        num_users=num_clients,
        num_items=NUM_ITEMS,
        num_interactions=3 * num_clients,
    )


def run_cohort(num_clients: int) -> dict:
    """One sparse+sharded federated round; returns this process's telemetry.

    Meant to run in a fresh interpreter: ``ru_maxrss`` is a high-water
    mark for the whole process lifetime, so a reused interpreter would
    report whatever earlier work peaked at.
    """
    dataset = _scale_dataset(num_clients)
    driver = FCF(dataset, _scale_config())
    started = time.perf_counter()
    driver.fit()
    elapsed = time.perf_counter() - started
    upload_bytes = sum(
        record.num_bytes
        for record in driver.ledger.records
        if record.direction == "upload"
    )
    return {
        "num_clients": num_clients,
        "num_items": NUM_ITEMS,
        "shard_size": SHARD_SIZE,
        "backend": BACKEND,
        # Linux reports ru_maxrss in KiB (macOS: bytes; CI runs Linux).
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "round_seconds": round(elapsed, 3),
        "upload_bytes": upload_bytes,
        "upload_bytes_per_client": round(upload_bytes / num_clients, 1),
    }


def _run_cohort_subprocess(num_clients: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    completed = subprocess.run(
        [sys.executable, __file__, str(num_clients)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        timeout=900,
    )
    return json.loads(completed.stdout.splitlines()[-1])


def test_peak_rss_flat_across_cohort_sizes():
    """A 4x larger cohort must not move peak RSS by more than 50%."""
    runs = [_run_cohort_subprocess(size) for size in COHORT_SIZES]
    small, large = runs[0], runs[-1]
    ratio = large["peak_rss_kb"] / small["peak_rss_kb"]
    telemetry = {
        "backend": BACKEND,
        "scheduler": "batched",
        "payload": "sparse",
        "shard_size": SHARD_SIZE,
        "max_rss_ratio_allowed": MAX_RSS_RATIO,
        "rss_ratio": round(ratio, 3),
        "runs": runs,
    }
    artifact = os.environ.get("SCALE_MEMORY_JSON")
    if artifact:
        Path(artifact).write_text(json.dumps(telemetry, indent=2) + "\n")
    print(json.dumps(telemetry, indent=2))
    assert large["num_clients"] >= 10_000
    assert ratio <= MAX_RSS_RATIO, (
        f"peak RSS grew {ratio:.2f}x from {small['num_clients']} to "
        f"{large['num_clients']} clients (limit {MAX_RSS_RATIO}x): "
        f"{small['peak_rss_kb']} -> {large['peak_rss_kb']} KiB"
    )


def _allocation_peak(shard_size: int, dataset) -> int:
    driver = FCF(
        dataset,
        FederatedConfig(
            rounds=1,
            local_epochs=1,
            embedding_dim=64,
            seed=SEED,
            backend=BACKEND,
            engine=EngineSpec(
                scheduler="batched", payload="sparse", shard_size=shard_size
            ),
        ),
    )
    tracemalloc.start()
    try:
        driver.fit()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_sharding_bounds_transient_allocations():
    """Sharded rounds allocate a small fraction of whole-cohort rounds.

    The batched scheduler stacks one model replica (parameters, gradients
    and optimizer state) per client in a group; ``shard_size`` caps the
    replica count, so the allocation peak shrinks toward the fixed
    dataset/model baseline.  Unsharded runs are already bounded by the
    largest plan-shape group (a few hundred clients here), so a small
    shard is asserted loosely: at least 3x below the whole-cohort peak.
    """
    num_clients = 2_000
    dataset = debug_dataset(
        RngFactory(SEED).spawn("scale-alloc"),
        num_users=num_clients,
        num_items=300,
        num_interactions=3 * num_clients,
    )
    whole_cohort = _allocation_peak(0, dataset)
    sharded = _allocation_peak(16, dataset)
    assert sharded * 3 < whole_cohort, (
        f"sharded peak {sharded / 1e6:.1f}MB vs "
        f"whole-cohort peak {whole_cohort / 1e6:.1f}MB"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <num_clients>")
    print(json.dumps(run_cohort(int(sys.argv[1]))))

"""Micro-benchmark — tensor-backend round throughput (numpy vs numpy32).

The ``numpy32`` backend computes in float32 and applies fused in-place
optimizer kernels, halving memory traffic through every hot loop the
batched engine runs.  This bench trains PTF-FedRec end to end (local
training + upload + server training + dispersal, batched scheduler) under
both backends at a serving-sized configuration — 200 clients, a 400-item
catalogue, 64-dim embeddings, a (128, 64, 32) client tower — and asserts
the acceptance bar: **>= 1.5x end-to-end round throughput**.

Unlike the scheduler benches, the two sides here are *not* bit-identical:
the fast backend trades the float64 reference arithmetic for speed (the
metrics stay statistically equivalent; see tests/test_tensor_backend.py).
The measured speedup lands in the benchmark JSON artifact via
``extra_info`` so CI tracks it across commits.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import print_table

from repro.data import debug_dataset
from repro.experiments import ExperimentSpec
from repro.experiments.registry import get_trainer
from repro.utils import RngFactory

NUM_USERS = 200
NUM_ITEMS = 400
EMBEDDING_DIM = 64
ROUNDS = 2
MIN_SPEEDUP = 1.5


def _spec(backend: str, rounds: int = ROUNDS) -> ExperimentSpec:
    return ExperimentSpec.from_flat(
        trainer="ptf",
        seed=9,
        backend=backend,
        rounds=rounds,
        embedding_dim=EMBEDDING_DIM,
        client_mlp_layers=(128, 64, 32),
        client_local_epochs=3,
        alpha=20,
        scheduler="batched",
    )


def _dataset(num_users: int = NUM_USERS):
    return debug_dataset(
        RngFactory(7).spawn("backend-bench"),
        num_users=num_users,
        num_items=NUM_ITEMS,
        num_interactions=num_users * 12,
    )


def _fit_seconds(backend: str, num_users: int = NUM_USERS,
                 rounds: int = ROUNDS) -> float:
    adapter = get_trainer("ptf")(_spec(backend, rounds), _dataset(num_users))
    start = time.perf_counter()
    adapter.fit()
    return time.perf_counter() - start


def test_backend_throughput(benchmark):
    # Warm up allocators / BLAS threads once with a small run.
    _fit_seconds("numpy32", num_users=30, rounds=1)

    reference_s = _fit_seconds("numpy")
    fast_s = _fit_seconds("numpy32")
    speedup = reference_s / fast_s

    benchmark.extra_info["reference_seconds"] = round(reference_s, 3)
    benchmark.extra_info["fast_seconds"] = round(fast_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(
        lambda: _fit_seconds("numpy32", num_users=60, rounds=1),
        rounds=1,
        iterations=1,
    )

    per_round = ROUNDS
    print_table(
        "End-to-end PTF-FedRec round throughput by tensor backend "
        f"({NUM_USERS} clients, {NUM_ITEMS} items, dim {EMBEDDING_DIM})",
        ["backend", "dtype", "seconds/round", "rounds/s", "speedup"],
        [
            ["numpy", "float64", f"{reference_s / per_round:.2f}",
             f"{per_round / reference_s:.2f}", "1.0x"],
            ["numpy32", "float32", f"{fast_s / per_round:.2f}",
             f"{per_round / fast_s:.2f}", f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"numpy32 backend must deliver >= {MIN_SPEEDUP}x end-to-end round "
        f"throughput over the float64 reference, measured {speedup:.2f}x"
    )

"""CI smoke for the sweep orchestrator: cache contract + telemetry artifact.

    python benchmarks/sweep_smoke.py [backend] [out.json]

Runs a 2x2 grid (alpha x seed, 2-round PTF on the debug dataset) twice
against one fresh store and asserts the orchestrator's cache contract:

* first invocation executes all 4 runs (nothing pre-cached),
* second invocation executes **zero** runs — every fingerprint hits the
  cache — and reproduces the same results,

then writes both invocations' telemetry reports to ``out.json`` (the CI
``sweep-smoke`` job uploads it as a workflow artifact).  ``backend``
pins every run's tensor backend (default ``numpy``), so the job's matrix
exercises the fingerprint separation between backends too.

Exit codes: 0 — contract holds; 1 — it does not.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.sweep import SweepSpec, run_sweep

GRID = {"alpha": [10, 30], "seed": [0, 1]}


def build_sweep(backend: str) -> SweepSpec:
    return SweepSpec.from_grid(
        "sweep-smoke",
        base={
            "trainer": "ptf",
            "backend": backend,
            "protocol": {"rounds": 2},
            "evaluation": {"audit_privacy": False},
        },
        grid=GRID,
        dataset={"source": "debug", "seed": 7},
    )


def comparable(outcome):
    return {
        run_id: {k: v for k, v in result.to_dict().items() if k != "duration_seconds"}
        for run_id, result in outcome.results.items()
    }


def main(argv) -> int:
    backend = argv[1] if len(argv) > 1 else "numpy"
    out_path = Path(argv[2]) if len(argv) > 2 else Path(f"sweep-smoke-{backend}.json")

    sweep = build_sweep(backend)
    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as store:
        start = time.perf_counter()
        first = run_sweep(sweep, store=store, progress=print)
        first_wall = time.perf_counter() - start

        start = time.perf_counter()
        second = run_sweep(sweep, store=store, progress=print)
        second_wall = time.perf_counter() - start

    failures = []
    if first.report.executed != len(sweep.runs):
        failures.append(
            f"first invocation executed {first.report.executed} of {len(sweep.runs)} runs"
        )
    if second.report.executed != 0:
        failures.append(
            f"second invocation executed {second.report.executed} runs; expected 0"
        )
    if second.report.cache_hits != len(sweep.runs):
        failures.append(
            f"second invocation hit cache {second.report.cache_hits} times; "
            f"expected {len(sweep.runs)}"
        )
    if comparable(second) != comparable(first):
        failures.append("cached results differ from executed results")

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps({
        "backend": backend,
        "first": {**first.report.to_dict(), "invocation_wall_seconds": first_wall},
        "second": {**second.report.to_dict(), "invocation_wall_seconds": second_wall},
        "contract_failures": failures,
    }, indent=2), encoding="utf-8")
    print(f"first:  {first.report.summary()}")
    print(f"second: {second.report.summary()}")
    print(f"telemetry written to {out_path}")

    if failures:
        for failure in failures:
            print(f"CONTRACT VIOLATION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation section at a reduced scale (miniature statistical twins of the
datasets, fewer global rounds, smaller embeddings) so the whole suite runs
on a single CPU core.  The *shape* of each result — which method wins, by
roughly what factor, where the trends bend — is the reproduction target;
absolute values are recorded against the paper's numbers in
EXPERIMENTS.md.

The harness is built on the unified experiment API: every paradigm is
described by a :class:`repro.ExperimentSpec` (``mini_spec`` applies the
mini-scale defaults) and dispatched through the trainer registry, so the
same helper drives PTF-FedRec, the parameter-transmission baselines and
centralized training.

All experiment work runs exactly once per benchmark via
``benchmark.pedantic(..., rounds=1, iterations=1)``; the printed tables are
the real deliverable, the timing is incidental.

The table/figure benchmarks that sweep many experiments (Table III,
Table IV, Figure 4) run through :mod:`repro.sweep` (see
``benchmarks/sweeps.py``): each experiment is a fingerprint-cached sweep
run, so identical experiments shared between benchmarks train once per
session, and ``benchmarks/paper_artifacts.py`` regenerates every artifact
from the same sweep definitions.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Iterable, Sequence

import pytest

from repro.data import MINI_SPECS, InteractionDataset, generate_dataset
from repro.experiments import ExperimentSpec, create_trainer, run
from repro.federated import FederatedConfig
from repro.sweep import ArtifactStore, DatasetSpec
from repro.utils import RngFactory

#: Evaluation depth used throughout (the paper reports Recall@20 / NDCG@20).
TOP_K = 20

#: Global seed for every benchmark.
SEED = 2024

#: Mini datasets stand in for the paper's three datasets (see DESIGN.md).
DATASET_NAMES = ("movielens-mini", "steam-mini", "gowalla-mini")

#: Maps the mini dataset names onto the paper's dataset names for display.
PAPER_NAMES = {
    "movielens-mini": "MovieLens-100K",
    "steam-mini": "Steam-200K",
    "gowalla-mini": "Gowalla",
}


def build_dataset(name: str, seed: int = SEED) -> InteractionDataset:
    """Create the miniature statistical twin for one of the paper datasets."""
    spec = MINI_SPECS[name]
    return generate_dataset(spec, rng=RngFactory(seed).spawn(f"dataset-{name}"))


def mini_dataset(name: str, seed: int = SEED) -> DatasetSpec:
    """The sweep-runner recipe for :func:`build_dataset` (same derivation,
    so sweep runs land on the exact datasets the hand-rolled loops used)."""
    return DatasetSpec(source="mini", name=name, seed=seed)


def mini_spec(trainer: str = "ptf", **overrides) -> ExperimentSpec:
    """An :class:`ExperimentSpec` adapted to the miniature datasets.

    The paper's full-scale settings (batch 1024, learning rate 0.001, 20
    rounds) assume ~100k uploaded predictions per round; at mini scale the
    server would only take a handful of optimizer steps, so the benchmarks
    shrink the server batch and raise the learning rate while keeping every
    protocol-level hyper-parameter (α, β, γ, λ, µ, negative ratio) at the
    paper's values.  ``overrides`` are flat field names (``alpha=50``,
    ``dispersal_mode="random"``), exactly like the old config kwargs.
    """
    defaults = dict(
        rounds=10,
        client_local_epochs=3,
        server_epochs=3,
        client_batch_size=64,
        server_batch_size=128,
        learning_rate=0.01,
        embedding_dim=16,
        client_mlp_layers=(32, 16, 8),
        server_num_layers=3,
        alpha=30,
        k=TOP_K,
        seed=SEED,
    )
    defaults.update(overrides)
    seed = defaults.pop("seed")
    return ExperimentSpec.from_flat(trainer=trainer, seed=seed, **defaults)


def mini_ptf_config(**overrides) -> ExperimentSpec:
    """Mini-scale PTF-FedRec spec (accepted anywhere PTFConfig used to be)."""
    return mini_spec("ptf", **overrides)


def mini_federated_config(**overrides) -> FederatedConfig:
    """Configuration for directly constructed parameter-transmission baselines."""
    defaults = dict(
        rounds=10,
        local_epochs=2,
        local_learning_rate=0.05,
        embedding_dim=16,
        negative_ratio=4,
        seed=SEED,
    )
    defaults.update(overrides)
    return FederatedConfig(**defaults)


# ----------------------------------------------------------------------
# Experiment runners shared by several benchmarks
# ----------------------------------------------------------------------
#: Per-model centralized training tweaks at mini scale: NeuMF and NGCF need
#: a little L2 to avoid overfitting the tiny datasets, while LightGCN (no
#: transformation weights) trains longer without weight decay.
_CENTRALIZED_OVERRIDES = {
    "neumf": {"rounds": 30, "l2_weight": 5e-4},
    "ngcf": {"rounds": 30, "l2_weight": 5e-4},
    "lightgcn": {"rounds": 60, "l2_weight": 0.0},
    "mf": {"rounds": 30, "l2_weight": 0.0},
}


def centralized_spec(model_name: str, **overrides) -> ExperimentSpec:
    """Mini-scale centralized training spec for one model architecture."""
    settings = dict(
        rounds=30,
        server_batch_size=256,
        client_mlp_layers=(64, 32, 16),
    )
    settings.update(_CENTRALIZED_OVERRIDES.get(model_name.lower(), {}))
    settings.update(overrides)
    return mini_spec("centralized", server_model=model_name, **settings)


def baseline_spec(name: str, **overrides) -> ExperimentSpec:
    """Mini-scale spec for one parameter-transmission baseline (FCF/FedMF/MetaMF)."""
    settings = dict(client_local_epochs=2, local_learning_rate=0.05)
    settings.update(overrides)
    return mini_spec(name.lower(), **settings)


def ptf_spec(server_model: str, **overrides) -> ExperimentSpec:
    """Mini-scale PTF-FedRec spec with the given hidden server model."""
    return mini_spec("ptf", server_model=server_model, **overrides)


def run_centralized(dataset: InteractionDataset, model_name: str) -> Dict[str, float]:
    """Train a centralized model and return Recall@20 / NDCG@20."""
    result = run(centralized_spec(model_name), dataset)
    return {"Recall@20": result.final.recall, "NDCG@20": result.final.ndcg}


def run_federated_baseline(dataset: InteractionDataset, name: str):
    """Train one parameter-transmission baseline; returns (metrics, system)."""
    trainer = create_trainer(baseline_spec(name), dataset)
    trainer.fit()
    result = trainer.evaluate(k=TOP_K)
    return {"Recall@20": result.recall, "NDCG@20": result.ndcg}, trainer.system


def run_ptf(dataset: InteractionDataset, server_model: str, **spec_overrides):
    """Train PTF-FedRec with the given server model; returns (metrics, system)."""
    trainer = create_trainer(ptf_spec(server_model, **spec_overrides), dataset)
    trainer.fit()
    result = trainer.evaluate(k=TOP_K)
    return {"Recall@20": result.recall, "NDCG@20": result.ndcg}, trainer.system


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------
def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned text table (the benchmark's real output)."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


@pytest.fixture(scope="session")
def mini_datasets() -> Dict[str, InteractionDataset]:
    """The three miniature datasets, built once per benchmark session."""
    return {name: build_dataset(name) for name in DATASET_NAMES}


# ----------------------------------------------------------------------
# Sweep-runner infrastructure
# ----------------------------------------------------------------------
def make_sweep_store(tmp_root: str = None) -> ArtifactStore:
    """The artifact store the sweep-backed benchmarks share.

    Defaults to a *fresh per-session* directory: sweep fingerprints cover
    the spec, backend and dataset but not the training code, so a store
    that outlived a code change would serve stale numbers.  Exporting
    ``REPRO_SWEEP_STORE=<dir>`` opts into a persistent store (instant
    re-runs while iterating on benchmark *presentation*, not training
    code) — the same knob ``benchmarks/paper_artifacts.py`` uses.
    """
    persistent = os.environ.get("REPRO_SWEEP_STORE")
    if persistent:
        return ArtifactStore(persistent)
    return ArtifactStore(tmp_root or tempfile.mkdtemp(prefix="repro-sweep-"))


@pytest.fixture(scope="session")
def sweep_store(tmp_path_factory) -> ArtifactStore:
    """Session-scoped sweep cache: benchmarks sharing a run (same
    fingerprint) train it once; ``REPRO_SWEEP_STORE`` makes it persistent."""
    return make_sweep_store(str(tmp_path_factory.mktemp("sweep-artifacts")))

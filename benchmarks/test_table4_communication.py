"""Table IV — average per-client per-round communication cost.

The paper's headline efficiency result: FCF/MetaMF cost ~0.5-3 MB per
client per round and FedMF tens of MB, while PTF-FedRec moves only a few
KB of prediction triples.  The bench reports both the analytic cost at the
paper's full dataset sizes and the measured ledger values from short runs
on the miniature datasets.

The measured half runs as one :mod:`repro.sweep` sweep (``sweeps.py``,
shared with ``paper_artifacts.py``), its ``communication`` stage
aggregating every run's ledger totals; the analytic half is arithmetic and
needs no training at all.
"""

from __future__ import annotations

from conftest import print_table
from sweeps import table4_costs, table4_rows, table4_sweep

from repro.data import PAPER_SPECS
from repro.federated import (
    dense_parameter_bytes,
    encrypted_parameter_bytes,
    prediction_triple_bytes,
)
from repro.federated.fedmf import DEFAULT_CIPHERTEXT_BYTES
from repro.sweep import run_sweep

EMBEDDING_DIM = 32  # the paper's embedding size, used for the analytic rows


def _analytic_rows():
    rows = []
    for key, spec in PAPER_SPECS.items():
        item_values = spec.num_items * EMBEDDING_DIM
        meta_values = item_values + 2 * (EMBEDDING_DIM * EMBEDDING_DIM + EMBEDDING_DIM)
        average_profile = spec.num_interactions / spec.num_users
        # A client uploads roughly beta*positives*(1+gamma) triples and
        # receives alpha=30 back; use the expected values of the paper's
        # beta/gamma ranges (0.55 and 2.5).
        upload_triples = 0.55 * 0.8 * average_profile * (1 + 2.5)
        download_triples = 30
        rows.append([
            key,
            f"{2 * dense_parameter_bytes(item_values) / 2**20:.2f} MB",
            f"{2 * encrypted_parameter_bytes(item_values, DEFAULT_CIPHERTEXT_BYTES) / 2**20:.2f} MB",
            f"{2 * dense_parameter_bytes(meta_values) / 2**20:.2f} MB",
            f"{prediction_triple_bytes(int(upload_triples + download_triples)) / 2**10:.2f} KB",
        ])
    return rows


def _measured_rows(sweep_store):
    outcome = run_sweep(table4_sweep(), store=sweep_store)
    return table4_rows(table4_costs(outcome.stages["communication"]))


def test_table4_communication_costs(benchmark, sweep_store):
    analytic, measured = benchmark.pedantic(
        lambda: (_analytic_rows(), _measured_rows(sweep_store)), rounds=1, iterations=1
    )
    print_table(
        "Table IV (analytic, paper-scale datasets, dim=32)",
        ["Dataset", "FCF", "FedMF (HE)", "MetaMF", "PTF-FedRec"],
        analytic,
    )
    print_table(
        "Table IV (measured on mini datasets, per client per round)",
        ["Dataset", "FCF", "FedMF (HE)", "MetaMF", "PTF-FedRec", "best baseline / PTF"],
        measured,
    )
    # Shape check: PTF-FedRec must be at least an order of magnitude cheaper
    # than every parameter-transmission baseline on every dataset.
    for row in measured:
        ratio = float(row[-1].rstrip("x"))
        assert ratio >= 10

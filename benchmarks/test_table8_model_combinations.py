"""Table VIII — NDCG@20 for every client-model x server-model combination.

Paper observations: (1) stronger server models help regardless of the
client model (horizontal comparison), and (2) the simplest client model
(NeuMF) is the best choice because each client has too little data for a
graph model over its one-hop ego graph (vertical comparison).  The paper
reports MovieLens-100K; the bench uses its miniature twin.
"""

from __future__ import annotations

import pytest

from conftest import build_dataset, print_table, run_ptf

CLIENT_MODELS = ("neumf", "ngcf", "lightgcn")
SERVER_MODELS = ("neumf", "ngcf", "lightgcn")
COMBINATION_ROUNDS = 8


def _run():
    dataset = build_dataset("movielens-mini")
    grid = {}
    for client_model in CLIENT_MODELS:
        for server_model in SERVER_MODELS:
            metrics, _ = run_ptf(
                dataset,
                server_model,
                client_model=client_model,
                rounds=COMBINATION_ROUNDS,
            )
            grid[(client_model, server_model)] = metrics["NDCG@20"]
    return grid


@pytest.mark.benchmark(group="table8")
def test_table8_model_combinations(benchmark):
    grid = benchmark.pedantic(_run, rounds=1, iterations=1)
    header = ["Client \\ Server"] + [name.upper() for name in SERVER_MODELS]
    rows = []
    for client_model in CLIENT_MODELS:
        rows.append(
            [client_model.upper()]
            + [grid[(client_model, server_model)] for server_model in SERVER_MODELS]
        )
    print_table(
        "Table VIII — client x server model combinations (MovieLens mini, NDCG@20)",
        header,
        rows,
    )

    # Shape check: with the standard NeuMF client, a graph-based server is
    # at least as good as a NeuMF server (the paper's horizontal finding).
    neumf_client = {server: grid[("neumf", server)] for server in SERVER_MODELS}
    assert max(neumf_client["ngcf"], neumf_client["lightgcn"]) >= 0.95 * neumf_client["neumf"]

"""Table V — Top Guess Attack F1 and model NDCG under each defense.

Paper shape: without any defense the curious server recovers the client's
positives almost perfectly (F1 ≈ 0.97+); LDP only partially hides them and
costs utility; sampling cuts the attack to ~0.5 F1 at almost no utility
cost; sampling + swapping pushes it down further (~0.4).
"""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, PAPER_NAMES, print_table
from privacy_common import DEFENSES, DEFENSE_LABELS, defense_sweep


@pytest.mark.benchmark(group="table5")
def test_table5_privacy_defenses(benchmark):
    results = benchmark.pedantic(
        lambda: {name: defense_sweep(name) for name in DATASET_NAMES},
        rounds=1,
        iterations=1,
    )
    header = ["Defense"]
    for name in DATASET_NAMES:
        header.extend([f"{PAPER_NAMES[name]} F1", f"{PAPER_NAMES[name]} NDCG@20"])
    rows = []
    for defense in DEFENSES:
        row = [DEFENSE_LABELS[defense]]
        for name in DATASET_NAMES:
            row.extend([results[name][defense]["F1"], results[name][defense]["NDCG@20"]])
        rows.append(row)
    print_table("Table V — privacy-preserving upload construction", header, rows)

    for name in DATASET_NAMES:
        sweep = results[name]
        # The undefended upload must leak positives almost perfectly.
        assert sweep["none"]["F1"] > 0.9, name
        # Sampling must cut the attack down substantially.
        assert sweep["sampling"]["F1"] < 0.75 * sweep["none"]["F1"], name
        # Swapping must not make the attack easier than sampling alone.
        assert sweep["sampling+swapping"]["F1"] <= sweep["sampling"]["F1"] + 0.05, name

"""Closed-loop load generator for the serving gateway.

The benchmark twin of a traffic canary: simulated users issue single-user
top-k requests against either the raw per-request path (the baseline every
naive deployment starts with) or a :class:`repro.serve.ServingGateway`,
and the driver reports QPS plus client-observed latency percentiles.

The served model is MetaMF — the architecture where micro-batching pays
hardest.  Its scorer runs the meta network over the whole item table on
*every* scoring call (the generated item embeddings are user-independent
but not cached, unlike the graph models' propagation cache), so the naive
per-request deployment re-pays that full pass per query while a gateway
tick amortizes it across the whole coalesced cohort.  MF by contrast only
amortizes Python/bookkeeping glue — batching still wins, but by a far
smaller factor; the report records the served architecture so the speedup
is read in context.

Two arrival patterns:

* **closed loop** — ``concurrency`` clients issue requests back-to-back,
  each waiting for its answer before sending the next (the classic
  benchmark harness; throughput-bound).
* **open loop** — requests arrive on a seeded Poisson process at a target
  rate regardless of completions (the production arrival model; latency
  under a given offered load).

User ids are drawn per-client from seeded generators over a ``NUM_USERS``
(default 10k) id space, so a replay is the same request stream every time.

Runnable directly — prints the full JSON report and optionally writes it
to a file::

    PYTHONPATH=src python benchmarks/serve_loadgen.py [report.json]

``benchmarks/test_serve_loadgen.py`` drives the same harness under pytest
and asserts the acceptance bars (gateway QPS >= 3x the per-request loop,
p99 within the SLO).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.data import debug_dataset
from repro.federated.metamf import MetaMFModel
from repro.serve import Recommender, Rejected, ServingGateway
from repro.utils import RngFactory, seeded_rng

SEED = 2024
NUM_USERS = 10_000
NUM_ITEMS = 2_000
EMBEDDING_DIM = 32
TOP_K = 20
MODEL = "metamf"

#: Gateway knobs for the load runs (also recorded in the JSON report).
MAX_BATCH = 128
MAX_WAIT_MS = 2.0
SLO_MS = 250.0

#: Same convention as the test suite and the other smoke benchmarks.
BACKEND = os.environ.get("REPRO_BACKEND", "numpy")


def build_service(
    num_users: int = NUM_USERS,
    num_items: int = NUM_ITEMS,
    cache_size: int = 256,
) -> Recommender:
    """A MetaMF facade over a ``num_users``-user catalogue, fixed seed."""
    rngs = RngFactory(SEED)
    dataset = debug_dataset(
        rngs.spawn("loadgen-data"), num_users=num_users, num_items=num_items,
        num_interactions=3 * num_users,
    )
    model = MetaMFModel(
        num_users=num_users, num_items=num_items,
        embedding_dim=EMBEDDING_DIM, rng=rngs.spawn("loadgen-model"),
    )
    seen = {user: dataset.train_items(user) for user in dataset.users}
    return Recommender(
        model, seen_items=seen, popularity=dataset.item_popularity(),
        cache_size=cache_size,
    )


@dataclass
class LoadReport:
    """One load run's client-side view (JSON-ready via ``to_dict``)."""

    pattern: str
    num_requests: int
    completed: int
    rejected: int
    wall_seconds: float
    qps: float
    latency_p50_ms: float
    latency_p99_ms: float
    gateway: Optional[Dict[str, Any]] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "pattern": self.pattern,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "wall_seconds": round(self.wall_seconds, 3),
            "qps": round(self.qps, 1),
            "latency_ms": {
                "p50": round(self.latency_p50_ms, 3),
                "p99": round(self.latency_p99_ms, 3),
            },
        }
        if self.gateway is not None:
            payload["gateway"] = self.gateway
        return payload


def _report(pattern: str, latencies: List[float], rejected: int,
            wall: float, gateway: Optional[ServingGateway]) -> LoadReport:
    observed = np.asarray(latencies, dtype=np.float64) * 1000.0
    p50, p99 = (
        np.percentile(observed, [50, 99]) if observed.size else (0.0, 0.0)
    )
    return LoadReport(
        pattern=pattern,
        num_requests=len(latencies) + rejected,
        completed=len(latencies),
        rejected=rejected,
        wall_seconds=wall,
        qps=len(latencies) / wall if wall else 0.0,
        latency_p50_ms=float(p50),
        latency_p99_ms=float(p99),
        gateway=gateway.stats().to_dict() if gateway is not None else None,
    )


def per_request_baseline(
    service: Recommender,
    num_requests: int,
    user_pool: int = NUM_USERS,
    k: int = TOP_K,
    seed: int = SEED,
) -> LoadReport:
    """The naive deployment: one direct facade call per request."""
    rng = seeded_rng(seed)
    users = rng.integers(0, user_pool, size=num_requests)
    latencies: List[float] = []
    started = time.perf_counter()
    for user in users:
        begin = time.perf_counter()
        service.recommend(int(user), k=k)
        latencies.append(time.perf_counter() - begin)
    wall = time.perf_counter() - started
    return _report("per-request", latencies, 0, wall, None)


def closed_loop(
    gateway: ServingGateway,
    num_requests: int,
    concurrency: int = 32,
    user_pool: int = NUM_USERS,
    k: int = TOP_K,
    seed: int = SEED,
) -> LoadReport:
    """``concurrency`` clients issue back-to-back requests via the gateway."""
    per_client = num_requests // concurrency
    all_latencies: List[List[float]] = [[] for _ in range(concurrency)]
    rejections = [0] * concurrency

    def client(index: int) -> None:
        rng = seeded_rng(seed + index)
        latencies = all_latencies[index]
        for _ in range(per_client):
            user = int(rng.integers(0, user_pool))
            begin = time.perf_counter()
            result = gateway.recommend(user, k=k)
            if isinstance(result, Rejected):
                rejections[index] += 1
            else:
                latencies.append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=client, args=(index,), name=f"loadgen-{index}")
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    merged = [latency for batch in all_latencies for latency in batch]
    return _report("closed-loop", merged, sum(rejections), wall, gateway)


def open_loop(
    gateway: ServingGateway,
    rate_qps: float,
    num_requests: int,
    user_pool: int = NUM_USERS,
    k: int = TOP_K,
    seed: int = SEED,
) -> LoadReport:
    """Seeded Poisson arrivals at ``rate_qps``, independent of completions.

    A collector thread reaps tickets *in submission order while the
    arrival loop is still running* — ticks resolve FIFO, so blocking on
    the oldest outstanding ticket observes each completion as it happens
    and the client-side latencies are honest (reaping after the submit
    phase would charge early requests the whole submission window).
    """
    rng = seeded_rng(seed)
    tickets: List[tuple] = []
    latencies: List[float] = []
    rejected = [0]
    submitted_all = threading.Event()

    def collect() -> None:
        index = 0
        while True:
            if index >= len(tickets):
                if submitted_all.is_set() and index >= len(tickets):
                    return
                time.sleep(0.0005)
                continue
            begin, ticket = tickets[index]
            result = ticket.result(timeout=60)
            if isinstance(result, Rejected):
                rejected[0] += 1
            else:
                latencies.append(time.perf_counter() - begin)
            index += 1

    collector = threading.Thread(target=collect, name="loadgen-collector")
    collector.start()
    started = time.perf_counter()
    next_arrival = started
    for _ in range(num_requests):
        next_arrival += float(rng.exponential(1.0 / rate_qps))
        delay = next_arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        user = int(rng.integers(0, user_pool))
        tickets.append((time.perf_counter(), gateway.submit(user, k=k)))
    submitted_all.set()
    collector.join()
    wall = time.perf_counter() - started
    return _report("open-loop", latencies, rejected[0], wall, gateway)


def run_load_suite(
    num_requests: int = 6_000,
    baseline_requests: int = 1_200,
    open_loop_requests: int = 1_000,
    concurrency: int = 32,
) -> Dict[str, Any]:
    """Baseline + closed-loop + open-loop over one 10k-user service.

    The baseline leg runs fewer requests than the gateway legs — each
    per-request call pays the full meta-network pass, so a matched count
    would spend most of the benchmark's wall clock re-measuring the slow
    path.  QPS is a rate; the counts only set the sampling window.
    """
    baseline = per_request_baseline(build_service(), baseline_requests)

    gateway = ServingGateway(
        build_service(), max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS,
        deadline_ms=SLO_MS,
    )
    with gateway:
        closed = closed_loop(gateway, num_requests, concurrency=concurrency)

    open_gateway = ServingGateway(
        build_service(), max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS,
        deadline_ms=SLO_MS,
    )
    with open_gateway:
        # Offered load: about half the gateway's measured capacity, so the
        # open-loop run reports latency at a sustainable rate.
        rate = max(200.0, min(closed.qps / 2, 20_000.0))
        opened = open_loop(open_gateway, rate_qps=rate, num_requests=open_loop_requests)

    return {
        "backend": BACKEND,
        "model": MODEL,
        "num_users": NUM_USERS,
        "num_items": NUM_ITEMS,
        "embedding_dim": EMBEDDING_DIM,
        "top_k": TOP_K,
        "slo_ms": SLO_MS,
        "knobs": {
            "max_batch": MAX_BATCH,
            "max_wait_ms": MAX_WAIT_MS,
            "concurrency": concurrency,
        },
        "baseline": baseline.to_dict(),
        "closed_loop": closed.to_dict(),
        "open_loop": opened.to_dict(),
        "qps_speedup": round(closed.qps / baseline.qps, 2) if baseline.qps else 0.0,
    }


if __name__ == "__main__":
    report = run_load_suite()
    rendered = json.dumps(report, indent=2)
    print(rendered)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

"""Table III — recommendation performance of all methods on all datasets.

Nine methods per dataset: three centralized models (NeuMF, NGCF, LightGCN),
three parameter-transmission FedRecs (FCF, FedMF, MetaMF) and three
PTF-FedRec variants differing in the hidden server model.  The paper's
qualitative claims checked here:

* PTF-FedRec beats the parameter-transmission baselines,
* a stronger server model gives a stronger PTF-FedRec
  (NGCF/LightGCN > NeuMF),
* centralized training remains the overall ceiling (up to mini-scale
  noise, see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from conftest import (
    DATASET_NAMES,
    PAPER_NAMES,
    build_dataset,
    print_table,
    run_centralized,
    run_federated_baseline,
    run_ptf,
)


def _run_dataset(name):
    dataset = build_dataset(name)
    results = {}
    for model in ("neumf", "ngcf", "lightgcn"):
        results[f"Centralized {model.upper()}"] = run_centralized(dataset, model)
    for baseline in ("FCF", "FedMF", "MetaMF"):
        results[baseline] = run_federated_baseline(dataset, baseline)[0]
    for server_model in ("neumf", "ngcf", "lightgcn"):
        results[f"PTF-FedRec({server_model.upper()})"] = run_ptf(dataset, server_model)[0]
    return results


def _rows(all_results):
    rows = []
    for method in next(iter(all_results.values())):
        row = [method]
        for name in DATASET_NAMES:
            metrics = all_results[name][method]
            row.extend([metrics["Recall@20"], metrics["NDCG@20"]])
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_effectiveness(benchmark):
    all_results = benchmark.pedantic(
        lambda: {name: _run_dataset(name) for name in DATASET_NAMES},
        rounds=1,
        iterations=1,
    )
    header = ["Method"]
    for name in DATASET_NAMES:
        header.extend([f"{PAPER_NAMES[name]} R@20", f"{PAPER_NAMES[name]} N@20"])
    print_table("Table III — recommendation performance (mini scale)", header, _rows(all_results))

    for name in DATASET_NAMES:
        results = all_results[name]
        best_baseline_ndcg = max(
            results[b]["NDCG@20"] for b in ("FCF", "FedMF", "MetaMF")
        )
        best_ptf_ndcg = max(
            results[f"PTF-FedRec({m})"]["NDCG@20"] for m in ("NEUMF", "NGCF", "LIGHTGCN")
        )
        # Claim 1: the best PTF-FedRec beats every parameter-transmission baseline.
        assert best_ptf_ndcg > best_baseline_ndcg, name
        # Claim 2: a graph server model beats the NeuMF server model.
        graph_best = max(
            results["PTF-FedRec(NGCF)"]["NDCG@20"],
            results["PTF-FedRec(LIGHTGCN)"]["NDCG@20"],
        )
        assert graph_best >= results["PTF-FedRec(NEUMF)"]["NDCG@20"] * 0.95, name

"""Table III — recommendation performance of all methods on all datasets.

Nine methods per dataset: three centralized models (NeuMF, NGCF, LightGCN),
three parameter-transmission FedRecs (FCF, FedMF, MetaMF) and three
PTF-FedRec variants differing in the hidden server model.  The paper's
qualitative claims checked here:

* PTF-FedRec beats the parameter-transmission baselines,
* a stronger server model gives a stronger PTF-FedRec
  (NGCF/LightGCN > NeuMF),
* centralized training remains the overall ceiling (up to mini-scale
  noise, see EXPERIMENTS.md).

The 27 experiments run as one :mod:`repro.sweep` sweep (defined in
``sweeps.py``, shared with ``paper_artifacts.py``): fingerprint-cached, so
any run another benchmark in this session already trained is free, and the
whole table resumes rather than restarts if interrupted.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, print_table
from sweeps import table3_header, table3_results, table3_rows, table3_sweep

from repro.sweep import run_sweep


def _run_sweep(sweep_store):
    outcome = run_sweep(table3_sweep(), store=sweep_store)
    return table3_results(outcome.stages["metrics"])


@pytest.mark.benchmark(group="table3")
def test_table3_effectiveness(benchmark, sweep_store):
    all_results = benchmark.pedantic(
        lambda: _run_sweep(sweep_store),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Table III — recommendation performance (mini scale)",
        table3_header(),
        table3_rows(all_results),
    )

    for name in DATASET_NAMES:
        results = all_results[name]
        best_baseline_ndcg = max(
            results[b]["NDCG@20"] for b in ("FCF", "FedMF", "MetaMF")
        )
        best_ptf_ndcg = max(
            results[f"PTF-FedRec({m})"]["NDCG@20"] for m in ("NEUMF", "NGCF", "LIGHTGCN")
        )
        # Claim 1: the best PTF-FedRec beats every parameter-transmission baseline.
        assert best_ptf_ndcg > best_baseline_ndcg, name
        # Claim 2: a graph server model beats the NeuMF server model.
        graph_best = max(
            results["PTF-FedRec(NGCF)"]["NDCG@20"],
            results["PTF-FedRec(LIGHTGCN)"]["NDCG@20"],
        )
        assert graph_best >= results["PTF-FedRec(NEUMF)"]["NDCG@20"] * 0.95, name

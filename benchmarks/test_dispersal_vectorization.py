"""Micro-benchmark — vectorized dispersal candidate construction.

``PTFServer.build_dispersal`` must, for every client every round, gather
the catalogue items the client did *not* just upload.  The seed
implementation walked the whole catalogue in a Python list comprehension
with a set-membership test per item — O(num_items) interpreter work per
client per round, the dominant cost of the dispersal step on realistic
catalogues.  The current implementation scatters the uploaded ids into a
boolean mask and calls ``np.flatnonzero``.

This bench times both constructions on paper-scale catalogues, prints the
speedup table, and asserts (a) the two produce identical candidate sets
and (b) the vectorized path is decisively faster at scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import print_table

from repro.utils import seeded_rng

CATALOGUE_SIZES = (1_000, 10_000, 100_000)
UPLOADED_PER_CLIENT = 120  # ~ beta * profile * (1 + gamma) at paper scale
REPEATS = 20


def _legacy_candidates(num_items: int, uploaded: np.ndarray) -> np.ndarray:
    """The seed implementation: per-item Python loop with a set lookup."""
    excluded = set(int(item) for item in uploaded)
    return np.array(
        [item for item in range(num_items) if item not in excluded], dtype=np.int64
    )


def _vectorized_candidates(num_items: int, uploaded: np.ndarray) -> np.ndarray:
    """The current implementation (mirrors PTFServer.build_dispersal)."""
    available = np.ones(num_items, dtype=bool)
    available[uploaded] = False
    return np.flatnonzero(available).astype(np.int64)


def _median_seconds(fn, *args) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_dispersal_candidate_vectorization(benchmark):
    rng = seeded_rng(2024)
    rows = []
    speedups = {}
    for num_items in CATALOGUE_SIZES:
        uploaded = rng.choice(num_items, size=UPLOADED_PER_CLIENT, replace=False)

        np.testing.assert_array_equal(
            _legacy_candidates(num_items, uploaded),
            _vectorized_candidates(num_items, uploaded),
        )

        legacy = _median_seconds(_legacy_candidates, num_items, uploaded)
        vectorized = _median_seconds(_vectorized_candidates, num_items, uploaded)
        speedups[num_items] = legacy / vectorized
        rows.append([
            f"{num_items:,}",
            f"{legacy * 1e3:.3f} ms",
            f"{vectorized * 1e3:.3f} ms",
            f"{speedups[num_items]:.0f}x",
        ])

    benchmark.pedantic(
        _vectorized_candidates,
        args=(CATALOGUE_SIZES[-1],
              rng.choice(CATALOGUE_SIZES[-1], size=UPLOADED_PER_CLIENT, replace=False)),
        rounds=5,
        iterations=1,
    )

    print_table(
        "Dispersal candidate construction (per client, per round)",
        ["#items", "list comprehension", "boolean mask", "speedup"],
        rows,
    )
    # The vectorized path must win decisively once the catalogue is large;
    # the 3x bar is far below the ~100x typically observed, to keep CI calm.
    assert speedups[100_000] > 3.0

"""Micro-benchmark — batched client-simulation engine throughput.

One PTF-FedRec round runs local training for every selected client.  The
serial reference path pays a full Python fit loop per client — dozens of
interpreter-level tensor ops per batch per client.  The batched scheduler
(``engine={"scheduler": "batched"}``) stacks the cohort into
``(clients, ...)`` arrays and runs each training step once for everyone,
with bit-identical results.

This bench measures local-training throughput (clients/second) for the
serial and batched schedulers at 50 / 200 / 800 clients and asserts the
acceptance bar: **>= 5x at 200 clients**.  The configuration purposely
uses a compact on-device model (small catalogue/embedding, the paper's
small client batches): the engine removes *scheduling* overhead, and this
regime — many clients, modest per-client tensors, exactly the setting
PTF-FedRec targets — is where that overhead dominates.  Dense table math
is identical work on both paths and is not what is being compared.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import SEED, print_table

from repro.core.client import PTFClient
from repro.engine import EngineSpec, create_scheduler
from repro.experiments import ExperimentSpec
from repro.utils import RngFactory, seeded_rng

COHORT_SIZES = (50, 200, 800)
ASSERTED_COHORT = 200
MIN_SPEEDUP = 5.0

NUM_ITEMS = 30
POSITIVES_PER_CLIENT = 8


def _client_spec() -> ExperimentSpec:
    return ExperimentSpec.from_flat(
        trainer="ptf",
        seed=SEED,
        client_local_epochs=5,
        client_batch_size=8,
        embedding_dim=8,
        client_mlp_layers=(32, 16, 8),
    )


def _build_clients(num_clients: int, spec: ExperimentSpec):
    rngs = RngFactory(spec.seed)
    rng = seeded_rng(123)
    return {
        user: PTFClient(
            user_id=user,
            num_items=NUM_ITEMS,
            positive_items=np.sort(
                rng.choice(NUM_ITEMS, size=POSITIVES_PER_CLIENT, replace=False)
            ),
            config=spec,
            rngs=rngs,
        )
        for user in range(num_clients)
    }


def _round_seconds(scheduler_name: str, num_clients: int, spec: ExperimentSpec,
                   repeats: int = 1) -> tuple[float, dict]:
    """Best-of-``repeats`` wall time of one cohort's local training."""
    best = float("inf")
    losses = {}
    for _ in range(repeats):
        clients = _build_clients(num_clients, spec)
        engine = create_scheduler(
            EngineSpec(scheduler=scheduler_name, max_cohort=256)
        )
        start = time.perf_counter()
        losses = engine.train_ptf_clients(clients, list(range(num_clients)), 0)
        best = min(best, time.perf_counter() - start)
    return best, losses


def test_engine_throughput(benchmark):
    spec = _client_spec()

    # Warm up allocators / code paths once with a small cohort.
    _round_seconds("batched", 16, spec)

    rows = []
    speedups = {}
    for num_clients in COHORT_SIZES:
        serial_s, serial_losses = _round_seconds("serial", num_clients, spec)
        batched_s, batched_losses = _round_seconds("batched", num_clients, spec,
                                                   repeats=2)
        # The engine contract: identical numbers, not merely close ones.
        assert serial_losses == batched_losses
        speedups[num_clients] = serial_s / batched_s
        rows.append([
            num_clients,
            f"{num_clients / serial_s:,.0f} clients/s",
            f"{num_clients / batched_s:,.0f} clients/s",
            f"{speedups[num_clients]:.1f}x",
        ])

    benchmark.pedantic(
        lambda: _round_seconds("batched", ASSERTED_COHORT, spec),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Local-training throughput, serial vs batched scheduler (one round)",
        ["#clients", "serial", "batched", "speedup"],
        rows,
    )
    assert speedups[ASSERTED_COHORT] >= MIN_SPEEDUP, (
        f"batched scheduler must be >= {MIN_SPEEDUP}x the per-client loop at "
        f"{ASSERTED_COHORT} clients, measured {speedups[ASSERTED_COHORT]:.1f}x"
    )

"""Table VI — cost-effectiveness of the defenses (ΔF1 / ΔNDCG).

For each defense the paper reports how much attack F1 is removed per unit
of NDCG sacrificed, relative to the undefended upload.  Sampling (and
sampling + swapping) should be far more cost-effective than LDP.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, PAPER_NAMES, print_table
from privacy_common import DEFENSE_LABELS, defense_sweep

_EPSILON = 1e-4


def _efficiency(sweep):
    """ΔF1 / ΔNDCG for each defense relative to the undefended run."""
    base = sweep["none"]
    scores = {}
    for defense in ("ldp", "sampling", "sampling+swapping"):
        delta_f1 = base["F1"] - sweep[defense]["F1"]
        delta_ndcg = max(base["NDCG@20"] - sweep[defense]["NDCG@20"], _EPSILON)
        scores[defense] = delta_f1 / delta_ndcg
    return scores


@pytest.mark.benchmark(group="table6")
def test_table6_defense_cost_effectiveness(benchmark):
    results = benchmark.pedantic(
        lambda: {name: defense_sweep(name) for name in DATASET_NAMES},
        rounds=1,
        iterations=1,
    )
    efficiencies = {name: _efficiency(results[name]) for name in DATASET_NAMES}
    header = ["Defense"] + [PAPER_NAMES[name] for name in DATASET_NAMES]
    rows = []
    for defense in ("ldp", "sampling", "sampling+swapping"):
        rows.append(
            [DEFENSE_LABELS[defense]]
            + [f"{efficiencies[name][defense]:.1f}" for name in DATASET_NAMES]
        )
    print_table("Table VI — ΔF1 / ΔNDCG (higher = cheaper protection)", header, rows)

    # Shape check: on a majority of datasets the sampling-based defenses
    # protect more F1 per unit of NDCG than LDP does.
    wins = sum(
        efficiencies[name]["sampling"] > efficiencies[name]["ldp"] for name in DATASET_NAMES
    )
    assert wins >= 2

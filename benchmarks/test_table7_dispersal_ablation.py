"""Table VII — ablation of the confidence-based / hard item selection.

The server's dispersed dataset D̃ mixes confidence-selected items with hard
(high-score) items.  The paper replaces each component with random items
("-hard", "-confidence") and finally both ("-confidence -hard"), showing a
monotone degradation.  At mini scale the differences are small, so the
bench asserts the weakest variant (all random) does not beat the full
method.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, PAPER_NAMES, build_dataset, print_table, run_ptf

ABLATION_ROUNDS = 8

MODES = {
    "PTF-FedRec": "confidence+hard",
    "-hard": "confidence+random",
    "-confidence": "random+hard",
    "-confidence -hard": "random",
}


def _run():
    results = {}
    for name in DATASET_NAMES:
        dataset = build_dataset(name)
        per_mode = {}
        for label, mode in MODES.items():
            metrics, _ = run_ptf(
                dataset, "ngcf", dispersal_mode=mode, rounds=ABLATION_ROUNDS
            )
            per_mode[label] = metrics
        results[name] = per_mode
    return results


@pytest.mark.benchmark(group="table7")
def test_table7_dispersal_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header = ["Variant"]
    for name in DATASET_NAMES:
        header.extend([f"{PAPER_NAMES[name]} R@20", f"{PAPER_NAMES[name]} N@20"])
    rows = []
    for label in MODES:
        row = [label]
        for name in DATASET_NAMES:
            row.extend(
                [results[name][label]["Recall@20"], results[name][label]["NDCG@20"]]
            )
        rows.append(row)
    print_table("Table VII — dispersal construction ablation", header, rows)

    # Shape check: averaged over datasets, the full confidence+hard method
    # is at least as good as replacing both components with random items.
    full = sum(results[name]["PTF-FedRec"]["NDCG@20"] for name in DATASET_NAMES)
    random_only = sum(
        results[name]["-confidence -hard"]["NDCG@20"] for name in DATASET_NAMES
    )
    assert full >= 0.9 * random_only

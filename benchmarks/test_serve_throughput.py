"""Micro-benchmark — batched serving throughput.

A deployment answers top-k queries for whole cohorts of users.  The serial
baseline is the per-user loop every evaluator-style caller writes:
``model.recommend(user, k, exclude_items=seen)`` once per user — one full
Python scoring round-trip each.  ``repro.serve.Recommender`` answers the
same cohort with one batched score pass (a single user-by-item matmul for
dot-product architectures) and one vectorized partition/sort.

This bench measures both paths at 50 / 200 / 800 users and asserts the
acceptance bar: **>= 5x at 200 users**.  A third row reports the LRU
score cache on repeat traffic (hot users are the common case behind a
real query mix).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import SEED, print_table

from repro.data import debug_dataset
from repro.models.factory import create_model
from repro.serve import Recommender
from repro.utils import RngFactory

COHORT_SIZES = (50, 200, 800)
ASSERTED_COHORT = 200
MIN_SPEEDUP = 5.0

NUM_USERS = 800
NUM_ITEMS = 2000
EMBEDDING_DIM = 32
TOP_K = 20


def _build_service():
    rngs = RngFactory(SEED)
    dataset = debug_dataset(
        rngs.spawn("serve-data"), num_users=NUM_USERS, num_items=NUM_ITEMS,
        num_interactions=8000,
    )
    model = create_model(
        "mf", num_users=NUM_USERS, num_items=NUM_ITEMS,
        embedding_dim=EMBEDDING_DIM, rng=rngs.spawn("serve-model"),
    )
    seen = {user: dataset.train_items(user) for user in dataset.users}
    service = Recommender(
        model, seen_items=seen, popularity=dataset.item_popularity(), cache_size=0
    )
    return model, seen, service


def _serial_seconds(model, seen, users) -> float:
    start = time.perf_counter()
    for user in users:
        model.recommend(int(user), k=TOP_K, exclude_items=seen.get(int(user)))
    return time.perf_counter() - start


def _batched_seconds(service, users, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        service.clear_cache()
        start = time.perf_counter()
        service.recommend(users, k=TOP_K)
        best = min(best, time.perf_counter() - start)
    return best


def _cached_seconds(service, users, repeats: int = 3) -> float:
    service.recommend(users, k=TOP_K)  # warm the cache
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        service.recommend(users, k=TOP_K)
        best = min(best, time.perf_counter() - start)
    return best


def test_serve_throughput(benchmark):
    model, seen, service = _build_service()
    hot = Recommender(
        model, seen_items=seen, popularity=None, cache_size=NUM_USERS
    )

    # Warm up code paths once with a small cohort.
    service.recommend(np.arange(16), k=TOP_K)
    service.clear_cache()

    rows = []
    speedups = {}
    for cohort in COHORT_SIZES:
        users = np.arange(cohort) % NUM_USERS
        serial_s = _serial_seconds(model, seen, users)
        batched_s = _batched_seconds(service, users)
        cached_s = _cached_seconds(hot, users)
        speedups[cohort] = serial_s / batched_s
        rows.append([
            cohort,
            f"{cohort / serial_s:,.0f} users/s",
            f"{cohort / batched_s:,.0f} users/s",
            f"{cohort / cached_s:,.0f} users/s",
            f"{speedups[cohort]:.1f}x",
        ])

    benchmark.pedantic(
        lambda: _batched_seconds(service, np.arange(ASSERTED_COHORT), repeats=1),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Top-20 query throughput, per-user loop vs batched Recommender",
        ["#users", "serial", "batched", "batched+cache", "speedup"],
        rows,
    )
    assert speedups[ASSERTED_COHORT] >= MIN_SPEEDUP, (
        f"batched Recommender.recommend must be >= {MIN_SPEEDUP}x the per-user "
        f"loop at {ASSERTED_COHORT} users, measured {speedups[ASSERTED_COHORT]:.1f}x"
    )

"""Figure 3 — impact of the privacy hyper-parameters β, γ and λ.

The paper sweeps, per dataset: the lower end of the β sampling range (more
positives uploaded → better utility, weaker privacy), the lower end of the
γ range (more negatives, more deterministic ratio → attack recovers), and
the swap rate λ (more swapping → both attack and utility drop).  The bench
runs the sweeps on the MovieLens miniature (the paper's Fig. 3a); the same
series can be produced for the other datasets by changing DATASET.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from privacy_common import GUESS_RATIO, run_privacy_experiment

DATASET = "movielens-mini"

BETA_RANGES = [(0.1, 1.0), (0.3, 1.0), (0.5, 1.0), (0.7, 1.0)]
GAMMA_RANGES = [(1.0, 4.0), (2.0, 4.0), (3.0, 4.0), (4.0, 4.0)]
LAMBDA_VALUES = [0.05, 0.1, 0.15, 0.2]


def _run():
    beta_series = []
    for beta_range in BETA_RANGES:
        metrics = run_privacy_experiment(DATASET, "sampling+swapping", beta_range=beta_range)
        beta_series.append((f"[{beta_range[0]:.1f},{beta_range[1]:.0f}]",
                            metrics["NDCG@20"], metrics["F1"]))
    gamma_series = []
    for gamma_range in GAMMA_RANGES:
        metrics = run_privacy_experiment(DATASET, "sampling+swapping", gamma_range=gamma_range)
        gamma_series.append((f"[{gamma_range[0]:.0f},{gamma_range[1]:.0f}]",
                             metrics["NDCG@20"], metrics["F1"]))
    lambda_series = []
    for swap_rate in LAMBDA_VALUES:
        metrics = run_privacy_experiment(DATASET, "sampling+swapping", swap_rate=swap_rate)
        lambda_series.append((f"{swap_rate:.2f}", metrics["NDCG@20"], metrics["F1"]))
    return beta_series, gamma_series, lambda_series


@pytest.mark.benchmark(group="fig3")
def test_fig3_privacy_hyperparameters(benchmark):
    beta_series, gamma_series, lambda_series = benchmark.pedantic(_run, rounds=1, iterations=1)
    header = ["Setting", "NDCG@20", f"Attack F1 (guess={GUESS_RATIO})"]
    print_table("Figure 3 — sweep of β sampling range (MovieLens mini)", header, beta_series)
    print_table("Figure 3 — sweep of γ sampling range (MovieLens mini)", header, gamma_series)
    print_table("Figure 3 — sweep of swap rate λ (MovieLens mini)", header, lambda_series)

    # Shape checks from the paper (the β trend is scale-sensitive at mini
    # size — see EXPERIMENTS.md — so only the series is recorded for it):
    # (1) a deterministic positive/negative ratio (γ fixed at 4) helps the attack,
    assert gamma_series[-1][2] > gamma_series[0][2]
    # (2) more swapping weakens the attack.
    assert lambda_series[-1][2] < lambda_series[0][2] + 0.02
    # (3) every configuration stays a valid probability/F1 pair.
    for series in (beta_series, gamma_series, lambda_series):
        for _, ndcg, f1 in series:
            assert 0.0 <= ndcg <= 1.0 and 0.0 <= f1 <= 1.0

"""Shared runner for the privacy experiments (Tables V, VI and Figure 3).

Each privacy experiment trains PTF-FedRec(NGCF) with a particular defense
configuration, evaluates NDCG@20 with the server model, and runs the Top
Guess Attack (guess ratio 0.2, matching the 1:4 negative-sampling prior)
against the final round's uploads.
"""

from __future__ import annotations

from typing import Dict

from conftest import TOP_K, build_dataset, mini_ptf_config

from repro.core import PTFFedRec

#: Number of global rounds for the privacy sweeps (shorter than Table III
#: because the attack is measured on upload structure, which stabilizes
#: after a few rounds).
PRIVACY_ROUNDS = 6

#: Attack guess ratio: the server assumes the standard 1:4 sampling prior.
GUESS_RATIO = 0.2

DEFENSES = ("none", "ldp", "sampling", "sampling+swapping")
DEFENSE_LABELS = {
    "none": "No Defense",
    "ldp": "LDP",
    "sampling": "Sampling",
    "sampling+swapping": "Sampling + Swapping",
}


def run_privacy_experiment(dataset_name: str, defense: str, **config_overrides) -> Dict[str, float]:
    """Train PTF-FedRec(NGCF) under ``defense`` and report attack F1 + NDCG."""
    dataset = build_dataset(dataset_name)
    config = mini_ptf_config(
        server_model="ngcf",
        defense=defense,
        rounds=PRIVACY_ROUNDS,
        **config_overrides,
    )
    system = PTFFedRec(dataset, config)
    system.fit()
    ranking = system.evaluate(k=TOP_K)
    attack = system.audit_privacy(guess_ratio=GUESS_RATIO)
    return {"F1": attack.mean_f1, "NDCG@20": ranking.ndcg, "Recall@20": ranking.recall}


def defense_sweep(dataset_name: str) -> Dict[str, Dict[str, float]]:
    """Run every defense on one dataset."""
    return {defense: run_privacy_experiment(dataset_name, defense) for defense in DEFENSES}

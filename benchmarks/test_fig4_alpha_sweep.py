"""Figure 4 — impact of the dispersed dataset size α.

The paper sweeps α ∈ {10, 30, 50, 70, 90}: too few dispersed items starve
the clients of server knowledge, too many drown out their private data, so
NDCG rises to a peak (α ≈ 30-50) and then falls.  The bench reproduces the
series on the MovieLens miniature and checks that the extremes do not beat
the middle of the sweep.

The five runs execute as one :mod:`repro.sweep` sweep (``sweeps.py``,
shared with ``paper_artifacts.py``), fingerprint-cached per α value.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from sweeps import fig4_series, fig4_sweep

from repro.sweep import run_sweep


def _run(sweep_store):
    outcome = run_sweep(fig4_sweep(), store=sweep_store)
    return fig4_series(outcome.stages["metrics"])


@pytest.mark.benchmark(group="fig4")
def test_fig4_alpha_sweep(benchmark, sweep_store):
    series = benchmark.pedantic(lambda: _run(sweep_store), rounds=1, iterations=1)
    print_table(
        "Figure 4 — dispersed dataset size α (MovieLens mini)",
        ["alpha", "NDCG@20", "Recall@20"],
        series,
    )
    ndcg = {alpha: value for alpha, value, _ in series}
    middle_best = max(ndcg[30], ndcg[50])
    # Shape check: the interior of the sweep is at least as good as the
    # extremes (the paper's inverted-U trend).
    assert middle_best >= ndcg[10] * 0.95
    assert middle_best >= ndcg[90] * 0.95

"""Figure 4 — impact of the dispersed dataset size α.

The paper sweeps α ∈ {10, 30, 50, 70, 90}: too few dispersed items starve
the clients of server knowledge, too many drown out their private data, so
NDCG rises to a peak (α ≈ 30-50) and then falls.  The bench reproduces the
series on the MovieLens miniature and checks that the extremes do not beat
the middle of the sweep.
"""

from __future__ import annotations

import pytest

from conftest import TOP_K, build_dataset, mini_ptf_config, print_table

from repro.core import PTFFedRec

ALPHA_VALUES = (10, 30, 50, 70, 90)
ALPHA_ROUNDS = 8


def _run():
    dataset = build_dataset("movielens-mini")
    series = []
    for alpha in ALPHA_VALUES:
        config = mini_ptf_config(server_model="ngcf", alpha=alpha, rounds=ALPHA_ROUNDS)
        system = PTFFedRec(dataset, config)
        system.fit()
        result = system.evaluate(k=TOP_K)
        series.append((alpha, result.ndcg, result.recall))
    return series


@pytest.mark.benchmark(group="fig4")
def test_fig4_alpha_sweep(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        "Figure 4 — dispersed dataset size α (MovieLens mini)",
        ["alpha", "NDCG@20", "Recall@20"],
        series,
    )
    ndcg = {alpha: value for alpha, value, _ in series}
    middle_best = max(ndcg[30], ndcg[50])
    # Shape check: the interior of the sweep is at least as good as the
    # extremes (the paper's inverted-U trend).
    assert middle_best >= ndcg[10] * 0.95
    assert middle_best >= ndcg[90] * 0.95

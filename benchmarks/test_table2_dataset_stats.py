"""Table II — statistics of the three datasets.

The paper reports #Users, #Items, #Interactions, average profile length and
density for MovieLens-100K, Steam-200K and Gowalla.  This bench prints the
same rows twice: once for the full-size statistical twins (matching the
paper's numbers by construction) and once for the miniature presets every
other bench runs on.
"""

from __future__ import annotations

from conftest import DATASET_NAMES, PAPER_NAMES, build_dataset, print_table

from repro.data import PAPER_SPECS


def _run():
    full_rows = []
    for key, spec in PAPER_SPECS.items():
        full_rows.append([
            key,
            spec.num_users,
            spec.num_items,
            spec.num_interactions,
            round(spec.num_interactions / spec.num_users, 1),
            f"{100.0 * spec.num_interactions / (spec.num_users * spec.num_items):.2f}%",
        ])
    mini_rows = []
    for name in DATASET_NAMES:
        stats = build_dataset(name).stats()
        row = stats.as_row()
        mini_rows.append([
            f"{row['dataset']} (for {PAPER_NAMES[name]})",
            row["#Users"],
            row["#Items"],
            row["#Interactions"],
            row["Average Length"],
            row["Density"],
        ])
    return full_rows, mini_rows


def test_table2_dataset_statistics(benchmark):
    full_rows, mini_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header = ["Dataset", "#Users", "#Items", "#Interactions", "Avg Length", "Density"]
    print_table("Table II — full-size statistical twins (paper scale)", header, full_rows)
    print_table("Table II — miniature presets used by the benches", header, mini_rows)
    assert len(full_rows) == 3 and len(mini_rows) == 3

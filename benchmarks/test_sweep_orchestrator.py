"""The sweep orchestrator's three performance contracts, benchmarked.

On a reduced Table-III-style grid (two datasets x three methods):

1. **Fidelity** — the sweep runner produces ``==``-identical metric values
   to the hand-rolled loop the table benchmarks used before migration
   (``create_trainer`` / ``fit`` / ``evaluate`` per experiment).  Not
   approximately equal: the same floats.
2. **Parallel speedup** — with 4 workers the same grid completes at least
   2x faster than the serial pass (only measurable on a multi-core box;
   skipped below 4 cores).
3. **Cache speedup** — a second identical sweep invocation executes zero
   runs and completes at least 10x faster than the first: the warm-pool +
   fingerprint-cache satellite assertion.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

from conftest import TOP_K, baseline_spec, build_dataset, mini_dataset, print_table, ptf_spec
from sweeps import run_id

from repro.experiments import create_trainer
from repro.sweep import RunSpec, StageSpec, SweepSpec, run_sweep

#: Reduced grid: enough runs to amortize pool startup, small enough to
#: train twice (hand-rolled + sweep) in one benchmark session.
GRID_DATASETS = ("movielens-mini", "steam-mini")
GRID_ROUNDS = 4


def _grid_specs() -> Dict[str, "object"]:
    return {
        "fcf": baseline_spec("fcf", rounds=GRID_ROUNDS),
        "ptf-neumf": ptf_spec("neumf", rounds=GRID_ROUNDS, audit_privacy=False),
        "ptf-ngcf": ptf_spec("ngcf", rounds=GRID_ROUNDS, audit_privacy=False),
    }


def grid_sweep() -> SweepSpec:
    runs = [
        RunSpec(run_id(name, method), spec, mini_dataset(name))
        for name in GRID_DATASETS
        for method, spec in _grid_specs().items()
    ]
    return SweepSpec(
        name="orchestrator-grid",
        runs=runs,
        stages=[StageSpec(name="metrics", aggregator="final-metrics")],
    )


def hand_rolled_loop() -> Dict[str, Dict[str, float]]:
    """The pre-migration benchmark shape: a serial Python loop, one
    trainer at a time, no sweep machinery anywhere."""
    results: Dict[str, Dict[str, float]] = {}
    for name in GRID_DATASETS:
        dataset = build_dataset(name)
        for method, spec in _grid_specs().items():
            trainer = create_trainer(spec, dataset)
            trainer.fit()
            evaluated = trainer.evaluate(k=TOP_K)
            results[run_id(name, method)] = {
                "Recall@20": evaluated.recall,
                "NDCG@20": evaluated.ndcg,
            }
    return results


def sweep_metrics(outcome) -> Dict[str, Dict[str, float]]:
    metrics = outcome.stages["metrics"]
    return {
        rid: {
            "Recall@20": entry[f"Recall@{entry['k']}"],
            "NDCG@20": entry[f"NDCG@{entry['k']}"],
        }
        for rid, entry in metrics.items()
    }


@pytest.mark.benchmark(group="sweep-orchestrator")
def test_sweep_matches_hand_rolled_loop_exactly(benchmark, tmp_path):
    def both():
        expected = hand_rolled_loop()
        outcome = run_sweep(grid_sweep(), store=tmp_path / "store", workers=1)
        return expected, sweep_metrics(outcome)

    expected, got = benchmark.pedantic(both, rounds=1, iterations=1)
    print_table(
        "Sweep runner vs hand-rolled loop (must be identical)",
        ["Run", "loop R@20", "sweep R@20", "loop N@20", "sweep N@20"],
        [
            [rid, expected[rid]["Recall@20"], got[rid]["Recall@20"],
             expected[rid]["NDCG@20"], got[rid]["NDCG@20"]]
            for rid in sorted(expected)
        ],
    )
    # The acceptance bar: ==, not pytest.approx.
    assert got == expected


def test_second_invocation_completes_from_cache(tmp_path):
    store = tmp_path / "store"
    start = time.perf_counter()
    first = run_sweep(grid_sweep(), store=store, workers=1)
    first_wall = time.perf_counter() - start

    start = time.perf_counter()
    second = run_sweep(grid_sweep(), store=store, workers=1)
    second_wall = time.perf_counter() - start

    assert first.report.executed == len(grid_sweep().runs)
    assert second.report.executed == 0                    # zero training
    assert second.report.cache_hits == first.report.total_runs
    assert sweep_metrics(second) == sweep_metrics(first)  # same table
    # The satellite bar: a warm identical sweep is >= 10x faster.
    assert second_wall * 10 <= first_wall, (
        f"cached sweep took {second_wall:.2f}s vs first {first_wall:.2f}s"
    )
    print(f"\ncache speedup: {first_wall / second_wall:.0f}x "
          f"({first_wall:.1f}s -> {second_wall:.3f}s)")


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup is only measurable with >= 4 cores",
)
def test_four_workers_beat_serial_by_2x(tmp_path):
    sweep = grid_sweep()
    start = time.perf_counter()
    serial = run_sweep(sweep, store=tmp_path / "serial", workers=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(sweep, store=tmp_path / "parallel", workers=4)
    parallel_wall = time.perf_counter() - start

    # Same floats regardless of worker count...
    assert sweep_metrics(parallel) == sweep_metrics(serial)
    # ... at least 2x faster on 4 workers (the tentpole acceptance bar).
    assert parallel_wall * 2 <= serial_wall, (
        f"parallel {parallel_wall:.1f}s vs serial {serial_wall:.1f}s"
    )
    print(f"\nparallel speedup: {serial_wall / parallel_wall:.1f}x "
          f"({serial_wall:.1f}s -> {parallel_wall:.1f}s on 4 workers)")

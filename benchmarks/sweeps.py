"""Sweep definitions for the paper's tables and figures.

One module owns the *declarative* description of every multi-experiment
artifact — which experiments run on which datasets and how their results
are aggregated — so the pytest benchmarks (``test_table3_effectiveness``,
``test_table4_communication``, ``test_fig4_alpha_sweep``) and the one-shot
regenerator (``benchmarks/paper_artifacts.py``) execute the exact same
runs through :class:`repro.sweep.Sweep` and share its fingerprint cache.

Every experiment spec here reproduces the hand-rolled loops the benchmarks
used before the sweep runner existed (the spec builders live in
``conftest.py`` and are shared with the remaining direct-style
benchmarks); ``test_sweep_orchestrator.py`` asserts the equivalence stays
``==``-exact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from conftest import (
    DATASET_NAMES,
    PAPER_NAMES,
    baseline_spec,
    centralized_spec,
    mini_dataset,
    ptf_spec,
)

from repro.sweep import RunSpec, StageSpec, SweepSpec

#: Model line-up of Table III, in the paper's row order.
CENTRALIZED_MODELS = ("neumf", "ngcf", "lightgcn")
BASELINES = ("fcf", "fedmf", "metamf")
PTF_SERVER_MODELS = ("neumf", "ngcf", "lightgcn")

#: Method display names, keyed by the run-id method segment.
METHOD_LABELS = {
    **{f"centralized-{m}": f"Centralized {m.upper()}" for m in CENTRALIZED_MODELS},
    "fcf": "FCF",
    "fedmf": "FedMF",
    "metamf": "MetaMF",
    **{f"ptf-{m}": f"PTF-FedRec({m.upper()})" for m in PTF_SERVER_MODELS},
}

#: Figure 4's sweep over the dispersed dataset size.
ALPHA_VALUES = (10, 30, 50, 70, 90)
ALPHA_ROUNDS = 8


def run_id(dataset: str, method: str) -> str:
    """The ``<dataset>/<method>`` naming every sweep here uses."""
    return f"{dataset}/{method}"


# ----------------------------------------------------------------------
# Table III — recommendation performance of all methods on all datasets
# ----------------------------------------------------------------------
def table3_sweep(datasets: Sequence[str] = DATASET_NAMES) -> SweepSpec:
    """Nine methods per dataset, aggregated into final ranking metrics."""
    runs: List[RunSpec] = []
    for name in datasets:
        dataset = mini_dataset(name)
        for model in CENTRALIZED_MODELS:
            runs.append(RunSpec(run_id(name, f"centralized-{model}"),
                                centralized_spec(model), dataset))
        for baseline in BASELINES:
            runs.append(RunSpec(run_id(name, baseline),
                                baseline_spec(baseline), dataset))
        for model in PTF_SERVER_MODELS:
            # audit_privacy=False: the hand-rolled loop never audited —
            # the Top Guess Attack is Table V's job, and the audit does
            # not touch the ranking metrics this table reports.
            runs.append(RunSpec(run_id(name, f"ptf-{model}"),
                                ptf_spec(model, audit_privacy=False), dataset))
    return SweepSpec(
        name="table3",
        runs=runs,
        stages=[StageSpec(name="metrics", aggregator="final-metrics")],
    )


def table3_results(metrics: Dict[str, Dict[str, float]],
                   datasets: Sequence[str] = DATASET_NAMES) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Reshape the ``metrics`` stage into the benchmark's nested layout:
    ``{dataset: {method label: {"Recall@20": ..., "NDCG@20": ...}}}``."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in datasets:
        results[name] = {}
        for method, label in METHOD_LABELS.items():
            entry = metrics[run_id(name, method)]
            results[name][label] = {
                "Recall@20": entry[f"Recall@{entry['k']}"],
                "NDCG@20": entry[f"NDCG@{entry['k']}"],
            }
    return results


def table3_rows(results: Dict[str, Dict[str, Dict[str, float]]],
                datasets: Sequence[str] = DATASET_NAMES) -> List[List]:
    """Rows for :func:`conftest.print_table` (method x dataset metrics)."""
    rows = []
    for label in METHOD_LABELS.values():
        row: List = [label]
        for name in datasets:
            metrics = results[name][label]
            row.extend([metrics["Recall@20"], metrics["NDCG@20"]])
        rows.append(row)
    return rows


def table3_header(datasets: Sequence[str] = DATASET_NAMES) -> List[str]:
    header = ["Method"]
    for name in datasets:
        header.extend([f"{PAPER_NAMES[name]} R@20", f"{PAPER_NAMES[name]} N@20"])
    return header


# ----------------------------------------------------------------------
# Table IV — measured per-client per-round communication cost
# ----------------------------------------------------------------------
def table4_sweep(datasets: Sequence[str] = DATASET_NAMES) -> SweepSpec:
    """Short runs of every communicating paradigm, aggregated into ledger
    totals (the analytic paper-scale half of Table IV needs no training —
    see ``test_table4_communication.py``)."""
    runs: List[RunSpec] = []
    for name in datasets:
        dataset = mini_dataset(name)
        for baseline in BASELINES:
            runs.append(RunSpec(
                run_id(name, baseline),
                baseline_spec(baseline, rounds=2, client_local_epochs=1),
                dataset,
            ))
        runs.append(RunSpec(
            run_id(name, "ptf"),
            ptf_spec("ngcf", rounds=2, client_local_epochs=1, server_epochs=1,
                     audit_privacy=False),
            dataset,
        ))
    return SweepSpec(
        name="table4",
        runs=runs,
        stages=[StageSpec(name="communication", aggregator="communication")],
    )


def table4_costs(communication: Dict[str, Dict[str, float]],
                 datasets: Sequence[str] = DATASET_NAMES) -> Dict[str, Dict[str, float]]:
    """``{dataset: {method label: KB per client per round}}`` from the
    ``communication`` stage."""
    costs: Dict[str, Dict[str, float]] = {}
    for name in datasets:
        costs[name] = {
            "FCF": communication[run_id(name, "fcf")]["average_client_round_kilobytes"],
            "FedMF": communication[run_id(name, "fedmf")]["average_client_round_kilobytes"],
            "MetaMF": communication[run_id(name, "metamf")]["average_client_round_kilobytes"],
            "PTF-FedRec": communication[run_id(name, "ptf")]["average_client_round_kilobytes"],
        }
    return costs


def table4_rows(costs: Dict[str, Dict[str, float]],
                datasets: Sequence[str] = DATASET_NAMES) -> List[List[str]]:
    rows = []
    for name in datasets:
        entry = costs[name]
        rows.append([
            PAPER_NAMES[name],
            f"{entry['FCF']:.1f} KB",
            f"{entry['FedMF']:.1f} KB",
            f"{entry['MetaMF']:.1f} KB",
            f"{entry['PTF-FedRec']:.2f} KB",
            f"{min(entry['FCF'], entry['MetaMF']) / entry['PTF-FedRec']:.0f}x",
        ])
    return rows


# ----------------------------------------------------------------------
# Figure 4 — impact of the dispersed dataset size alpha
# ----------------------------------------------------------------------
def fig4_sweep(dataset: str = "movielens-mini") -> SweepSpec:
    """PTF-FedRec(NGCF) across the paper's alpha grid on one dataset."""
    runs = [
        RunSpec(
            f"alpha={alpha}",
            ptf_spec("ngcf", alpha=alpha, rounds=ALPHA_ROUNDS, audit_privacy=False),
            mini_dataset(dataset),
        )
        for alpha in ALPHA_VALUES
    ]
    return SweepSpec(
        name="fig4",
        runs=runs,
        stages=[StageSpec(name="metrics", aggregator="final-metrics")],
    )


def fig4_series(metrics: Dict[str, Dict[str, float]]) -> List[tuple]:
    """The benchmark's ``(alpha, ndcg, recall)`` series from the stage."""
    series = []
    for alpha in ALPHA_VALUES:
        entry = metrics[f"alpha={alpha}"]
        k = entry["k"]
        series.append((alpha, entry[f"NDCG@{k}"], entry[f"Recall@{k}"]))
    return series

"""Gateway load benchmark: micro-batching vs the per-request loop.

The acceptance bars for the serving gateway, asserted over one
:func:`benchmarks.serve_loadgen.run_load_suite` run at 10k simulated
users (seeded arrivals, MetaMF service — see ``serve_loadgen`` for why
that architecture is the micro-batching stress case):

* closed-loop gateway QPS at least :data:`MIN_SPEEDUP` x the naive
  per-request loop's QPS;
* client-observed p99 latency within the configured SLO on both the
  closed-loop and the open-loop (Poisson-arrival) runs;
* zero requests shed — the SLO headroom is real, not survivorship.

The full report is printed and, when ``SERVE_GATEWAY_JSON`` names a
path, written there as well — the CI ``serve-smoke`` job uploads that
file as a workflow artifact (same convention as ``SCALE_MEMORY_JSON``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from serve_loadgen import NUM_USERS, SLO_MS, run_load_suite

#: Acceptance floor for closed-loop gateway QPS over per-request QPS.
#: The measured ratio is far higher (the per-request path re-runs the
#: meta network per query); 3x leaves room for noisy shared CI runners.
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def load_report() -> dict:
    report = run_load_suite()
    artifact = os.environ.get("SERVE_GATEWAY_JSON")
    rendered = json.dumps(report, indent=2)
    if artifact:
        Path(artifact).write_text(rendered + "\n")
    print(rendered)
    return report


def test_simulates_ten_thousand_users(load_report):
    assert NUM_USERS >= 10_000
    assert load_report["num_users"] == NUM_USERS


def test_microbatching_beats_per_request_path(load_report):
    baseline = load_report["baseline"]["qps"]
    gateway = load_report["closed_loop"]["qps"]
    assert load_report["qps_speedup"] >= MIN_SPEEDUP, (
        f"closed-loop gateway reached {gateway:.0f} QPS vs per-request "
        f"{baseline:.0f} QPS — {load_report['qps_speedup']:.2f}x, "
        f"below the {MIN_SPEEDUP}x acceptance floor"
    )


def test_p99_within_slo(load_report):
    for pattern in ("closed_loop", "open_loop"):
        p99 = load_report[pattern]["latency_ms"]["p99"]
        assert p99 <= SLO_MS, (
            f"{pattern} client p99 {p99:.1f}ms exceeds the {SLO_MS}ms SLO"
        )


def test_no_requests_shed(load_report):
    for pattern in ("closed_loop", "open_loop"):
        run = load_report[pattern]
        assert run["rejected"] == 0
        assert run["completed"] == run["num_requests"]


def test_batches_actually_form(load_report):
    """The speedup must come from coalescing, not a degenerate 1-batch."""
    stats = load_report["closed_loop"]["gateway"]
    assert stats["mean_batch"] >= 4.0
    assert stats["completed"] == load_report["closed_loop"]["completed"]

"""Sweep telemetry: what ran, what was cached, what it cost.

A :class:`SweepReport` is produced by every :meth:`repro.sweep.Sweep.run`
and can be written as JSON (the CI ``sweep-smoke`` job uploads it as a
workflow artifact).  Per run it records the cache disposition and wall
time; for the sweep it derives the headline numbers — cache hit ratio and
the parallel speedup against the serial cost of the work that actually
executed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union


@dataclass(frozen=True)
class RunTelemetry:
    """One run's execution record.

    ``wall_time_seconds`` is the measured task time for executed runs and
    the artifact's recorded training duration for cache hits (what the hit
    *saved*, not what it cost — a cached lookup costs microseconds).
    """

    run_id: str
    fingerprint: str
    cached: bool
    wall_time_seconds: float
    trainer: str
    backend: str
    worker: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "wall_time_seconds": self.wall_time_seconds,
            "trainer": self.trainer,
            "backend": self.backend,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunTelemetry":
        return cls(
            run_id=str(data["run_id"]),
            fingerprint=str(data["fingerprint"]),
            cached=bool(data["cached"]),
            wall_time_seconds=float(data["wall_time_seconds"]),
            trainer=str(data["trainer"]),
            backend=str(data["backend"]),
            worker=data.get("worker"),
        )


@dataclass
class SweepReport:
    """The whole sweep's execution telemetry."""

    sweep: str
    workers: int
    wall_time_seconds: float
    runs: List[RunTelemetry] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived headline numbers
    # ------------------------------------------------------------------
    @property
    def total_runs(self) -> int:
        return len(self.runs)

    @property
    def executed(self) -> int:
        """Runs that actually trained (cache misses)."""
        return sum(1 for run in self.runs if not run.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.cached)

    @property
    def executed_seconds(self) -> float:
        """Summed wall time of the cache misses — the serial cost of the
        work this sweep actually performed."""
        return sum(run.wall_time_seconds for run in self.runs if not run.cached)

    @property
    def saved_seconds(self) -> float:
        """Summed recorded training time of the cache hits — what the
        cache avoided recomputing."""
        return sum(run.wall_time_seconds for run in self.runs if run.cached)

    @property
    def parallel_speedup(self) -> Optional[float]:
        """Executed serial cost / sweep wall time (None when nothing ran)."""
        if self.executed == 0 or self.wall_time_seconds <= 0.0:
            return None
        return self.executed_seconds / self.wall_time_seconds

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "workers": self.workers,
            "wall_time_seconds": self.wall_time_seconds,
            "total_runs": self.total_runs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "executed_seconds": self.executed_seconds,
            "saved_seconds": self.saved_seconds,
            "parallel_speedup": self.parallel_speedup,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepReport":
        return cls(
            sweep=str(data["sweep"]),
            workers=int(data["workers"]),
            wall_time_seconds=float(data["wall_time_seconds"]),
            runs=[RunTelemetry.from_dict(entry) for entry in data["runs"]],
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the report as JSON (parent dirs are created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepReport":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def summary(self) -> str:
        """One human line: the sweep's cache and parallelism story."""
        parts = [
            f"sweep {self.sweep!r}: {self.total_runs} runs",
            f"{self.cache_hits} cached",
            f"{self.executed} executed in {self.wall_time_seconds:.1f}s "
            f"on {self.workers} workers",
        ]
        if self.parallel_speedup is not None:
            parts.append(f"speedup {self.parallel_speedup:.1f}x vs serial")
        if self.saved_seconds > 0:
            parts.append(f"cache saved ~{self.saved_seconds:.1f}s")
        return ", ".join(parts)

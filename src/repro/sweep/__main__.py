"""Command-line entry point: ``python -m repro.sweep <sweep.json>``.

Executes a declarative sweep file (see :meth:`repro.sweep.SweepSpec.from_dict`
for the format and ``docs/sweeps.md`` for a guide), prints each stage's
output as JSON, and exits:

* ``0`` — every run completed (executed or served from cache),
* ``1`` — one or more runs failed (completed runs stay cached, so fixing
  the failure and re-invoking performs only the missing work),
* ``2`` — usage error: unreadable sweep file, invalid spec, bad DAG.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.sweep.runner import Sweep, SweepError
from repro.sweep.spec import SweepSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Parallel, fingerprint-cached experiment sweeps (see docs/sweeps.md)",
    )
    parser.add_argument("sweep", help="path to a declarative sweep JSON file")
    parser.add_argument(
        "--store", default=None,
        help="artifact store directory (default: sweep-artifacts-<name> "
             "next to the sweep file)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: all cores, capped at 8; 1 = serial)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the telemetry report JSON to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--stages-json", metavar="PATH", default=None,
        help="additionally write every stage's output to PATH as JSON",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-run progress lines (the summary still prints)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    sweep_path = Path(args.sweep)
    try:
        spec = SweepSpec.from_json(sweep_path.read_text(encoding="utf-8"))
    except OSError as error:
        print(f"error: cannot read sweep file: {error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        print(f"error: invalid sweep spec: {error}", file=sys.stderr)
        return 2

    store = args.store
    if store is None:
        store = str(sweep_path.resolve().parent / f"sweep-artifacts-{spec.name}")

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    try:
        sweep = Sweep(spec, store=store, workers=args.workers, progress=progress)
    except ValueError as error:
        print(f"error: invalid sweep: {error}", file=sys.stderr)
        return 2

    try:
        outcome = sweep.run()
    except SweepError as error:
        print(error, file=sys.stderr)
        return 1

    if args.report:
        outcome.report.save(args.report)
    if args.stages_json:
        path = Path(args.stages_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(outcome.stages, indent=2), encoding="utf-8")
    if outcome.stages:
        print(json.dumps(outcome.stages, indent=2))
    print(outcome.report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The sweep orchestrator: fingerprint-cached, parallel, resumable.

:class:`Sweep` executes a :class:`~repro.sweep.spec.SweepSpec` against an
:class:`~repro.sweep.store.ArtifactStore`:

1. **Fingerprint** — each run's
   :meth:`~repro.experiments.spec.ExperimentSpec.fingerprint` is computed
   over its spec, backend and dataset SHA-256.  Runs whose fingerprint
   already has a completed artifact are *cache hits* and never execute;
   identical runs within one sweep dedupe to a single execution.
2. **Execute** — the remaining runs fan out across a persistent worker
   pool (:class:`~repro.sweep.executor.SweepExecutor`); every completed
   run is stored atomically before its task returns, so a killed sweep
   resumes for free — re-invoking it executes exactly the missing runs.
3. **Aggregate** — derived stages run in DAG dependency order on the
   collected :class:`~repro.experiments.result.RunResult`s.

The outcome carries per-run results, per-stage values and a
:class:`~repro.sweep.report.SweepReport` (cache hits, wall times,
speedup).  Because run results are ``==``-identical regardless of worker
count or completion order (all randomness is keyed by the spec, never by
execution), a parallel cached sweep is interchangeable with a serial
uncached one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.result import RunResult
from repro.sweep.executor import RunTask, SweepExecutor, default_worker_count
from repro.sweep.report import RunTelemetry, SweepReport
from repro.sweep.spec import ALL_RUNS, StageSpec, SweepSpec
from repro.sweep.store import ArtifactStore


class SweepError(RuntimeError):
    """One or more sweep runs failed; carries every failure, not just the first."""

    def __init__(self, failures: Mapping[str, str]):
        self.failures = dict(failures)
        lines = "\n\n".join(
            f"--- run {run_id!r} ---\n{error}" for run_id, error in self.failures.items()
        )
        super().__init__(
            f"{len(self.failures)} sweep run(s) failed "
            f"(completed runs are cached and will not re-execute on retry):\n{lines}"
        )


# ----------------------------------------------------------------------
# Aggregator registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageContext:
    """What an aggregator sees: its stage's inputs, by name."""

    stage: StageSpec
    results: Mapping[str, RunResult]   # the runs this stage needs
    stages: Mapping[str, Any]          # outputs of needed upstream stages
    options: Mapping[str, Any] = field(default_factory=dict)


Aggregator = Callable[[StageContext], Any]

_AGGREGATORS: Dict[str, Aggregator] = {}


def register_aggregator(name: str, overwrite: bool = False):
    """Decorator registering a named aggregator for JSON-declared stages."""

    def decorate(fn: Aggregator) -> Aggregator:
        if name in _AGGREGATORS and not overwrite:
            raise ValueError(f"aggregator {name!r} is already registered")
        _AGGREGATORS[name] = fn
        return fn

    return decorate


def available_aggregators() -> Tuple[str, ...]:
    """The registered aggregator names, sorted."""
    return tuple(sorted(_AGGREGATORS))


def resolve_aggregator(aggregator: Union[str, Aggregator]) -> Aggregator:
    if callable(aggregator):
        return aggregator
    if aggregator not in _AGGREGATORS:
        raise ValueError(
            f"unknown aggregator {aggregator!r}; registered: {available_aggregators()}"
        )
    return _AGGREGATORS[aggregator]


@register_aggregator("final-metrics")
def _final_metrics(ctx: StageContext) -> Dict[str, Dict[str, Any]]:
    """Per run: the final ranking metrics (plus k and user count)."""
    return {
        run_id: {
            **result.final.as_dict(),
            "k": result.final.k,
            "num_users_evaluated": result.final.num_users_evaluated,
        }
        for run_id, result in ctx.results.items()
    }


@register_aggregator("communication")
def _communication(ctx: StageContext) -> Dict[str, Dict[str, Any]]:
    """Per run: the communication-ledger totals (Table IV's raw numbers)."""
    return {run_id: result.communication.to_dict() for run_id, result in ctx.results.items()}


@register_aggregator("metric-series")
def _metric_series(ctx: StageContext) -> Dict[str, List[float]]:
    """Per run: one logged metric's per-round series (``options.metric``)."""
    metric = ctx.options.get("metric")
    if not metric:
        raise ValueError('the "metric-series" aggregator needs options={"metric": ...}')
    return {run_id: result.metric_series(metric) for run_id, result in ctx.results.items()}


# ----------------------------------------------------------------------
# DAG ordering
# ----------------------------------------------------------------------
def stage_order(spec: SweepSpec) -> List[StageSpec]:
    """Topologically order the stages; reject unknown needs and cycles.

    Runs are the DAG's sources (all available once the execution phase
    finishes), so only stage→stage edges constrain the order.  Kahn's
    algorithm with name-sorted tie-breaking keeps the order deterministic.
    """
    run_ids = {run.id for run in spec.runs}
    stages = {stage.name: stage for stage in spec.stages}
    pending_deps: Dict[str, set] = {}
    for stage in spec.stages:
        deps = set()
        for need in stage.needs:
            if need == ALL_RUNS or need in run_ids:
                continue
            if need == stage.name:
                raise ValueError(f"stage {stage.name!r} depends on itself")
            if need not in stages:
                raise ValueError(
                    f"stage {stage.name!r} needs unknown node {need!r} "
                    f"(not a run id, stage name, or '{ALL_RUNS}')"
                )
            deps.add(need)
        pending_deps[stage.name] = deps

    ordered: List[StageSpec] = []
    satisfied: set = set()
    while pending_deps:
        ready = sorted(
            name for name, deps in pending_deps.items() if deps <= satisfied
        )
        if not ready:
            cycle = sorted(pending_deps)
            raise ValueError(f"stage dependency cycle among {cycle}")
        for name in ready:
            ordered.append(stages[name])
            satisfied.add(name)
            del pending_deps[name]
    return ordered


# ----------------------------------------------------------------------
# Outcome
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Everything one sweep invocation produced."""

    spec: SweepSpec
    results: Dict[str, RunResult]
    stages: Dict[str, Any]
    report: SweepReport

    def __getitem__(self, name: str) -> Any:
        """A stage's value by name, or a run's result by id."""
        if name in self.stages:
            return self.stages[name]
        return self.results[name]


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class Sweep:
    """Execute one :class:`SweepSpec` against an artifact store."""

    def __init__(
        self,
        spec: Union[SweepSpec, Mapping],
        store: Union[ArtifactStore, str, None] = None,
        workers: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        if not isinstance(spec, SweepSpec):
            spec = SweepSpec.from_dict(spec)
        self.spec = spec
        if store is None:
            store = ArtifactStore(f"sweep-artifacts-{spec.name}")
        elif not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.workers = default_worker_count() if workers is None else max(1, int(workers))
        self._progress = progress
        # Validate the stage DAG up front: a cycle or a dangling need
        # should fail before any training is spent.
        self._stage_order = stage_order(spec)

    def _log(self, message: str) -> None:
        if self._progress is not None:
            self._progress(f"[{self.spec.name}] {message}")

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprints(self) -> Dict[str, str]:
        """Run id -> artifact fingerprint (spec + backend + dataset SHA-256).

        Each distinct dataset recipe is built once, here in the driver, to
        take its content hash; workers rebuild datasets themselves from
        the recipe (cached per worker), so nothing heavy ships.
        """
        from repro.artifacts.checkpoint import dataset_fingerprint

        dataset_hashes: Dict[str, str] = {}
        mapping: Dict[str, str] = {}
        for run in self.spec.runs:
            key = run.dataset.key()
            if key not in dataset_hashes:
                dataset_hashes[key] = dataset_fingerprint(run.dataset.build())
            mapping[run.id] = run.experiment.fingerprint(dataset_hashes[key])
        return mapping

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SweepOutcome:
        """Execute the sweep: cache-check, fan out, aggregate, report."""
        start = time.perf_counter()
        fingerprints = self.fingerprints()

        # Cache check + in-sweep dedup: one execution per distinct
        # fingerprint, shared by every run id that maps to it.
        cached: Dict[str, RunResult] = {}
        pending: Dict[str, RunTask] = {}
        telemetry: Dict[str, RunTelemetry] = {}
        for run in self.spec.runs:
            fingerprint = fingerprints[run.id]
            if fingerprint in cached or fingerprint in pending:
                continue
            stored = self.store.load(fingerprint)
            if stored is not None:
                cached[fingerprint] = stored
            else:
                pending[fingerprint] = RunTask(
                    run_id=run.id,
                    fingerprint=fingerprint,
                    spec=run.experiment.to_dict(),
                    dataset=run.dataset.to_dict(),
                    store_root=str(self.store.root),
                )
        self._log(
            f"{len(self.spec.runs)} runs: {len(pending)} to execute, "
            f"{len(self.spec.runs) - len(pending)} cached "
            f"({self.workers} workers)"
        )

        by_fingerprint: Dict[str, RunResult] = dict(cached)
        failures: Dict[str, str] = {}
        if pending:
            done = 0
            with SweepExecutor(self.workers) as executor:
                for outcome in executor.map_unordered(list(pending.values())):
                    done += 1
                    if outcome.error is not None:
                        failures[outcome.run_id] = outcome.error
                        self._log(f"({done}/{len(pending)}) {outcome.run_id} FAILED")
                        continue
                    by_fingerprint[outcome.fingerprint] = RunResult.from_dict(outcome.result)
                    telemetry[outcome.fingerprint] = RunTelemetry(
                        run_id=outcome.run_id,
                        fingerprint=outcome.fingerprint,
                        cached=False,
                        wall_time_seconds=outcome.wall_time_seconds,
                        trainer=by_fingerprint[outcome.fingerprint].trainer,
                        backend=by_fingerprint[outcome.fingerprint].spec.backend,
                        worker=outcome.worker,
                    )
                    self._log(
                        f"({done}/{len(pending)}) {outcome.run_id} "
                        f"executed in {outcome.wall_time_seconds:.1f}s"
                    )
        if failures:
            raise SweepError(failures)

        results: Dict[str, RunResult] = {}
        run_records: List[RunTelemetry] = []
        for run in self.spec.runs:
            fingerprint = fingerprints[run.id]
            result = by_fingerprint[fingerprint]
            results[run.id] = result
            executed = telemetry.get(fingerprint)
            if executed is not None and executed.run_id == run.id:
                run_records.append(executed)
            else:
                # Cache hit (stored artifact, or deduped onto another run
                # id this sweep executed): record the training time the
                # artifact carries — the cost the cache avoided.
                run_records.append(RunTelemetry(
                    run_id=run.id,
                    fingerprint=fingerprint,
                    cached=True,
                    wall_time_seconds=result.duration_seconds,
                    trainer=result.trainer,
                    backend=result.spec.backend,
                ))

        stages = self._run_stages(results)
        report = SweepReport(
            sweep=self.spec.name,
            workers=self.workers,
            wall_time_seconds=time.perf_counter() - start,
            runs=run_records,
        )
        self._log(report.summary())
        return SweepOutcome(spec=self.spec, results=results, stages=stages, report=report)

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _run_stages(self, results: Mapping[str, RunResult]) -> Dict[str, Any]:
        outputs: Dict[str, Any] = {}
        for stage in self._stage_order:
            needed_runs: Dict[str, RunResult] = {}
            needed_stages: Dict[str, Any] = {}
            for need in stage.needs:
                if need == ALL_RUNS:
                    needed_runs.update(results)
                elif need in results:
                    needed_runs[need] = results[need]
                else:
                    needed_stages[need] = outputs[need]
            context = StageContext(
                stage=stage,
                results=needed_runs,
                stages=needed_stages,
                options=stage.options,
            )
            outputs[stage.name] = resolve_aggregator(stage.aggregator)(context)
            self._log(f"stage {stage.name!r} done")
        return outputs


def run_sweep(
    spec: Union[SweepSpec, Mapping],
    store: Union[ArtifactStore, str, None] = None,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """One-call convenience: ``Sweep(spec, store, workers).run()``."""
    return Sweep(spec, store=store, workers=workers, progress=progress).run()

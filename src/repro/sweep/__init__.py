"""repro.sweep — declarative, parallel, fingerprint-cached experiment sweeps.

One sweep = a :class:`SweepSpec` (runs from grids / explicit lists /
generators, plus derived DAG stages), executed by :class:`Sweep` against a
fingerprint-keyed :class:`ArtifactStore`.  Completed runs never re-execute
— re-invoking a crashed or extended sweep performs only the missing work —
and parallel cached results are ``==`` to a serial uncached pass.

Quickstart::

    from repro.sweep import SweepSpec, run_sweep

    sweep = SweepSpec.from_grid(
        "alpha", base={"trainer": "ptf"}, grid={"alpha": [10, 50, 100]},
    )
    outcome = run_sweep(sweep, store="artifacts/alpha", workers=4)
    print(outcome.report.summary())
    print(outcome.results["alpha=50"].final.as_dict())

Or from the command line: ``python -m repro.sweep sweep.json`` (see
``docs/sweeps.md``).
"""

from repro.sweep.executor import SweepExecutor, default_worker_count
from repro.sweep.report import RunTelemetry, SweepReport
from repro.sweep.runner import (
    StageContext,
    Sweep,
    SweepError,
    SweepOutcome,
    available_aggregators,
    register_aggregator,
    run_sweep,
    stage_order,
)
from repro.sweep.spec import (
    ALL_RUNS,
    DatasetSpec,
    RunSpec,
    StageSpec,
    SweepSpec,
    available_dataset_sources,
    expand_grid,
    register_dataset_source,
)
from repro.sweep.store import ArtifactStore

__all__ = [
    "ALL_RUNS",
    "ArtifactStore",
    "DatasetSpec",
    "RunSpec",
    "RunTelemetry",
    "StageContext",
    "StageSpec",
    "Sweep",
    "SweepError",
    "SweepExecutor",
    "SweepOutcome",
    "SweepReport",
    "SweepSpec",
    "available_aggregators",
    "available_dataset_sources",
    "default_worker_count",
    "expand_grid",
    "register_aggregator",
    "register_dataset_source",
    "run_sweep",
    "stage_order",
]

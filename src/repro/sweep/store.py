"""Fingerprint-keyed artifact store: the sweep cache.

Every run's :class:`~repro.experiments.result.RunResult` is stored in a
directory named by its fingerprint
(:meth:`repro.experiments.spec.ExperimentSpec.fingerprint` over the spec,
backend and dataset SHA-256), so "has this exact experiment already been
computed" is a single directory lookup — across sweeps, across processes,
across machines sharing a store.

Completion is atomic, mirroring the checkpoint contract of
:mod:`repro.artifacts`: results are written into a sibling temp directory
and ``os.replace``-renamed into the fingerprint slot.  A sweep killed at
any instant leaves either a complete artifact at the slot or only a temp
directory the store ignores — a resume never trusts a half-written result.

The cache trusts the *fingerprint*, which covers the spec, backend and
dataset — not the code that computed the artifact.  After changing
training code, clear the store (or point the sweep at a fresh one); the
benchmarks default to a per-session temp store for exactly this reason.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.result import RunResult

RESULT_NAME = "result.json"
_TMP_PREFIX = ".tmp-"


class ArtifactStore:
    """A directory of completed run artifacts, keyed by fingerprint."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def path(self, fingerprint: str) -> Path:
        """The artifact slot for one fingerprint (exists only if complete)."""
        if not fingerprint or fingerprint.startswith(_TMP_PREFIX) or "/" in fingerprint:
            raise ValueError(f"invalid fingerprint {fingerprint!r}")
        return self.root / fingerprint

    def result_path(self, fingerprint: str) -> Path:
        return self.path(fingerprint) / RESULT_NAME

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def completed(self, fingerprint: str) -> bool:
        """Whether a complete artifact occupies the slot.

        Only a fully written artifact can occupy the slot (writes are
        staged in a temp directory and renamed in), so presence of the
        result file *is* the completion marker.
        """
        return self.result_path(fingerprint).exists()

    def load(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result, or ``None`` when the slot is empty."""
        try:
            return RunResult.load(self.result_path(fingerprint))
        except FileNotFoundError:
            return None

    def provenance(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The artifact's provenance block (see :meth:`RunResult.save`).

        ``None`` for an empty slot or a pre-provenance artifact.
        """
        path = self.result_path(fingerprint)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        return data.get("provenance")

    def fingerprints(self) -> List[str]:
        """Fingerprints of every completed artifact, sorted."""
        if not self.root.exists():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(_TMP_PREFIX)
            and (entry / RESULT_NAME).exists()
        )

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __contains__(self, fingerprint: str) -> bool:
        return self.completed(fingerprint)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def save(self, fingerprint: str, result: RunResult) -> Path:
        """Write ``result`` into the fingerprint slot, atomically.

        The result is staged in a temp directory (named so concurrent
        writers never collide) and renamed into place.  When a concurrent
        writer of the *same* fingerprint wins the rename, its artifact is
        kept — by construction both computed the same result — and the
        staging copy is discarded.
        """
        target = self.path(fingerprint)
        staging = self.root / f"{_TMP_PREFIX}{fingerprint}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            result.save(staging / RESULT_NAME)
            try:
                os.replace(staging, target)
            except OSError:
                # ``os.replace`` cannot replace a non-empty directory: a
                # concurrent writer completed the same fingerprint first.
                if not self.completed(fingerprint):
                    raise
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        return target

    def discard(self, fingerprint: str) -> bool:
        """Remove one artifact (e.g. to force recomputation); True if it existed."""
        target = self.path(fingerprint)
        if target.exists():
            shutil.rmtree(target)
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArtifactStore(root={str(self.root)!r}, completed={len(self)})"

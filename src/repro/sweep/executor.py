"""Process-pool execution of sweep runs: warm workers, per-run isolation.

The executor owns one persistent :mod:`multiprocessing` pool for the whole
sweep — workers are spawned once and reused across every run, so a
100-run sweep pays process startup (interpreter boot, ``import repro``)
``workers`` times, not 100 times.  The pool initializer pre-imports the
training stack, so even the first task on each worker runs warm.

Per-run state is nevertheless fully isolated, which is what makes results
``==`` to serial execution:

* **Backend** — task payloads carry the *resolved* spec dict (a concrete
  ``backend`` name, pinned by the driver), and the trainer adapter
  activates it around build/fit/evaluate.  Nothing depends on the worker
  process's ambient backend, so the pool is spawn-safe and one sweep may
  mix backends freely.
* **RNG** — every random stream is derived from ``(spec.seed, component
  [, client, round])`` inside :func:`repro.run`; no draw depends on which
  worker executes the run or in what order runs complete.
* **Datasets** — workers rebuild each :class:`~repro.sweep.spec.DatasetSpec`
  deterministically and memoize it per process (the warm pool makes this
  cache effective), so payloads ship recipes, not interaction matrices.

Each completed run is saved into the
:class:`~repro.sweep.store.ArtifactStore` *by the worker, atomically,
before the task returns* — a killed sweep keeps everything finished so
far, and a resume re-executes only the rest.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Per-worker dataset memo: DatasetSpec.key() -> built dataset.  Module
#: state is per *process*, so each pool worker (and the serial in-process
#: path) keeps its own copy; entries are deterministic, so sharing a key
#: always means sharing identical data.
_DATASET_CACHE: Dict[str, Any] = {}


def _build_dataset(dataset_dict: Dict[str, Any]):
    from repro.sweep.spec import DatasetSpec

    spec = DatasetSpec.from_dict(dataset_dict)
    key = spec.key()
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = spec.build()
    return _DATASET_CACHE[key]


@dataclass(frozen=True)
class RunTask:
    """One unit of pool work: execute a run and store its artifact."""

    run_id: str
    fingerprint: str
    spec: Dict[str, Any]       # resolved ExperimentSpec.to_dict()
    dataset: Dict[str, Any]    # DatasetSpec.to_dict()
    store_root: str


@dataclass(frozen=True)
class TaskOutcome:
    """What one executed task reports back to the driver."""

    run_id: str
    fingerprint: str
    wall_time_seconds: float
    worker: int
    result: Optional[Dict[str, Any]]   # RunResult.to_dict(), None on error
    error: Optional[str] = None


def _warm_worker() -> None:
    """Pool initializer: pay the import cost once per worker, not per task."""
    import repro  # noqa: F401  (the import *is* the warm-up)


def execute_task(task: RunTask) -> TaskOutcome:
    """Run one experiment, save its artifact, report telemetry.

    Runs in a pool worker (or inline for serial sweeps).  Exceptions are
    caught and shipped back as strings — one failing run must not poison
    the pool or abandon the runs already in flight.
    """
    import repro
    from repro.sweep.store import ArtifactStore

    start = time.perf_counter()
    try:
        spec = repro.ExperimentSpec.from_dict(task.spec)
        dataset = _build_dataset(task.dataset)
        result = repro.run(spec, dataset)
        ArtifactStore(task.store_root).save(task.fingerprint, result)
        payload = result.to_dict()
        error = None
    except Exception:
        payload = None
        error = traceback.format_exc()
    return TaskOutcome(
        run_id=task.run_id,
        fingerprint=task.fingerprint,
        wall_time_seconds=time.perf_counter() - start,
        worker=os.getpid(),
        result=payload,
        error=error,
    )


class SweepExecutor:
    """A persistent worker pool executing :class:`RunTask`s.

    ``workers <= 1`` executes inline (no processes) — the reference path,
    used by tests asserting parallel ``==`` serial and by resumable
    subprocess drivers that want deterministic completion order.  Use as a
    context manager; the pool is created on entry and torn down on exit.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_worker_count()
        self.workers = max(1, int(workers))
        self._pool = None

    def __enter__(self) -> "SweepExecutor":
        if self.workers > 1:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = context.Pool(self.workers, initializer=_warm_worker)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def map_unordered(self, tasks: Sequence[RunTask]) -> Iterator[TaskOutcome]:
        """Yield task outcomes as they complete (order is not the input order)."""
        if self._pool is None:
            for task in tasks:
                yield execute_task(task)
            return
        yield from self._pool.imap_unordered(execute_task, tasks)


def default_worker_count() -> int:
    """Default sweep parallelism: every core, capped at 8.

    Individual runs already vectorize across a core; past ~8 sweep workers
    the mini-scale runs contend on memory bandwidth rather than parallelize.
    """
    return max(1, min(os.cpu_count() or 1, 8))

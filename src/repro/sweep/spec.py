"""Declarative sweep specifications: grids of experiments plus derived stages.

A :class:`SweepSpec` names every run a sweep performs and how its outputs
are combined.  Runs come from three constructions, freely mixed:

* an explicit list of experiments (:meth:`SweepSpec.from_dict` ``experiments``),
* a cartesian ``grid={field: [values, ...]}`` expansion over a ``base``
  :class:`~repro.experiments.spec.ExperimentSpec` — fields are the flat
  names ``ExperimentSpec.replace`` accepts (``alpha=50``,
  ``server_model="ngcf"``, plus ``trainer`` / ``seed`` / ``backend`` and
  the special key ``dataset`` selecting among the sweep's datasets),
* a generator: any iterable of :class:`RunSpec` handed straight to the
  :class:`SweepSpec` constructor (Python-only, for programmatic sweeps).

Datasets are declared once, by alias, as :class:`DatasetSpec` entries and
referenced per run.  A dataset spec is a *recipe*, not data: workers
rebuild it deterministically from its source registry entry, so sweep
payloads stay small and a JSON sweep file is fully self-contained.

Derived stages (:class:`StageSpec`) are aggregation nodes wired as a DAG:
each names the runs and/or earlier stages it ``needs`` and the aggregator
that combines them (a registered name for JSON sweeps, or any callable for
programmatic ones).  The orchestrator (:class:`repro.sweep.Sweep`) executes
runs first — in parallel, fingerprint-cached — then stages in dependency
order.

Every spec round-trips through ``to_dict``/``from_dict`` and JSON:

>>> sweep = SweepSpec.from_dict({
...     "name": "alpha-demo",
...     "datasets": {"ml": {"source": "debug", "seed": 7}},
...     "base": {"trainer": "ptf", "protocol": {"rounds": 2}},
...     "grid": {"alpha": [10, 30]},
... })
>>> [run.id for run in sweep.runs]
['alpha=10', 'alpha=30']
>>> SweepSpec.from_dict(sweep.to_dict()).runs[0].experiment.dispersal.alpha
10
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.spec import ExperimentSpec

#: The stage ``needs`` wildcard: "every run of the sweep".
ALL_RUNS = "*"


# ----------------------------------------------------------------------
# Dataset recipes
# ----------------------------------------------------------------------
DatasetBuilder = Callable[["DatasetSpec"], Any]

_DATASET_SOURCES: Dict[str, DatasetBuilder] = {}


def register_dataset_source(name: str, builder: DatasetBuilder,
                            overwrite: bool = False) -> DatasetBuilder:
    """Register a named dataset recipe (``DatasetSpec -> InteractionDataset``).

    Follows the trainer-registry idiom: re-registering an existing name
    raises unless ``overwrite=True``.
    """
    if name in _DATASET_SOURCES and not overwrite:
        raise ValueError(f"dataset source {name!r} is already registered")
    _DATASET_SOURCES[name] = builder
    return builder


def available_dataset_sources() -> Tuple[str, ...]:
    """The registered dataset source names, sorted."""
    return tuple(sorted(_DATASET_SOURCES))


def _build_debug(spec: "DatasetSpec"):
    from repro.data.synthetic import debug_dataset
    from repro.utils.rng import RngFactory

    # Same derivation as the ``repro.run`` default dataset, so a sweep over
    # {"source": "debug", "seed": s} reproduces bare ``repro.run(spec)``.
    return debug_dataset(RngFactory(spec.seed).spawn("experiment-data"), **spec.options)


def _build_mini(spec: "DatasetSpec"):
    from repro.data.synthetic import MINI_SPECS, generate_dataset
    from repro.utils.rng import RngFactory

    if spec.name not in MINI_SPECS:
        raise ValueError(f"unknown mini dataset {spec.name!r}; known: {sorted(MINI_SPECS)}")
    # Same derivation as benchmarks/conftest.py::build_dataset, so sweep
    # runs land on the exact datasets the hand-rolled benchmarks used.
    rng = RngFactory(spec.seed).spawn(f"dataset-{spec.name}")
    return generate_dataset(MINI_SPECS[spec.name], rng=rng)


def _build_paper(spec: "DatasetSpec"):
    from repro.data.synthetic import PAPER_SPECS, generate_dataset
    from repro.utils.rng import RngFactory

    if spec.name not in PAPER_SPECS:
        raise ValueError(f"unknown paper dataset {spec.name!r}; known: {sorted(PAPER_SPECS)}")
    rng = RngFactory(spec.seed).spawn(f"dataset-{spec.name}")
    return generate_dataset(PAPER_SPECS[spec.name], rng=rng)


register_dataset_source("debug", _build_debug)
register_dataset_source("mini", _build_mini)
register_dataset_source("paper", _build_paper)


@dataclass(frozen=True)
class DatasetSpec:
    """A deterministic dataset recipe: source registry entry + parameters.

    ``source`` names a builder registered with
    :func:`register_dataset_source` (``"debug"``, ``"mini"``, ``"paper"``
    ship built in); ``name`` selects a preset within the source (e.g.
    ``"movielens-mini"``); ``seed`` keys the synthesis RNG; ``options``
    are extra builder kwargs (``debug`` accepts ``num_users`` etc.).
    """

    source: str = "debug"
    name: Optional[str] = None
    seed: int = 0
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source not in _DATASET_SOURCES:
            raise ValueError(
                f"unknown dataset source {self.source!r}; "
                f"registered sources: {available_dataset_sources()}"
            )
        # Freeze options into a plain dict so ``key()`` is stable.
        object.__setattr__(self, "options", dict(self.options))
        object.__setattr__(self, "seed", int(self.seed))

    def build(self):
        """Materialize the dataset (deterministic for a fixed spec)."""
        return _DATASET_SOURCES[self.source](self)

    def key(self) -> str:
        """Canonical identity string (the per-worker dataset-cache key)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"source": self.source, "seed": self.seed}
        if self.name is not None:
            data["name"] = self.name
        if self.options:
            data["options"] = dict(self.options)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DatasetSpec":
        known = {"source", "name", "seed", "options"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown DatasetSpec fields {unknown}; known: {sorted(known)}")
        return cls(**dict(data))


# ----------------------------------------------------------------------
# Runs and stages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One node of the sweep's run layer: an experiment on a dataset."""

    id: str
    experiment: ExperimentSpec
    dataset: DatasetSpec = field(default_factory=DatasetSpec)

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ValueError(f"run id must be a non-empty string, got {self.id!r}")
        if self.id == ALL_RUNS:
            raise ValueError(f"run id {ALL_RUNS!r} is reserved for 'all runs'")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "spec": self.experiment.to_dict(),
            "dataset": self.dataset.to_dict(),
        }


@dataclass(frozen=True)
class StageSpec:
    """One derived node of the sweep DAG: aggregate upstream outputs.

    ``aggregator`` is a name registered with
    :func:`repro.sweep.register_aggregator` (JSON-serializable) or any
    callable taking a :class:`~repro.sweep.runner.StageContext`
    (programmatic sweeps only).  ``needs`` lists run ids and/or stage
    names; the default ``("*",)`` depends on every run.  ``options`` are
    passed to the aggregator through the context.
    """

    name: str
    aggregator: Union[str, Callable]
    needs: Tuple[str, ...] = (ALL_RUNS,)
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"stage name must be a non-empty string, got {self.name!r}")
        if self.name == ALL_RUNS:
            raise ValueError(f"stage name {ALL_RUNS!r} is reserved")
        object.__setattr__(self, "needs", tuple(str(need) for need in self.needs))
        object.__setattr__(self, "options", dict(self.options))
        if not (callable(self.aggregator) or isinstance(self.aggregator, str)):
            raise ValueError("aggregator must be a registered name or a callable")

    def to_dict(self) -> Dict[str, Any]:
        if callable(self.aggregator):
            raise ValueError(
                f"stage {self.name!r} uses a Python callable aggregator; only "
                "registered aggregator names serialize to JSON (see "
                "repro.sweep.register_aggregator)"
            )
        return {
            "name": self.name,
            "aggregator": self.aggregator,
            "needs": list(self.needs),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageSpec":
        known = {"name", "aggregator", "needs", "options"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown StageSpec fields {unknown}; known: {sorted(known)}")
        return cls(**dict(data))


def _format_grid_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "x".join(_format_grid_value(v) for v in value)
    return str(value)


def expand_grid(
    base: ExperimentSpec,
    grid: Mapping[str, Sequence[Any]],
    datasets: Optional[Mapping[str, DatasetSpec]] = None,
    default_dataset: Optional[DatasetSpec] = None,
) -> List[RunSpec]:
    """Cartesian expansion of flat-field value lists over a base spec.

    Grid keys are the flat field names :meth:`ExperimentSpec.replace`
    accepts (every section field plus ``trainer`` / ``seed`` /
    ``backend``), and the special key ``"dataset"`` whose values are
    aliases into ``datasets``.  Axis order is preserved, so run ids are
    stable: ``"alpha=10,dataset=ml"`` style, one ``field=value`` pair per
    axis.
    """
    datasets = dict(datasets or {})
    default_dataset = default_dataset if default_dataset is not None else DatasetSpec()
    axes = [(str(key), list(values)) for key, values in grid.items()]
    for key, values in axes:
        if not values:
            raise ValueError(f"grid axis {key!r} has no values")
    runs: List[RunSpec] = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides = dict(zip((key for key, _ in axes), combo))
        dataset = default_dataset
        alias = overrides.pop("dataset", None)
        if alias is not None:
            if alias not in datasets:
                raise ValueError(
                    f"grid dataset alias {alias!r} is not declared; "
                    f"known aliases: {sorted(datasets)}"
                )
            dataset = datasets[alias]
        experiment = base.replace(**overrides) if overrides else base
        run_id = ",".join(
            f"{key}={_format_grid_value(value)}" for key, value in zip(
                (key for key, _ in axes), combo
            )
        )
        runs.append(RunSpec(id=run_id or "base", experiment=experiment, dataset=dataset))
    return runs


@dataclass
class SweepSpec:
    """Everything one sweep does: named runs plus derived DAG stages."""

    name: str
    runs: List[RunSpec] = field(default_factory=list)
    stages: List[StageSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"sweep name must be a non-empty string, got {self.name!r}")
        self.runs = list(self.runs)
        self.stages = list(self.stages)
        if not self.runs:
            raise ValueError("a sweep needs at least one run")
        seen: set = set()
        for run in self.runs:
            if run.id in seen:
                raise ValueError(f"duplicate run id {run.id!r}")
            seen.add(run.id)
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(
                    f"stage name {stage.name!r} collides with another run or stage"
                )
            seen.add(stage.name)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        name: str,
        base: Union[ExperimentSpec, Mapping],
        grid: Mapping[str, Sequence[Any]],
        dataset: Union[DatasetSpec, Mapping, None] = None,
        datasets: Optional[Mapping[str, Union[DatasetSpec, Mapping]]] = None,
        stages: Sequence[StageSpec] = (),
    ) -> "SweepSpec":
        """Build a sweep from a base spec and a cartesian grid (see module doc)."""
        if not isinstance(base, ExperimentSpec):
            base = ExperimentSpec.from_dict(base)
        named = {
            alias: ds if isinstance(ds, DatasetSpec) else DatasetSpec.from_dict(ds)
            for alias, ds in (datasets or {}).items()
        }
        if dataset is not None and not isinstance(dataset, DatasetSpec):
            dataset = DatasetSpec.from_dict(dataset)
        runs = expand_grid(base, grid, datasets=named, default_dataset=dataset)
        return cls(name=name, runs=runs, stages=list(stages))

    @classmethod
    def from_experiments(
        cls,
        name: str,
        experiments: Iterable[Tuple[str, ExperimentSpec, DatasetSpec]],
        stages: Sequence[StageSpec] = (),
    ) -> "SweepSpec":
        """Build a sweep from a generator of ``(id, experiment, dataset)``."""
        runs = [RunSpec(id=i, experiment=e, dataset=d) for i, e, d in experiments]
        return cls(name=name, runs=runs, stages=list(stages))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (stages must use registered aggregators)."""
        return {
            "name": self.name,
            "experiments": [run.to_dict() for run in self.runs],
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Parse the declarative sweep format (see :mod:`repro.sweep` docs).

        Accepted keys: ``name``, ``datasets`` (alias -> dataset spec),
        ``dataset`` (default dataset, alias or inline spec), ``base`` +
        ``grid`` (cartesian expansion), ``experiments`` (explicit list;
        each entry carries ``spec`` — a full experiment dict — or
        ``overrides`` — flat fields applied to ``base`` — plus optional
        ``id`` and ``dataset`` alias), and ``stages``.
        """
        remaining = dict(data)
        name = remaining.pop("name", None)
        if not name:
            raise ValueError("sweep spec needs a 'name'")
        datasets = {
            alias: DatasetSpec.from_dict(ds)
            for alias, ds in (remaining.pop("datasets", None) or {}).items()
        }

        def resolve_dataset(value, context: str) -> DatasetSpec:
            if isinstance(value, str):
                if value not in datasets:
                    raise ValueError(
                        f"{context}: unknown dataset alias {value!r}; "
                        f"known aliases: {sorted(datasets)}"
                    )
                return datasets[value]
            return DatasetSpec.from_dict(value)

        default_dataset = remaining.pop("dataset", None)
        default_dataset = (
            resolve_dataset(default_dataset, "sweep default dataset")
            if default_dataset is not None
            else (next(iter(datasets.values())) if len(datasets) == 1 else DatasetSpec())
        )

        base = remaining.pop("base", None)
        base_spec = ExperimentSpec.from_dict(base) if base is not None else None

        runs: List[RunSpec] = []
        grid = remaining.pop("grid", None)
        if grid is not None:
            if base_spec is None:
                raise ValueError("a 'grid' needs a 'base' experiment spec to expand over")
            runs.extend(expand_grid(base_spec, grid, datasets=datasets,
                                    default_dataset=default_dataset))

        for index, entry in enumerate(remaining.pop("experiments", None) or []):
            entry = dict(entry)
            run_id = entry.pop("id", None)
            dataset = entry.pop("dataset", None)
            dataset = (
                resolve_dataset(dataset, f"experiments[{index}]")
                if dataset is not None else default_dataset
            )
            if "spec" in entry:
                experiment = ExperimentSpec.from_dict(entry.pop("spec"))
            elif "overrides" in entry:
                if base_spec is None:
                    raise ValueError(
                        f"experiments[{index}] uses 'overrides' but the sweep has no 'base'"
                    )
                experiment = base_spec.replace(**entry.pop("overrides"))
            else:
                raise ValueError(
                    f"experiments[{index}] needs a 'spec' or 'overrides' entry"
                )
            if entry:
                raise ValueError(
                    f"experiments[{index}] has unknown fields {sorted(entry)}"
                )
            runs.append(RunSpec(
                id=run_id if run_id is not None else f"run-{index}",
                experiment=experiment,
                dataset=dataset,
            ))

        stages = [StageSpec.from_dict(entry)
                  for entry in remaining.pop("stages", None) or []]
        if remaining:
            raise ValueError(
                f"unknown SweepSpec fields {sorted(remaining)}; known: "
                "['name', 'datasets', 'dataset', 'base', 'grid', 'experiments', 'stages']"
            )
        return cls(name=str(name), runs=runs, stages=stages)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a sweep from :meth:`to_json` output or a hand-written file."""
        return cls.from_dict(json.loads(text))

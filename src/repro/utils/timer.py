"""Wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as timer:
            run_round()
        print(timer.elapsed)
    """

    def __init__(self):
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start

"""Shared utilities: seeded RNG management, timing and simple logging."""

from repro.utils.rng import RngFactory, seeded_rng
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

__all__ = ["RngFactory", "seeded_rng", "get_logger", "Timer"]

"""Minimal logging helpers shared by trainers and the benchmark harness."""

from __future__ import annotations

import logging
import sys


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger that writes single-line records to stderr."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger

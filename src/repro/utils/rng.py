"""Deterministic random-number management.

Every stochastic component in the repository (dataset synthesis, negative
sampling, client sampling/swapping, model initialization) draws from a
:class:`numpy.random.Generator` created here, so a single integer seed
reproduces an entire experiment end to end.
"""

from __future__ import annotations

# repro: disable=backend-purity -- this module is the keyed-stream chokepoint over numpy's Generator API
import numpy as np


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Create a NumPy generator from an integer seed (or entropy if None)."""
    return np.random.default_rng(seed)


class RngFactory:
    """Produces independent, reproducible generators for named components.

    Each call to :meth:`spawn` derives a child seed from the base seed and
    the component name, so adding a new component never perturbs the
    random streams of existing ones — a property the regression tests rely
    on when comparing methods under "identical randomness".
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def spawn(self, name: str) -> np.random.Generator:
        """Return a generator unique to ``(base seed, name)``."""
        child_seed = np.random.SeedSequence([self.seed, _stable_hash(name)])
        return np.random.default_rng(child_seed)

    def spawn_indexed(self, name: str, index: int) -> np.random.Generator:
        """Return a generator unique to ``(base seed, name, index)``.

        Used for per-client randomness: client ``i`` in round ``t`` can ask
        for ``spawn_indexed("client-upload", i * T + t)``.
        """
        child_seed = np.random.SeedSequence([self.seed, _stable_hash(name), int(index)])
        return np.random.default_rng(child_seed)


def _stable_hash(text: str) -> int:
    """A deterministic 63-bit hash (Python's ``hash`` is salted per process)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value

"""Checkpoint wire format: a JSON manifest tree plus one ``.npz`` payload.

State trees produced by the systems' ``state_dict`` methods are nested
Python structures mixing JSON-safe scalars (ints, floats, strings, lists,
dicts) with NumPy arrays.  :func:`flatten_state` splits such a tree into

* a JSON-serializable twin in which every array is replaced by an
  ``{"__array__": <key>}`` placeholder, and
* a flat ``{key: ndarray}`` mapping destined for ``numpy.savez_compressed``,

where ``<key>`` is the ``/``-joined path of the array inside the tree
(e.g. ``"server/model/node_embedding"``), so the payload file stays
human-inspectable.  :func:`unflatten_state` is the exact inverse.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Tuple

# repro: disable=backend-purity -- npz (de)serialization of schema-v2 array payloads
import numpy as np

#: Placeholder key marking "this JSON object stands for an npz array".
ARRAY_PLACEHOLDER = "__array__"


def flatten_state(tree: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Split a state tree into a JSON-safe twin and its array payload."""
    arrays: Dict[str, np.ndarray] = {}

    def walk(node: Any, path: str) -> Any:
        if isinstance(node, np.ndarray):
            if path in arrays:
                raise ValueError(f"duplicate array path {path!r} in state tree")
            arrays[path] = node
            return {ARRAY_PLACEHOLDER: path}
        if isinstance(node, np.generic):
            return node.item()
        if isinstance(node, Mapping):
            converted = {}
            for key, value in node.items():
                key = str(key)
                if ARRAY_PLACEHOLDER in key or "/" in key:
                    raise ValueError(f"state key {key!r} would collide with the wire format")
                converted[key] = walk(value, f"{path}/{key}" if path else key)
            return converted
        if isinstance(node, (list, tuple)):
            return [walk(value, f"{path}/{index}") for index, value in enumerate(node)]
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        raise TypeError(
            f"state value at {path!r} has unsupported type {type(node).__name__}"
        )

    return walk(tree, ""), arrays


def unflatten_state(tree: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Rebuild the original state tree from :func:`flatten_state` output."""

    def walk(node: Any) -> Any:
        if isinstance(node, Mapping):
            if set(node) == {ARRAY_PLACEHOLDER}:
                key = node[ARRAY_PLACEHOLDER]
                if key not in arrays:
                    raise KeyError(f"checkpoint payload is missing array {key!r}")
                return np.asarray(arrays[key])
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, Sequence) and not isinstance(node, str):
            return [walk(value) for value in node]
        return node

    return walk(tree)

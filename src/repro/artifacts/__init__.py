"""Durable model artifacts: versioned checkpoints for every trainer.

The missing half of the experiment lifecycle: where
:mod:`repro.experiments` produces an in-memory
:class:`~repro.experiments.result.RunResult`, this package makes training
state durable and queryable after the process exits:

* :func:`save_checkpoint` / :func:`load_checkpoint` — a schema-versioned
  artifact (JSON manifest + ``.npz`` payload) capturing a trainer's full
  state: client and server models (parameters *and* buffers), index-keyed
  optimizer state, the communication ledger, round counters, the run
  history so far, and the originating :class:`~repro.experiments.ExperimentSpec`,
  with the dataset splits embedded so the artifact is self-contained;
* :meth:`Checkpoint.restore` — rebuild the exact trainer from an artifact;
  ``repro.run(spec, resume_from=path)`` continues it **bit-identically**
  to a run that was never interrupted (asserted with ``==`` in
  ``tests/test_artifacts.py``);
* :class:`CheckpointEveryK` — periodic checkpointing as a training
  callback for any registered trainer;
* :mod:`repro.serve` builds its query-time
  :class:`~repro.serve.Recommender` from these artifacts.

Quickstart::

    import repro
    from repro.artifacts import CheckpointEveryK, load_checkpoint

    spec = repro.ExperimentSpec(trainer="ptf", protocol={"rounds": 10})
    result = repro.run(spec, callbacks=[CheckpointEveryK("ckpts", every=5)])
    result.save("ckpts/result.json")

    # Later (any process): continue training, or inspect the artifact.
    resumed = repro.run(spec, resume_from="ckpts/latest")
    assert resumed.final == result.final
"""

from repro.artifacts.callbacks import CheckpointEveryK
from repro.artifacts.checkpoint import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    Checkpoint,
    copy_checkpoint,
    dataset_fingerprint,
    dataset_from_state,
    load_checkpoint,
    save_checkpoint,
)
from repro.artifacts.io import flatten_state, unflatten_state

__all__ = [
    "ARRAYS_NAME",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "Checkpoint",
    "CheckpointEveryK",
    "copy_checkpoint",
    "dataset_fingerprint",
    "dataset_from_state",
    "flatten_state",
    "load_checkpoint",
    "save_checkpoint",
    "unflatten_state",
]

"""Versioned training checkpoints: save, load, restore, resume.

A checkpoint is a *directory* holding

* ``manifest.json`` — schema version, trainer name, the originating
  :class:`~repro.experiments.spec.ExperimentSpec`, the run's round history
  so far, dataset identity (shape, fingerprint, split sizes) and the JSON
  twin of the trainer's state tree (see :mod:`repro.artifacts.io`),
* ``arrays.npz`` — every NumPy array of that state tree (model parameters
  and buffers, optimizer moments, ledger columns, dataset splits).

The dataset's train/test pairs are embedded, so an artifact is
self-contained: :meth:`Checkpoint.restore` can rebuild the exact trainer
with no external inputs, and ``repro.run(spec, resume_from=path)``
continues the run bit-identically to one that was never interrupted
(every random stream in the repository is keyed by ``(seed, component,
round)``, never by wall-clock position, so replaying from restored state
reproduces the uninterrupted arithmetic exactly).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

# repro: disable=backend-purity -- checkpoint payloads are npz ndarrays by schema contract
import numpy as np

from repro.artifacts.io import flatten_state, unflatten_state
from repro.data.dataset import InteractionDataset
from repro.experiments.result import RoundRecord
from repro.experiments.spec import ExperimentSpec

#: Bumped whenever the manifest layout changes incompatibly.  Loaders
#: refuse manifests they do not understand instead of misreading them.
#: Version 2 added the tensor-backend fields (top-level ``backend`` /
#: ``dtype`` and ``spec.backend``) — a v1-only reader cannot parse the new
#: spec dict, so new artifacts must declare 2 to fail cleanly there.
SCHEMA_VERSION = 2

#: Versions this build can read.  Version 1 (pre-backend) manifests load
#: with the reference float64 backend pinned (see :func:`load_checkpoint`).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"
_MANIFEST_KIND = "repro-checkpoint"


# ----------------------------------------------------------------------
# Dataset identity
# ----------------------------------------------------------------------
def dataset_fingerprint(dataset: InteractionDataset) -> str:
    """Content hash of a dataset's dimensions and exact train/test splits.

    Resuming against a different dataset would silently change every
    client's private data, so checkpoints pin the dataset by fingerprint
    and :meth:`Checkpoint.restore` verifies it.
    """
    digest = hashlib.sha256()
    digest.update(np.asarray([dataset.num_users, dataset.num_items], dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(dataset.train_pairs, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(dataset.test_pairs, dtype=np.int64).tobytes())
    return digest.hexdigest()


def _dataset_state(dataset: InteractionDataset) -> Dict[str, Any]:
    return {
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "train_pairs": dataset.train_pairs.copy(),
        "test_pairs": dataset.test_pairs.copy(),
    }


def dataset_from_state(state: Dict[str, Any]) -> InteractionDataset:
    """Rebuild the embedded :class:`InteractionDataset` from its state."""
    return InteractionDataset(
        num_users=int(state["num_users"]),
        num_items=int(state["num_items"]),
        train_pairs=[(int(u), int(i)) for u, i in np.asarray(state["train_pairs"]).reshape(-1, 2)],
        test_pairs=[(int(u), int(i)) for u, i in np.asarray(state["test_pairs"]).reshape(-1, 2)],
        name=str(state["name"]),
    )


# ----------------------------------------------------------------------
# The checkpoint object
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """One loaded training checkpoint (see :func:`load_checkpoint`)."""

    schema_version: int
    trainer: str
    spec: ExperimentSpec
    rounds_completed: int
    history: List[RoundRecord]
    state: Dict[str, Any]
    dataset_state: Dict[str, Any] = field(repr=False)
    fingerprint: str
    #: Tensor backend the run computed under, with its parameter dtype —
    #: recorded so the artifact is self-describing even without the spec.
    backend: str = "numpy"
    dtype: str = "float64"

    def dataset(self) -> InteractionDataset:
        """The embedded dataset the checkpointed run was training on."""
        return dataset_from_state(self.dataset_state)

    def restore(
        self,
        dataset: Optional[InteractionDataset] = None,
        spec: Optional[ExperimentSpec] = None,
    ):
        """Rebuild the trainer adapter and load this checkpoint into it.

        ``dataset`` defaults to the embedded one; passing a dataset with a
        different fingerprint raises ``ValueError`` (same reasoning as in
        :func:`dataset_fingerprint`).  ``spec`` lets the caller substitute a
        compatible spec (``repro.run`` uses this to extend a run's rounds);
        it must name the same trainer.
        """
        from repro.experiments.registry import create_trainer

        spec = spec if spec is not None else self.spec
        if spec.trainer != self.trainer:
            raise ValueError(
                f"checkpoint was trained by {self.trainer!r}, cannot restore "
                f"into a {spec.trainer!r} trainer"
            )
        if spec.backend != self.backend:
            raise ValueError(
                f"checkpoint was trained under the {self.backend!r} tensor "
                f"backend ({self.dtype}); restoring under {spec.backend!r} "
                "would silently cast every parameter — the backend is part "
                "of the arithmetic, not an execution choice"
            )
        if dataset is None:
            dataset = self.dataset()
        elif dataset_fingerprint(dataset) != self.fingerprint:
            raise ValueError(
                "dataset fingerprint mismatch: this checkpoint was taken on "
                f"{self.dataset_state['name']!r} "
                f"({self.fingerprint[:12]}…); resuming on different data would "
                "not reproduce the original run"
            )
        adapter = create_trainer(spec, dataset)
        adapter.load_state_dict(self.state)
        return adapter


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------
def _swap_directory(staging: Path, target: Path) -> None:
    """Move a fully written ``staging`` directory into place at ``target``.

    ``os.replace`` cannot replace a non-empty directory, so an existing
    target is parked aside first and removed only after the rename — a
    reader never sees a half-written artifact, only the old one or the
    new one.
    """
    parked = None
    if target.exists():
        parked = target.with_name(f"{target.name}.old-{os.getpid()}")
        if parked.exists():
            shutil.rmtree(parked)
        os.replace(target, parked)
    os.replace(staging, target)
    if parked is not None:
        shutil.rmtree(parked, ignore_errors=True)


def copy_checkpoint(source: Path, target: Path) -> Path:
    """Duplicate an existing checkpoint directory (atomically, like a save)."""
    source, target = Path(source), Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    if staging.exists():
        shutil.rmtree(staging)
    shutil.copytree(source, staging)
    _swap_directory(staging, target)
    return target


def _resolve_parts(trainer, spec: Optional[ExperimentSpec]):
    """Accept a trainer adapter *or* a bare system; return (spec, dataset)."""
    spec = spec if spec is not None else getattr(trainer, "spec", None)
    if not isinstance(spec, ExperimentSpec):
        raise ValueError(
            "save_checkpoint needs the originating ExperimentSpec; pass spec=... "
            "when checkpointing a system that does not carry one (e.g. a FedAvg "
            "baseline built from a FederatedConfig)"
        )
    dataset = getattr(trainer, "dataset", None)
    if dataset is None:
        raise ValueError("trainer exposes no .dataset; cannot build a self-contained artifact")
    return spec, dataset


def save_checkpoint(
    path: Union[str, Path],
    trainer,
    spec: Optional[ExperimentSpec] = None,
    history: Sequence[RoundRecord] = (),
) -> Path:
    """Write ``trainer``'s full state as a checkpoint directory at ``path``.

    ``trainer`` is anything with ``state_dict()`` and ``.dataset`` — a
    :class:`~repro.experiments.trainers.TrainerAdapter` or one of the
    underlying systems (``PTFFedRec``, the FedAvg baselines,
    ``CentralizedTrainer``).  ``history`` carries the run's per-round
    records so a resumed :class:`~repro.experiments.result.RunResult`
    reports the whole run, not just the resumed tail.
    """
    spec, dataset = _resolve_parts(trainer, spec)
    state = trainer.state_dict()
    # Flattening one combined tree gives every array a namespaced npz key
    # ("state/..." or "dataset/...") with consistent placeholders for free.
    tree, payload = flatten_state({"state": state, "dataset": _dataset_state(dataset)})

    from repro.tensor.backend import get_backend

    manifest = {
        "kind": _MANIFEST_KIND,
        "schema_version": SCHEMA_VERSION,
        "trainer": spec.trainer,
        "backend": spec.backend,
        "dtype": np.dtype(get_backend(spec.backend).dtype).name,
        "spec": spec.to_dict(),
        "rounds_completed": int(state.get("rounds_completed", len(history))),
        "history": [record.to_dict() for record in history],
        "dataset": tree["dataset"],
        "fingerprint": dataset_fingerprint(dataset),
        "state": tree["state"],
        "arrays_file": ARRAYS_NAME,
    }

    # Write into a sibling temp directory and swap it in, so a crash
    # mid-save never leaves a truncated artifact at ``path`` — ``latest/``
    # is the crash-recovery resume target, it must stay loadable.
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        with open(staging / ARRAYS_NAME, "wb") as handle:
            np.savez_compressed(handle, **payload)
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=False), encoding="utf-8"
        )
        _swap_directory(staging, path)
    finally:
        if staging.exists():
            shutil.rmtree(staging, ignore_errors=True)
    return path


def _read_manifest_text(path: Path) -> str:
    """Read the manifest's raw text (hook point for the torn-read tests)."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no checkpoint manifest at {manifest_path}")
    return manifest_path.read_text(encoding="utf-8")


#: Attempts :func:`load_checkpoint` makes against a concurrently rewritten
#: artifact before giving up (each retry restarts from a fresh manifest).
_LOAD_RETRIES = 5


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read a checkpoint directory written by :func:`save_checkpoint`.

    Safe against a concurrent :func:`save_checkpoint` to the same path —
    the background-load path of a serving hot swap, where a trainer keeps
    rewriting ``latest/`` while the gateway loads it.  The directory swap
    is atomic per file, but a reader could still pair the *old* manifest
    with the *new* array payload (or hit the instant between the two
    renames, where the path briefly does not exist).  Both tears are
    detected — the manifest is re-read after the arrays and compared, and
    a transiently missing path is retried — and the load restarts from a
    fresh manifest, so a caller only ever observes a complete old artifact
    or a complete new one.
    """
    path = Path(path)
    manifest_text = _read_manifest_text(path)
    for attempt in range(_LOAD_RETRIES):
        manifest = json.loads(manifest_text)
        if manifest.get("kind") != _MANIFEST_KIND:
            raise ValueError(f"{path / MANIFEST_NAME} is not a repro checkpoint manifest")
        version = manifest.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint schema version {version!r} "
                f"(this build reads versions {SUPPORTED_SCHEMA_VERSIONS})"
            )
        try:
            with np.load(path / manifest["arrays_file"], allow_pickle=False) as payload:
                arrays = {key: payload[key] for key in payload.files}
            reread = _read_manifest_text(path)
        except FileNotFoundError:
            # Mid-swap window: the old directory was parked and the new
            # one not yet renamed in.  Wait out the rename and restart.
            time.sleep(0.01 * (attempt + 1))
            manifest_text = _read_manifest_text(path)
            continue
        if reread == manifest_text:
            break
        # The artifact was replaced between the two reads; the arrays may
        # belong to the new version while the parsed manifest is the old
        # one.  Restart from the fresh manifest.
        manifest_text = reread
    else:
        raise RuntimeError(
            f"checkpoint at {path} kept changing across {_LOAD_RETRIES} load "
            "attempts; is a writer saving in a tight loop?"
        )
    spec_data = dict(manifest["spec"])
    # Pre-backend manifests carry no backend field: they were written by
    # the float64 reference substrate.  Pin that explicitly — otherwise a
    # spec with backend=None would adopt the *ambient* session backend and
    # a legacy artifact loaded under numpy32 would silently resume in
    # float32, breaking the bit-identical-resume guarantee.
    spec_data.setdefault("backend", "numpy")
    spec = ExperimentSpec.from_dict(spec_data)
    return Checkpoint(
        schema_version=int(version),
        trainer=str(manifest["trainer"]),
        spec=spec,
        rounds_completed=int(manifest["rounds_completed"]),
        history=[RoundRecord.from_dict(entry) for entry in manifest["history"]],
        state=unflatten_state(manifest["state"], arrays),
        dataset_state=unflatten_state(manifest["dataset"], arrays),
        fingerprint=str(manifest["fingerprint"]),
        backend=str(manifest.get("backend", spec.backend)),
        dtype=str(manifest.get("dtype", "float64")),
    )

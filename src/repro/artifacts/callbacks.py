"""Periodic checkpointing as a training callback.

Works with every registered trainer because it plugs into the shared hook
protocol (:mod:`repro.experiments.callbacks`): the fit loops hand the
callback the *system* object, whose ``state_dict`` covers the full
training state, and the callback mirrors the run's per-round logs so each
checkpoint carries the complete history up to that round.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.artifacts.checkpoint import copy_checkpoint, save_checkpoint
from repro.experiments.callbacks import Callback
from repro.experiments.result import RoundRecord
from repro.experiments.spec import ExperimentSpec


class CheckpointEveryK(Callback):
    """Save a checkpoint every ``every`` rounds (and once at fit end).

    ``directory`` receives one subdirectory per checkpoint
    (``round-0004/``...) plus ``latest/``, which is rewritten on every
    save so a resuming caller never has to list the directory.

    ``spec`` may be omitted when the trained system carries its spec
    (PTF-FedRec does); the runner injects it automatically for callbacks
    it wires into ``repro.run``.  :attr:`saved_paths` records every
    checkpoint written, in order.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every: int = 1,
        spec: Optional[ExperimentSpec] = None,
        save_on_fit_end: bool = True,
    ):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.directory = Path(directory)
        self.every = every
        self.spec = spec
        self.save_on_fit_end = save_on_fit_end
        self.saved_paths: List[Path] = []
        self._records: List[RoundRecord] = []
        self._seeded: List[RoundRecord] = []

    def seed_history(self, records: Sequence[RoundRecord]) -> None:
        """Pre-load history from an earlier run segment (used on resume)."""
        self._seeded = list(records)
        self._records = list(records)

    def on_fit_start(self, trainer) -> None:
        self._records = list(self._seeded)

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        self._records.append(RoundRecord(round_index, dict(logs)))
        if (round_index + 1) % self.every == 0:
            self._save(trainer, self.directory / f"round-{round_index:04d}")

    def on_fit_end(self, trainer) -> None:
        if self.save_on_fit_end:
            self._save(trainer, self.directory / "final")

    def _save(self, trainer, path: Path) -> None:
        saved = save_checkpoint(path, trainer, spec=self.spec, history=self._records)
        # ``latest`` is a file copy of the checkpoint just written — don't
        # serialize and compress the whole trainer state a second time.
        copy_checkpoint(saved, self.directory / "latest")
        self.saved_paths.append(saved)

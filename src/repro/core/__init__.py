"""PTF-FedRec: the paper's parameter transmission-free federated recommender.

The central server and the clients hold *different* models and never see
each other's parameters.  They cooperate by exchanging prediction scores:

* clients upload privacy-protected prediction datasets ``D̂_i`` built from
  a sampled subset of their trained items (Section III-B2),
* the server trains its hidden model on the pooled uploads (Eq. 5) and
  disperses soft labels ``D̃_i`` for confidence-selected and hard items
  back to each client (Section III-B3).

Public entry point: :class:`PTFFedRec` drives the whole protocol,
configured by a :class:`repro.experiments.ExperimentSpec` (the legacy
:class:`PTFConfig` is kept as a deprecated shim that converts to a spec).
"""

from repro.core.config import PTFConfig, DefenseMode, DispersalMode, ensure_spec
from repro.core.client import ClientUpload, PTFClient
from repro.core.server import DispersedDataset, PTFServer
from repro.core.privacy import (
    sample_upload_items,
    swap_positive_scores,
    laplace_perturbation,
    apply_defense,
)
from repro.core.attack import TopGuessAttack, AttackReport
from repro.core.protocol import PTFFedRec, RoundSummary

__all__ = [
    "PTFConfig",
    "DefenseMode",
    "DispersalMode",
    "ensure_spec",
    "PTFClient",
    "ClientUpload",
    "PTFServer",
    "DispersedDataset",
    "sample_upload_items",
    "swap_positive_scores",
    "laplace_perturbation",
    "apply_defense",
    "TopGuessAttack",
    "AttackReport",
    "PTFFedRec",
    "RoundSummary",
]

"""End-to-end driver for the PTF-FedRec learning protocol (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

# repro: disable=backend-purity -- the PTF wire format exchanges plain prediction arrays, not tensors
import numpy as np

from repro.core.attack import AttackReport, TopGuessAttack
from repro.core.client import ClientUpload, PTFClient
from repro.core.config import PTFConfig, ensure_spec, legacy_config_view
from repro.core.server import PTFServer
from repro.data.dataset import InteractionDataset
from repro.engine import create_scheduler
from repro.engine.batch import stack_models
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.eval.scoring import DEFAULT_CHUNK_SIZE
from repro.tensor import no_grad
from repro.federated.communication import CommunicationLedger, prediction_triple_bytes
from repro.scenario import RoundParticipation, ScenarioEngine
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.callbacks import Callback
    from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class RoundSummary:
    """Bookkeeping for one global round.

    ``participation`` is only populated on rounds where dynamic federation
    was in play (a scenario is configured, or a worker failure dropped a
    client); plain rounds keep it ``None`` and their log schema unchanged.
    """

    round_index: int
    num_clients: int
    client_loss: float
    server_loss: float
    uploaded_records: int
    dispersed_records: int
    participation: Optional[RoundParticipation] = None

    def as_logs(self) -> Dict[str, float]:
        """The round's scalar metrics in callback ``logs`` form."""
        logs = {
            "num_clients": self.num_clients,
            "client_loss": self.client_loss,
            "server_loss": self.server_loss,
            "uploaded_records": self.uploaded_records,
            "dispersed_records": self.dispersed_records,
        }
        if self.participation is not None:
            logs.update(self.participation.as_logs())
        return logs


class PTFFedRec:
    """The parameter transmission-free federated recommender system.

    Orchestrates clients and the central server through the four-step loop
    of Algorithm 1: client local training, privacy-preserving prediction
    upload, server training on the pooled uploads, and confidence-based
    hard dispersal back to the clients.  Communication (prediction triples
    in both directions, nothing else) is metered in :attr:`ledger`.

    Configured by a :class:`repro.experiments.ExperimentSpec` (a legacy
    :class:`PTFConfig` is accepted and converted; ``None`` uses the paper's
    defaults).  The spec's ``engine`` section chooses how the per-round
    client work is executed (serial reference loop, vectorized batches, or
    worker processes); all schedulers are bit-identical on a fixed seed.
    ``engine.shard_size`` additionally streams the cohort (training and
    the dispersal fan-out) through bounded shards; ``engine.payload`` is a
    no-op here — the protocol's whole point is that its exchange
    (prediction triples) is already sparse.
    """

    name = "PTF-FedRec"

    def __init__(
        self,
        dataset: InteractionDataset,
        config: Union["ExperimentSpec", PTFConfig, None] = None,
    ):
        from repro.tensor.backend import use_backend

        self.dataset = dataset
        self.spec = ensure_spec(config)
        self._rngs = RngFactory(self.spec.seed)
        self.ledger = CommunicationLedger()
        self.engine = create_scheduler(self.spec.engine)

        # Honor the spec's backend on direct construction too (the trainer
        # adapters also wrap — nesting the context is harmless), so server
        # and client models carry spec.backend's dtype either way.
        with use_backend(self.spec.backend):
            self.server = PTFServer(
                dataset.num_users, dataset.num_items, self.spec, self._rngs
            )
            self.clients: Dict[int, PTFClient] = {
                user: PTFClient(
                    user_id=user,
                    num_items=dataset.num_items,
                    positive_items=dataset.train_items(user),
                    config=self.spec,
                    rngs=self._rngs,
                )
                for user in dataset.users
            }
        self.scenario = ScenarioEngine(
            self.spec.scenario, self._rngs, sorted(self.clients), dataset.num_items
        )
        # Buffered late uploads (async aggregation): each entry holds one
        # straggler's prediction dataset and the round it folds into;
        # serialized with the checkpoint so resume replays them.
        self._stale_uploads: List[dict] = []
        self.round_summaries: List[RoundSummary] = []
        self.last_round_uploads: List[ClientUpload] = []

    @property
    def config(self) -> PTFConfig:
        """Deprecated flat snapshot of :attr:`spec` (pre-1.1 compatibility)."""
        return legacy_config_view(self.spec)

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _select_clients(self, round_index: int) -> List[int]:
        users = sorted(self.clients)
        if self.spec.protocol.client_fraction >= 1.0:
            return users
        rng = self._rngs.spawn_indexed("protocol-client-selection", round_index)
        count = max(1, int(round(self.spec.protocol.client_fraction * len(users))))
        return sorted(rng.choice(users, size=count, replace=False).tolist())

    def run_round(self, round_index: int) -> RoundSummary:
        """Execute one global round and return its summary.

        The client-side work (local training, upload construction, and the
        consumption of the server's dispersal fan-out) runs through the
        configured execution engine; the scheduler choice never changes the
        numbers, only how fast they are produced.

        With a scenario configured, the round instead runs the
        dynamic-participation path (:meth:`_run_round_scenario`): churned
        clients skip the round, stragglers' uploads are discarded or
        buffered, and the server trains on what actually arrived.
        """
        if self.scenario.enabled:
            return self._run_round_scenario(round_index)
        selected = self._select_clients(round_index)

        losses = self.engine.train_ptf_clients(self.clients, selected, round_index)
        failed = set(self.engine.pop_failed())
        active = [user for user in selected if user not in failed]
        client_losses: List[float] = [losses[user] for user in active]
        uploads = self.engine.build_ptf_uploads(self.clients, active, round_index)
        for upload in uploads:
            self.ledger.record(
                round_index,
                upload.user_id,
                "upload",
                prediction_triple_bytes(upload.num_records),
                description="client prediction dataset",
            )

        server_loss = self.server.train_on_uploads(uploads, round_index)

        # Stream the dispersal fan-out shard by shard: dispersal
        # construction reads only server state, so applying one shard
        # before building the next bounds the in-flight dispersal buffer
        # at O(shard_size) without changing a single record.
        dispersed_total = 0
        for upload_shard in self.engine.iter_shards(uploads):
            dispersals = self.engine.build_ptf_dispersals(
                self.server, upload_shard, round_index
            )
            for dispersal in dispersals:
                self.clients[dispersal.user_id].receive_dispersal(dispersal.items, dispersal.scores)
                dispersed_total += dispersal.num_records
                self.ledger.record(
                    round_index,
                    dispersal.user_id,
                    "download",
                    prediction_triple_bytes(dispersal.num_records),
                    description="server dispersed predictions",
                )

        summary = RoundSummary(
            round_index=round_index,
            num_clients=len(selected),
            client_loss=float(np.mean(client_losses)) if client_losses else 0.0,
            server_loss=server_loss,
            uploaded_records=sum(upload.num_records for upload in uploads),
            dispersed_records=dispersed_total,
            # Worker failures outside any scenario still surface as drops
            # (healthy rounds keep participation=None and their log schema).
            participation=RoundParticipation(
                selected=len(selected),
                completed=len(active),
                dropped=len(failed),
            ) if failed else None,
        )
        self.round_summaries.append(summary)
        self.last_round_uploads = uploads
        return summary

    def _run_round_scenario(self, round_index: int) -> RoundSummary:
        """One global round under fault injection.

        Per the round's :class:`~repro.scenario.RoundPlan`: churned clients
        do nothing, stragglers train and build their upload but it misses
        the server's aggregation — discarded in sync mode, buffered until
        ``round_index + staleness`` in async mode.  A buffered upload folds
        in with staleness-decayed weight ``alpha / (staleness + 1)``,
        realized as deterministic record subsampling (the server trains on
        ``max(1, round(weight * n))`` of its ``n`` records, drawn from the
        dedicated ``"scenario-staleness"`` stream), so stale knowledge
        still arrives but moves the server proportionally less.  The
        server disperses back to every client whose upload reached this
        round — on-time and freshly-arrived stale ones — restricted to the
        items that have streamed into the catalogue so far.
        """
        plan = self.scenario.plan_round(self._select_clients(round_index), round_index)

        losses = self.engine.train_ptf_clients(
            self.clients, list(plan.trained), round_index
        )
        failed = set(self.engine.pop_failed())
        on_time = [user for user in plan.on_time if user not in failed]
        client_losses = [losses[user] for user in plan.trained if user not in failed]

        uploads = self.engine.build_ptf_uploads(self.clients, on_time, round_index)
        stale_users = [user for user in plan.selected
                       if user in plan.stale and user not in failed]
        stale_uploads = self.engine.build_ptf_uploads(
            self.clients, stale_users, round_index
        )
        for upload in uploads + stale_uploads:
            self.ledger.record(
                round_index,
                upload.user_id,
                "upload",
                prediction_triple_bytes(upload.num_records),
                description="client prediction dataset",
            )
        for user, upload in zip(stale_users, stale_uploads):
            self._stale_uploads.append({
                "due_round": round_index + plan.stale[user],
                "origin_round": round_index,
                "staleness": plan.stale[user],
                "upload": upload,
            })

        # Fold in buffered uploads that are due this round, FIFO.
        applied_uploads: List[ClientUpload] = []
        pending_buffer = []
        for entry in self._stale_uploads:
            if int(entry["due_round"]) > round_index:
                pending_buffer.append(entry)
                continue
            applied_uploads.append(self._decayed_upload(
                entry["upload"], int(entry["staleness"]), int(entry["origin_round"])
            ))
        self._stale_uploads = pending_buffer

        pool = uploads + applied_uploads
        server_loss = self.server.train_on_uploads(pool, round_index)

        dispersed_total = 0
        item_mask = self.scenario.arrived_item_mask(round_index)
        for upload_shard in self.engine.iter_shards(pool):
            dispersals = self.engine.build_ptf_dispersals(
                self.server, upload_shard, round_index, item_mask=item_mask
            )
            for dispersal in dispersals:
                self.clients[dispersal.user_id].receive_dispersal(dispersal.items, dispersal.scores)
                dispersed_total += dispersal.num_records
                self.ledger.record(
                    round_index,
                    dispersal.user_id,
                    "download",
                    prediction_triple_bytes(dispersal.num_records),
                    description="server dispersed predictions",
                )

        summary = RoundSummary(
            round_index=round_index,
            num_clients=len(plan.selected),
            client_loss=float(np.mean(client_losses)) if client_losses else 0.0,
            server_loss=server_loss,
            uploaded_records=sum(upload.num_records for upload in pool),
            dispersed_records=dispersed_total,
            participation=RoundParticipation(
                selected=len(plan.selected),
                completed=len(on_time),
                dropped=len(plan.dropped) + len(plan.lost) + len(failed),
                straggled=len(plan.stale) + len(plan.lost),
                stale_applied=len(applied_uploads),
            ),
        )
        self.round_summaries.append(summary)
        self.last_round_uploads = pool
        return summary

    def _decayed_upload(
        self, upload: ClientUpload, staleness: int, origin_round: int
    ) -> ClientUpload:
        """Subsample a buffered upload down to its staleness weight."""
        weight = self.scenario.staleness_weight(staleness)
        if weight >= 1.0 or upload.num_records <= 1:
            return upload
        keep = max(1, int(round(weight * upload.num_records)))
        if keep >= upload.num_records:
            return upload
        rng = self._rngs.spawn_indexed(
            "scenario-staleness", upload.user_id * 1_000_003 + origin_round
        )
        index = np.sort(rng.choice(upload.num_records, size=keep, replace=False))
        return ClientUpload(
            user_id=upload.user_id,
            items=upload.items[index],
            scores=upload.scores[index],
            true_positive_items=upload.true_positive_items,
        )

    def fit(
        self,
        rounds: Optional[int] = None,
        callbacks: Optional[Sequence["Callback"]] = None,
    ) -> "PTFFedRec":
        """Run the configured number of global rounds.

        ``callbacks`` receive the shared training hooks
        (:meth:`on_round_start`, :meth:`on_round_end` with the round's
        summary metrics, :meth:`on_fit_end`) and may stop training early.
        """
        from repro.experiments.callbacks import CallbackList
        from repro.tensor.backend import use_backend

        hooks = CallbackList(callbacks)
        total = rounds if rounds is not None else self.spec.protocol.rounds
        start = len(self.round_summaries)
        hooks.on_fit_start(self)
        with use_backend(self.spec.backend):
            for round_index in range(start, start + total):
                hooks.on_round_start(self, round_index)
                summary = self.run_round(round_index)
                hooks.on_round_end(self, round_index, summary.as_logs())
                if hooks.should_stop:
                    break
        hooks.on_fit_end(self)
        return self

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full protocol state: server, every client, ledger and summaries.

        ``last_round_uploads`` is intentionally excluded: the next
        :meth:`run_round` rebuilds it, and the privacy audit always grades
        the most recent round of an *active* run.
        """
        return {
            "rounds_completed": len(self.round_summaries),
            "round_summaries": [
                {
                    "round_index": summary.round_index,
                    "num_clients": summary.num_clients,
                    "client_loss": summary.client_loss,
                    "server_loss": summary.server_loss,
                    "uploaded_records": summary.uploaded_records,
                    "dispersed_records": summary.dispersed_records,
                    "participation": (
                        summary.participation.as_logs()
                        if summary.participation is not None else None
                    ),
                }
                for summary in self.round_summaries
            ],
            "stale_uploads": [
                {
                    "due_round": int(entry["due_round"]),
                    "origin_round": int(entry["origin_round"]),
                    "staleness": int(entry["staleness"]),
                    "user_id": int(entry["upload"].user_id),
                    "items": entry["upload"].items,
                    "scores": entry["upload"].scores,
                    "true_positive_items": entry["upload"].true_positive_items,
                }
                for entry in self._stale_uploads
            ],
            "ledger": self.ledger.state_dict(),
            "server": self.server.state_dict(),
            "clients": {
                str(user): client.state_dict() for user, client in self.clients.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot; the next round continues
        bit-identically to a run that was never interrupted."""
        client_states = state["clients"]
        missing = {str(user) for user in self.clients} - set(client_states)
        unexpected = set(client_states) - {str(user) for user in self.clients}
        if missing or unexpected:
            raise KeyError(
                f"client set mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)} — was the checkpoint taken "
                "on a different dataset?"
            )
        self.server.load_state_dict(state["server"])
        for user, client in self.clients.items():
            client.load_state_dict(client_states[str(user)])
        self.ledger.load_state_dict(state["ledger"])
        self.round_summaries = [
            RoundSummary(
                round_index=int(entry["round_index"]),
                num_clients=int(entry["num_clients"]),
                client_loss=float(entry["client_loss"]),
                server_loss=float(entry["server_loss"]),
                uploaded_records=int(entry["uploaded_records"]),
                dispersed_records=int(entry["dispersed_records"]),
                participation=(
                    RoundParticipation.from_logs(entry["participation"])
                    if entry.get("participation") is not None else None
                ),
            )
            for entry in state["round_summaries"]
        ]
        self._stale_uploads = [
            {
                "due_round": int(entry["due_round"]),
                "origin_round": int(entry["origin_round"]),
                "staleness": int(entry["staleness"]),
                "upload": ClientUpload(
                    user_id=int(entry["user_id"]),
                    items=np.asarray(entry["items"], dtype=np.int64),
                    scores=np.asarray(entry["scores"], dtype=np.float64),
                    true_positive_items=np.asarray(
                        entry["true_positive_items"], dtype=np.int64
                    ),
                ),
            }
            for entry in state.get("stale_uploads", [])
        ]
        self.last_round_uploads = []

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Rank with the *server* model (the trained global recommender).

        ``batch_size`` chooses the evaluator's execution path (chunked
        cohort scoring by default, the per-user reference loop with
        ``None``); both return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(
            self.server.model, max_users=max_users, batch_size=batch_size
        )

    def evaluate_client_models(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Average ranking quality of the clients' local models.

        Not a paper table, but useful for analysis: it shows how much of
        the server's knowledge flows back to the devices via ``D̃_i``.
        Each client model scores its own catalogue (the model holds a
        single user row, index 0) and the evaluator grades the scores
        against that user's held-out items.

        With the default ``batch_size``, cohorts of client models are
        stacked into one vectorized forward over the full catalogue
        (:func:`repro.engine.batch.stack_models` — the same machinery the
        execution engine trains them with) where the client architecture
        supports it; ``batch_size=None`` runs the per-user reference path.
        Both paths return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        users = sorted(self.clients)
        if batch_size is None:
            return evaluator.evaluate_per_user_scores(
                lambda user: self.clients[user].model.score_all_items(0),
                users=users,
                max_users=max_users,
            )
        return evaluator.evaluate_score_matrices(
            self._client_score_matrix,
            users=users,
            max_users=max_users,
            batch_size=batch_size,
        )

    def _client_score_matrix(self, users: np.ndarray) -> np.ndarray:
        """Full-catalogue score rows for a cohort of clients' local models.

        Stacks the cohort's models (each holds a single user row, index 0)
        and scores every item with one vectorized forward; architectures
        without a stacked implementation fall back to per-model scoring,
        which produces the identical matrix one row at a time.
        """
        models = [self.clients[int(user)].model for user in users]
        stacked = stack_models(models, user_rows=[0] * len(models))
        if stacked is None:
            return np.stack([model.score_all_items(0) for model in models])
        num_items = self.dataset.num_items
        items = np.tile(np.arange(num_items, dtype=np.int64), (len(models), 1))
        with no_grad():
            scores = stacked.forward(items, training=False)
        return np.asarray(scores.numpy(), dtype=np.float64)

    def audit_privacy(self, guess_ratio: float = 0.2) -> AttackReport:
        """Run the Top Guess Attack against the most recent round's uploads."""
        attack = TopGuessAttack(guess_ratio=guess_ratio)
        return attack.audit_round(self.last_round_uploads)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round communication in KB (Table IV)."""
        return self.ledger.average_client_round_kilobytes()

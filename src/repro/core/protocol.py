"""End-to-end driver for the PTF-FedRec learning protocol (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.attack import AttackReport, TopGuessAttack
from repro.core.client import ClientUpload, PTFClient
from repro.core.config import PTFConfig, ensure_spec, legacy_config_view
from repro.core.server import PTFServer
from repro.data.dataset import InteractionDataset
from repro.engine import create_scheduler
from repro.engine.batch import stack_models
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.eval.scoring import DEFAULT_CHUNK_SIZE
from repro.tensor import no_grad
from repro.federated.communication import CommunicationLedger, prediction_triple_bytes
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.callbacks import Callback
    from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class RoundSummary:
    """Bookkeeping for one global round."""

    round_index: int
    num_clients: int
    client_loss: float
    server_loss: float
    uploaded_records: int
    dispersed_records: int

    def as_logs(self) -> Dict[str, float]:
        """The round's scalar metrics in callback ``logs`` form."""
        return {
            "num_clients": self.num_clients,
            "client_loss": self.client_loss,
            "server_loss": self.server_loss,
            "uploaded_records": self.uploaded_records,
            "dispersed_records": self.dispersed_records,
        }


class PTFFedRec:
    """The parameter transmission-free federated recommender system.

    Orchestrates clients and the central server through the four-step loop
    of Algorithm 1: client local training, privacy-preserving prediction
    upload, server training on the pooled uploads, and confidence-based
    hard dispersal back to the clients.  Communication (prediction triples
    in both directions, nothing else) is metered in :attr:`ledger`.

    Configured by a :class:`repro.experiments.ExperimentSpec` (a legacy
    :class:`PTFConfig` is accepted and converted; ``None`` uses the paper's
    defaults).  The spec's ``engine`` section chooses how the per-round
    client work is executed (serial reference loop, vectorized batches, or
    worker processes); all schedulers are bit-identical on a fixed seed.
    """

    name = "PTF-FedRec"

    def __init__(
        self,
        dataset: InteractionDataset,
        config: Union["ExperimentSpec", PTFConfig, None] = None,
    ):
        from repro.tensor.backend import use_backend

        self.dataset = dataset
        self.spec = ensure_spec(config)
        self._rngs = RngFactory(self.spec.seed)
        self.ledger = CommunicationLedger()
        self.engine = create_scheduler(self.spec.engine)

        # Honor the spec's backend on direct construction too (the trainer
        # adapters also wrap — nesting the context is harmless), so server
        # and client models carry spec.backend's dtype either way.
        with use_backend(self.spec.backend):
            self.server = PTFServer(
                dataset.num_users, dataset.num_items, self.spec, self._rngs
            )
            self.clients: Dict[int, PTFClient] = {
                user: PTFClient(
                    user_id=user,
                    num_items=dataset.num_items,
                    positive_items=dataset.train_items(user),
                    config=self.spec,
                    rngs=self._rngs,
                )
                for user in dataset.users
            }
        self.round_summaries: List[RoundSummary] = []
        self.last_round_uploads: List[ClientUpload] = []

    @property
    def config(self) -> PTFConfig:
        """Deprecated flat snapshot of :attr:`spec` (pre-1.1 compatibility)."""
        return legacy_config_view(self.spec)

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _select_clients(self, round_index: int) -> List[int]:
        users = sorted(self.clients)
        if self.spec.protocol.client_fraction >= 1.0:
            return users
        rng = self._rngs.spawn_indexed("protocol-client-selection", round_index)
        count = max(1, int(round(self.spec.protocol.client_fraction * len(users))))
        return sorted(rng.choice(users, size=count, replace=False).tolist())

    def run_round(self, round_index: int) -> RoundSummary:
        """Execute one global round and return its summary.

        The client-side work (local training, upload construction, and the
        consumption of the server's dispersal fan-out) runs through the
        configured execution engine; the scheduler choice never changes the
        numbers, only how fast they are produced.
        """
        selected = self._select_clients(round_index)

        losses = self.engine.train_ptf_clients(self.clients, selected, round_index)
        client_losses: List[float] = [losses[user] for user in selected]
        uploads = self.engine.build_ptf_uploads(self.clients, selected, round_index)
        for upload in uploads:
            self.ledger.record(
                round_index,
                upload.user_id,
                "upload",
                prediction_triple_bytes(upload.num_records),
                description="client prediction dataset",
            )

        server_loss = self.server.train_on_uploads(uploads, round_index)

        dispersed_total = 0
        dispersals = self.engine.build_ptf_dispersals(self.server, uploads, round_index)
        for dispersal in dispersals:
            self.clients[dispersal.user_id].receive_dispersal(dispersal.items, dispersal.scores)
            dispersed_total += dispersal.num_records
            self.ledger.record(
                round_index,
                dispersal.user_id,
                "download",
                prediction_triple_bytes(dispersal.num_records),
                description="server dispersed predictions",
            )

        summary = RoundSummary(
            round_index=round_index,
            num_clients=len(selected),
            client_loss=float(np.mean(client_losses)) if client_losses else 0.0,
            server_loss=server_loss,
            uploaded_records=sum(upload.num_records for upload in uploads),
            dispersed_records=dispersed_total,
        )
        self.round_summaries.append(summary)
        self.last_round_uploads = uploads
        return summary

    def fit(
        self,
        rounds: Optional[int] = None,
        callbacks: Optional[Sequence["Callback"]] = None,
    ) -> "PTFFedRec":
        """Run the configured number of global rounds.

        ``callbacks`` receive the shared training hooks
        (:meth:`on_round_start`, :meth:`on_round_end` with the round's
        summary metrics, :meth:`on_fit_end`) and may stop training early.
        """
        from repro.experiments.callbacks import CallbackList
        from repro.tensor.backend import use_backend

        hooks = CallbackList(callbacks)
        total = rounds if rounds is not None else self.spec.protocol.rounds
        start = len(self.round_summaries)
        hooks.on_fit_start(self)
        with use_backend(self.spec.backend):
            for round_index in range(start, start + total):
                hooks.on_round_start(self, round_index)
                summary = self.run_round(round_index)
                hooks.on_round_end(self, round_index, summary.as_logs())
                if hooks.should_stop:
                    break
        hooks.on_fit_end(self)
        return self

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full protocol state: server, every client, ledger and summaries.

        ``last_round_uploads`` is intentionally excluded: the next
        :meth:`run_round` rebuilds it, and the privacy audit always grades
        the most recent round of an *active* run.
        """
        return {
            "rounds_completed": len(self.round_summaries),
            "round_summaries": [
                {
                    "round_index": summary.round_index,
                    "num_clients": summary.num_clients,
                    "client_loss": summary.client_loss,
                    "server_loss": summary.server_loss,
                    "uploaded_records": summary.uploaded_records,
                    "dispersed_records": summary.dispersed_records,
                }
                for summary in self.round_summaries
            ],
            "ledger": self.ledger.state_dict(),
            "server": self.server.state_dict(),
            "clients": {
                str(user): client.state_dict() for user, client in self.clients.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot; the next round continues
        bit-identically to a run that was never interrupted."""
        client_states = state["clients"]
        missing = {str(user) for user in self.clients} - set(client_states)
        unexpected = set(client_states) - {str(user) for user in self.clients}
        if missing or unexpected:
            raise KeyError(
                f"client set mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)} — was the checkpoint taken "
                "on a different dataset?"
            )
        self.server.load_state_dict(state["server"])
        for user, client in self.clients.items():
            client.load_state_dict(client_states[str(user)])
        self.ledger.load_state_dict(state["ledger"])
        self.round_summaries = [
            RoundSummary(
                round_index=int(entry["round_index"]),
                num_clients=int(entry["num_clients"]),
                client_loss=float(entry["client_loss"]),
                server_loss=float(entry["server_loss"]),
                uploaded_records=int(entry["uploaded_records"]),
                dispersed_records=int(entry["dispersed_records"]),
            )
            for entry in state["round_summaries"]
        ]
        self.last_round_uploads = []

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Rank with the *server* model (the trained global recommender).

        ``batch_size`` chooses the evaluator's execution path (chunked
        cohort scoring by default, the per-user reference loop with
        ``None``); both return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(
            self.server.model, max_users=max_users, batch_size=batch_size
        )

    def evaluate_client_models(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Average ranking quality of the clients' local models.

        Not a paper table, but useful for analysis: it shows how much of
        the server's knowledge flows back to the devices via ``D̃_i``.
        Each client model scores its own catalogue (the model holds a
        single user row, index 0) and the evaluator grades the scores
        against that user's held-out items.

        With the default ``batch_size``, cohorts of client models are
        stacked into one vectorized forward over the full catalogue
        (:func:`repro.engine.batch.stack_models` — the same machinery the
        execution engine trains them with) where the client architecture
        supports it; ``batch_size=None`` runs the per-user reference path.
        Both paths return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        users = sorted(self.clients)
        if batch_size is None:
            return evaluator.evaluate_per_user_scores(
                lambda user: self.clients[user].model.score_all_items(0),
                users=users,
                max_users=max_users,
            )
        return evaluator.evaluate_score_matrices(
            self._client_score_matrix,
            users=users,
            max_users=max_users,
            batch_size=batch_size,
        )

    def _client_score_matrix(self, users: np.ndarray) -> np.ndarray:
        """Full-catalogue score rows for a cohort of clients' local models.

        Stacks the cohort's models (each holds a single user row, index 0)
        and scores every item with one vectorized forward; architectures
        without a stacked implementation fall back to per-model scoring,
        which produces the identical matrix one row at a time.
        """
        models = [self.clients[int(user)].model for user in users]
        stacked = stack_models(models, user_rows=[0] * len(models))
        if stacked is None:
            return np.stack([model.score_all_items(0) for model in models])
        num_items = self.dataset.num_items
        items = np.tile(np.arange(num_items, dtype=np.int64), (len(models), 1))
        with no_grad():
            scores = stacked.forward(items, training=False)
        return np.asarray(scores.numpy(), dtype=np.float64)

    def audit_privacy(self, guess_ratio: float = 0.2) -> AttackReport:
        """Run the Top Guess Attack against the most recent round's uploads."""
        attack = TopGuessAttack(guess_ratio=guess_ratio)
        return attack.audit_round(self.last_round_uploads)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round communication in KB (Table IV)."""
        return self.ledger.average_client_round_kilobytes()

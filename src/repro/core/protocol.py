"""End-to-end driver for the PTF-FedRec learning protocol (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.attack import AttackReport, TopGuessAttack
from repro.core.client import ClientUpload, PTFClient
from repro.core.config import PTFConfig
from repro.core.server import PTFServer
from repro.data.dataset import InteractionDataset
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.federated.communication import CommunicationLedger, prediction_triple_bytes
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class RoundSummary:
    """Bookkeeping for one global round."""

    round_index: int
    num_clients: int
    client_loss: float
    server_loss: float
    uploaded_records: int
    dispersed_records: int


class PTFFedRec:
    """The parameter transmission-free federated recommender system.

    Orchestrates clients and the central server through the four-step loop
    of Algorithm 1: client local training, privacy-preserving prediction
    upload, server training on the pooled uploads, and confidence-based
    hard dispersal back to the clients.  Communication (prediction triples
    in both directions, nothing else) is metered in :attr:`ledger`.
    """

    name = "PTF-FedRec"

    def __init__(self, dataset: InteractionDataset, config: Optional[PTFConfig] = None):
        self.dataset = dataset
        self.config = config if config is not None else PTFConfig()
        self._rngs = RngFactory(self.config.seed)
        self.ledger = CommunicationLedger()

        self.server = PTFServer(
            dataset.num_users, dataset.num_items, self.config, self._rngs
        )
        self.clients: Dict[int, PTFClient] = {
            user: PTFClient(
                user_id=user,
                num_items=dataset.num_items,
                positive_items=dataset.train_items(user),
                config=self.config,
                rngs=self._rngs,
            )
            for user in dataset.users
        }
        self.round_summaries: List[RoundSummary] = []
        self.last_round_uploads: List[ClientUpload] = []

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _select_clients(self, round_index: int) -> List[int]:
        users = sorted(self.clients)
        if self.config.client_fraction >= 1.0:
            return users
        rng = self._rngs.spawn_indexed("protocol-client-selection", round_index)
        count = max(1, int(round(self.config.client_fraction * len(users))))
        return sorted(rng.choice(users, size=count, replace=False).tolist())

    def run_round(self, round_index: int) -> RoundSummary:
        """Execute one global round and return its summary."""
        selected = self._select_clients(round_index)

        uploads: List[ClientUpload] = []
        client_losses: List[float] = []
        for user in selected:
            client = self.clients[user]
            client_losses.append(client.local_train(round_index))
            upload = client.build_upload(round_index)
            uploads.append(upload)
            self.ledger.record(
                round_index,
                user,
                "upload",
                prediction_triple_bytes(upload.num_records),
                description="client prediction dataset",
            )

        server_loss = self.server.train_on_uploads(uploads, round_index)

        dispersed_total = 0
        for upload in uploads:
            dispersal = self.server.build_dispersal(upload, round_index)
            self.clients[upload.user_id].receive_dispersal(dispersal.items, dispersal.scores)
            dispersed_total += dispersal.num_records
            self.ledger.record(
                round_index,
                upload.user_id,
                "download",
                prediction_triple_bytes(dispersal.num_records),
                description="server dispersed predictions",
            )

        summary = RoundSummary(
            round_index=round_index,
            num_clients=len(selected),
            client_loss=float(np.mean(client_losses)) if client_losses else 0.0,
            server_loss=server_loss,
            uploaded_records=sum(upload.num_records for upload in uploads),
            dispersed_records=dispersed_total,
        )
        self.round_summaries.append(summary)
        self.last_round_uploads = uploads
        return summary

    def fit(self, rounds: Optional[int] = None) -> "PTFFedRec":
        """Run the configured number of global rounds."""
        total = rounds if rounds is not None else self.config.rounds
        for round_index in range(len(self.round_summaries),
                                 len(self.round_summaries) + total):
            self.run_round(round_index)
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, k: int = 20, max_users: Optional[int] = None) -> RankingResult:
        """Rank with the *server* model (the trained global recommender)."""
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(self.server.model, max_users=max_users)

    def evaluate_client_models(self, k: int = 20, max_users: Optional[int] = None) -> RankingResult:
        """Average ranking quality of the clients' local models.

        Not a paper table, but useful for analysis: it shows how much of
        the server's knowledge flows back to the devices via ``D̃_i``.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        recalls, ndcgs, precisions, hits = [], [], [], []
        evaluated = 0
        for user, client in sorted(self.clients.items()):
            test_items = self.dataset.test_items(user)
            if test_items.size == 0:
                continue
            result = _evaluate_single_user(client, self.dataset, user, k)
            recalls.append(result.recall)
            ndcgs.append(result.ndcg)
            precisions.append(result.precision)
            hits.append(result.hit_rate)
            evaluated += 1
            if max_users is not None and evaluated >= max_users:
                break
        if evaluated == 0:
            return RankingResult(0.0, 0.0, 0.0, 0.0, k, 0)
        return RankingResult(
            recall=float(np.mean(recalls)),
            ndcg=float(np.mean(ndcgs)),
            precision=float(np.mean(precisions)),
            hit_rate=float(np.mean(hits)),
            k=k,
            num_users_evaluated=evaluated,
        )

    def audit_privacy(self, guess_ratio: float = 0.2) -> AttackReport:
        """Run the Top Guess Attack against the most recent round's uploads."""
        attack = TopGuessAttack(guess_ratio=guess_ratio)
        return attack.audit_round(self.last_round_uploads)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round communication in KB (Table IV)."""
        return self.ledger.average_client_round_kilobytes()


def _evaluate_single_user(
    client: PTFClient, dataset: InteractionDataset, user: int, k: int
) -> RankingResult:
    """Evaluate one client's local model on its own held-out items."""
    from repro.eval.metrics import hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k

    scores = client.model.score_all_items(0)
    train_items = dataset.train_items(user)
    if train_items.size:
        scores = scores.copy()
        scores[train_items] = -np.inf
    k = min(k, dataset.num_items)
    top = np.argpartition(-scores, kth=k - 1)[:k]
    recommended = top[np.argsort(-scores[top])]
    test_items = dataset.test_items(user)
    return RankingResult(
        recall=recall_at_k(recommended, test_items, k),
        ndcg=ndcg_at_k(recommended, test_items, k),
        precision=precision_at_k(recommended, test_items, k),
        hit_rate=hit_rate_at_k(recommended, test_items, k),
        k=k,
        num_users_evaluated=1,
    )

"""The PTF-FedRec client (one per user).

Each client owns its raw interaction data and a small local recommender —
the paper assigns the "simplest" publicly known model, NeuMF, to every
client.  A round of client work (Algorithm 1, lines 14-17):

1. train the local model for a few epochs on the private data ``D_i``
   together with the latest server-provided soft labels ``D̃_i`` (Eq. 3),
2. build the upload dataset ``D̂_i`` by sampling a subset of the trained
   items, scoring them with the local model, and applying the configured
   privacy defense (Section III-B2).

The client model indexes a *single* user (itself), so its embedding tables
hold one user row plus the full item catalogue — exactly what would live
on a device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

# repro: disable=backend-purity -- client-side prediction/rating arrays are the paper's exchange format
import numpy as np

from repro.core.config import PTFConfig, ensure_spec, legacy_config_view
from repro.engine.batch import ClientTrainingPlan
from repro.core.privacy import apply_defense, sample_upload_items
from repro.data.sampling import UserBatchSampler, sample_negative_items
from repro.models.base import Recommender
from repro.models.factory import create_model
from repro.nn.losses import PointwiseBCELoss
from repro.optim import Adam
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import ExperimentSpec


@dataclass
class ClientUpload:
    """The prediction dataset ``D̂_i`` a client sends to the server.

    ``items`` and ``scores`` are the transmitted payload (user id is
    implicit in the connection).  ``true_positive_items`` is **not**
    transmitted — it is the client's full positive interaction set, kept by
    the simulation so that the Top Guess Attack evaluation (Table V) can
    grade how much of the user's private interaction set a curious server
    could infer from the payload alone.
    """

    user_id: int
    items: np.ndarray
    scores: np.ndarray
    true_positive_items: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.true_positive_items = np.asarray(self.true_positive_items, dtype=np.int64)
        if self.items.shape != self.scores.shape:
            raise ValueError("items and scores must have the same length")

    @property
    def num_records(self) -> int:
        return int(self.items.size)


class PTFClient:
    """One federated participant holding private data and a local model."""

    def __init__(
        self,
        user_id: int,
        num_items: int,
        positive_items: np.ndarray,
        config: Union["ExperimentSpec", PTFConfig, None],
        rngs: RngFactory,
    ):
        self.user_id = int(user_id)
        self.num_items = int(num_items)
        self.positive_items = np.asarray(positive_items, dtype=np.int64)
        self.spec = ensure_spec(config)
        self._rngs = rngs

        model_rng = rngs.spawn_indexed("client-model", self.user_id)
        self.model: Recommender = create_model(
            self.spec.model.client_model,
            num_users=1,
            num_items=num_items,
            embedding_dim=self.spec.model.embedding_dim,
            rng=model_rng,
        )
        self.optimizer = Adam(self.model.parameters(), lr=self.spec.protocol.learning_rate)
        self.loss_fn = PointwiseBCELoss()

        # Server-provided soft labels (D̃_i); empty until the first dispersal.
        self.server_items: np.ndarray = np.empty(0, dtype=np.int64)
        self.server_scores: np.ndarray = np.empty(0, dtype=np.float64)

    @property
    def config(self) -> PTFConfig:
        """Deprecated flat snapshot of :attr:`spec` (pre-1.1 compatibility)."""
        return legacy_config_view(self.spec)

    # ------------------------------------------------------------------
    # Local training (Eq. 3)
    # ------------------------------------------------------------------
    def training_plan(self, round_index: int) -> Optional[ClientTrainingPlan]:
        """Materialize this round's local-training batches, or ``None``.

        The plan draws every epoch's negatives and shuffles from the
        client's dedicated RNG stream in exactly the order the fit loop
        consumes them (model updates draw no randomness, so materializing
        up front cannot perturb any stream).  The execution engine stacks
        equally shaped plans across clients and runs them as one
        vectorized cohort; clients with no positive interactions have no
        work and return ``None``.
        """
        if self.positive_items.size == 0:
            return None
        protocol = self.spec.protocol
        rng = self._rngs.spawn_indexed("client-training", self.user_id * 1_000_003 + round_index)
        sampler = UserBatchSampler(
            num_items=self.num_items,
            positive_items=self.positive_items,
            negative_ratio=protocol.negative_ratio,
            batch_size=protocol.client_batch_size,
            rng=rng,
        )
        epochs = [
            list(sampler.epoch(self.server_items, self.server_scores))
            for _ in range(protocol.client_local_epochs)
        ]
        return ClientTrainingPlan(user_id=self.user_id, epochs=epochs)

    def local_train(self, round_index: int) -> float:
        """Train the local model on ``D_i ∪ D̃_i``; returns the mean loss."""
        plan = self.training_plan(round_index)
        if plan is None:
            return 0.0
        self.model.train()
        total_loss = 0.0
        batches = 0
        for epoch_batches in plan.epochs:
            for items, labels in epoch_batches:
                users = np.zeros(len(items), dtype=np.int64)
                predictions = self.model.score(users, items)
                loss = self.loss_fn(predictions, labels)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                total_loss += loss.item()
                batches += 1
        return total_loss / max(batches, 1)

    # ------------------------------------------------------------------
    # Upload construction (Section III-B2)
    # ------------------------------------------------------------------
    def build_upload(self, round_index: int) -> ClientUpload:
        """Construct the privacy-protected prediction dataset ``D̂_i``."""
        privacy = self.spec.privacy
        rng = self._rngs.spawn_indexed("client-upload", self.user_id * 1_000_003 + round_index)

        # The trained item pool V_i^t: this round's positives plus sampled
        # negatives at the configured negative-sampling ratio.
        negatives = np.unique(
            sample_negative_items(
                self.num_items,
                self.positive_items,
                self.spec.protocol.negative_ratio * max(self.positive_items.size, 1),
                rng,
            )
        )

        if privacy.defense in ("none", "ldp"):
            # Upload predictions for the whole trained pool (the vulnerable
            # construction the paper uses as its "No Defense" baseline).
            selected_positive = self.positive_items.copy()
            selected_negative = negatives
        else:
            beta = rng.uniform(*privacy.beta_range)
            gamma = rng.uniform(*privacy.gamma_range)
            selected_positive, selected_negative = sample_upload_items(
                self.positive_items, negatives, beta, gamma, rng
            )

        items = np.concatenate([selected_positive, selected_negative])
        positive_mask = np.concatenate([
            np.ones(selected_positive.size, dtype=bool),
            np.zeros(selected_negative.size, dtype=bool),
        ])
        scores = self._predict(items)
        scores = apply_defense(
            privacy.defense,
            scores,
            positive_mask,
            swap_rate=privacy.swap_rate,
            ldp_scale=privacy.ldp_scale,
            rng=rng,
        )
        return ClientUpload(
            user_id=self.user_id,
            items=items,
            scores=scores,
            true_positive_items=self.positive_items.copy(),
        )

    def _predict(self, items: np.ndarray) -> np.ndarray:
        users = np.zeros(len(items), dtype=np.int64)
        return self.model.score_pairs(users, items)

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the client mutates across rounds.

        Covers the local model (parameters and update-count buffers), the
        Adam optimizer's moment estimates, and the latest server-provided
        soft labels ``D̃_i``.  The client's construction-time identity
        (user id, positives, spec) is *not* included — it is rebuilt from
        the spec and dataset, which the checkpoint manifest carries.
        """
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "server_items": self.server_items.copy(),
            "server_scores": self.server_scores.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this client."""
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.receive_dispersal(state["server_items"], state["server_scores"])

    # ------------------------------------------------------------------
    # Dispersal intake (Section III-B3)
    # ------------------------------------------------------------------
    def receive_dispersal(self, items: np.ndarray, scores: np.ndarray) -> None:
        """Replace the local copy of the server-provided dataset ``D̃_i``."""
        items = np.asarray(items, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if items.shape != scores.shape:
            raise ValueError("items and scores must have the same length")
        self.server_items = items
        self.server_scores = scores

    def __repr__(self) -> str:
        return (
            f"PTFClient(user={self.user_id}, positives={self.positive_items.size}, "
            f"server_labels={self.server_items.size})"
        )

"""The PTF-FedRec central server.

The server owns the service provider's "elaborately designed" model — the
intellectual property the framework hides.  Per round (Algorithm 1, lines
9-12) it:

1. trains its model on the pooled client uploads ``{D̂_i}`` with the
   soft-label cross entropy of Eq. 5,
2. builds, for every participating client, a dispersed dataset ``D̃_i`` of
   α items — a µ fraction chosen by *confidence* (items whose embeddings
   were updated most often) and the rest chosen as *hard* items (highest
   predicted score for that user), both excluding items the client just
   uploaded (Eq. 9) — and sends back its predictions for them.

Graph-based server models (NGCF / LightGCN) need an interaction graph to
propagate over, but the server never sees raw interactions; it therefore
maintains a surrogate graph built from high-score pairs accumulated from
the uploads, as described in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple, Union

# repro: disable=backend-purity -- server-side aggregation over uploaded prediction arrays
import numpy as np

from repro.core.client import ClientUpload
from repro.core.config import PTFConfig, ensure_spec, legacy_config_view
from repro.data.loaders import BatchIterator
from repro.models.base import Recommender
from repro.models.factory import create_model
from repro.models.graph import pairs_from_scores
from repro.nn.losses import PointwiseBCELoss
from repro.optim import Adam
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import ExperimentSpec


@dataclass
class DispersedDataset:
    """The soft-label dataset ``D̃_i`` the server sends to one client."""

    user_id: int
    items: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.items.shape != self.scores.shape:
            raise ValueError("items and scores must have the same length")

    @property
    def num_records(self) -> int:
        return int(self.items.size)


class PTFServer:
    """Holds and trains the hidden server-side recommendation model."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        config: Union["ExperimentSpec", PTFConfig, None],
        rngs: RngFactory,
    ):
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.spec = ensure_spec(config)
        self._rngs = rngs

        model_spec = self.spec.model
        kwargs = model_spec.server_model_kwargs()
        self.model: Recommender = create_model(
            model_spec.server_model,
            num_users=num_users,
            num_items=num_items,
            embedding_dim=model_spec.embedding_dim,
            rng=rngs.spawn("server-model"),
            **kwargs,
        )
        self.optimizer = Adam(self.model.parameters(), lr=self.spec.protocol.learning_rate)
        self.loss_fn = PointwiseBCELoss()

        # Surrogate interaction graph accumulated from uploaded predictions
        # (only used when the server model is graph-based).
        self._graph_pairs: Set[Tuple[int, int]] = set()
        self.loss_history: List[float] = []

    @property
    def config(self) -> PTFConfig:
        """Deprecated flat snapshot of :attr:`spec` (pre-1.1 compatibility)."""
        return legacy_config_view(self.spec)

    # ------------------------------------------------------------------
    # Training on uploads (Eq. 5)
    # ------------------------------------------------------------------
    def train_on_uploads(self, uploads: Sequence[ClientUpload], round_index: int) -> float:
        """Train the server model on the pooled prediction datasets."""
        uploads = [upload for upload in uploads if upload.num_records > 0]
        if not uploads:
            return 0.0
        users = np.concatenate([
            np.full(upload.num_records, upload.user_id, dtype=np.int64) for upload in uploads
        ])
        items = np.concatenate([upload.items for upload in uploads])
        scores = np.concatenate([upload.scores for upload in uploads])

        self._maybe_update_graph(users, items, scores)

        rng = self._rngs.spawn_indexed("server-batching", round_index)
        self.model.train()
        total_loss = 0.0
        batches = 0
        for _ in range(self.spec.protocol.server_epochs):
            iterator = BatchIterator(
                users, items, scores,
                batch_size=self.spec.protocol.server_batch_size, rng=rng,
            )
            for batch_users, batch_items, batch_scores in iterator:
                predictions = self.model.score(batch_users, batch_items)
                loss = self.loss_fn(predictions, batch_scores)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                total_loss += loss.item()
                batches += 1
        mean_loss = total_loss / max(batches, 1)
        self.loss_history.append(mean_loss)
        return mean_loss

    def _maybe_update_graph(
        self, users: np.ndarray, items: np.ndarray, scores: np.ndarray
    ) -> None:
        if not hasattr(self.model, "set_interaction_graph"):
            return
        new_pairs = pairs_from_scores(
            users, items, scores, threshold=self.spec.dispersal.graph_threshold
        )
        before = len(self._graph_pairs)
        self._graph_pairs.update((int(u), int(i)) for u, i in new_pairs)
        if len(self._graph_pairs) != before or before == 0:
            self.model.set_interaction_graph(sorted(self._graph_pairs))

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Model, optimizer, surrogate-graph and loss-history state."""
        pairs = np.asarray(sorted(self._graph_pairs), dtype=np.int64).reshape(-1, 2)
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "graph_pairs": pairs,
            "loss_history": [float(loss) for loss in self.loss_history],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this server."""
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        pairs = np.asarray(state["graph_pairs"], dtype=np.int64).reshape(-1, 2)
        self._graph_pairs = {(int(u), int(i)) for u, i in pairs}
        if self._graph_pairs and hasattr(self.model, "set_interaction_graph"):
            self.model.set_interaction_graph(sorted(self._graph_pairs))
        self.loss_history = [float(loss) for loss in state["loss_history"]]

    # ------------------------------------------------------------------
    # Dispersal construction (Eq. 9)
    # ------------------------------------------------------------------
    def build_dispersal(
        self,
        upload: ClientUpload,
        round_index: int,
        item_mask: Optional[np.ndarray] = None,
    ) -> DispersedDataset:
        """Build ``D̃_i`` for the client that produced ``upload``.

        ``item_mask`` (boolean, catalogue-length) restricts the candidate
        pool — dynamic-federation runs pass the set of items that have
        streamed into the catalogue so far, so the server never disperses
        an item that does not exist yet.
        """
        dispersal = self.spec.dispersal
        alpha = min(dispersal.alpha, self.num_items)
        if alpha == 0:
            empty = np.empty(0, dtype=np.int64)
            return DispersedDataset(upload.user_id, empty, empty.astype(np.float64))

        # Candidate pool: the full catalogue minus the client's uploaded
        # items, built with a boolean mask (the per-item Python loop this
        # replaces dominated round time on large catalogues).
        available = np.ones(self.num_items, dtype=bool)
        if item_mask is not None:
            available &= np.asarray(item_mask, dtype=bool)
        available[upload.items] = False
        candidates = np.flatnonzero(available).astype(np.int64)
        if candidates.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return DispersedDataset(upload.user_id, empty, empty.astype(np.float64))
        alpha = min(alpha, candidates.size)

        num_confidence = int(round(dispersal.mu * alpha))
        num_hard = alpha - num_confidence
        rng = self._rngs.spawn_indexed(
            "server-dispersal", upload.user_id * 1_000_003 + round_index
        )

        mode = dispersal.mode
        confidence_items = self._select_confidence(candidates, num_confidence, rng, mode)
        available[confidence_items] = False
        remaining = np.flatnonzero(available).astype(np.int64)
        hard_items = self._select_hard(upload.user_id, remaining, num_hard, rng, mode)

        items = np.unique(np.concatenate([confidence_items, hard_items]))
        scores = self.predict_for_user(upload.user_id, items)
        return DispersedDataset(upload.user_id, items, scores)

    def _select_confidence(
        self, candidates: np.ndarray, count: int, rng: np.random.Generator, mode: str
    ) -> np.ndarray:
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        count = min(count, candidates.size)
        if mode in ("random+hard", "random"):
            return rng.choice(candidates, size=count, replace=False)
        update_counts = self.model.item_update_counts()[candidates]
        order = np.argsort(-update_counts)
        return candidates[order[:count]]

    def _select_hard(
        self,
        user_id: int,
        candidates: np.ndarray,
        count: int,
        rng: np.random.Generator,
        mode: str,
    ) -> np.ndarray:
        if count <= 0 or candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        count = min(count, candidates.size)
        if mode in ("confidence+random", "random"):
            return rng.choice(candidates, size=count, replace=False)
        scores = self.predict_for_user(user_id, candidates)
        order = np.argsort(-scores)
        return candidates[order[:count]]

    # ------------------------------------------------------------------
    # Prediction helpers
    # ------------------------------------------------------------------
    def predict_for_user(self, user_id: int, items: np.ndarray) -> np.ndarray:
        """Server-model predictions ``r̃`` for one user over ``items``."""
        items = np.asarray(items, dtype=np.int64)
        users = np.full(items.size, int(user_id), dtype=np.int64)
        return self.model.score_pairs(users, items)

"""Configuration for the PTF-FedRec protocol (paper Section IV-D)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Privacy defenses applied to the client's uploaded prediction dataset.
#: ``"none"`` uploads every trained item's prediction (the vulnerable
#: baseline), ``"ldp"`` adds Laplace noise to every score, ``"sampling"``
#: uploads only a random β/γ subset, and ``"sampling+swapping"`` (the
#: paper's full mechanism) additionally swaps a λ fraction of positive
#: scores with negative scores.
DefenseMode = str
DEFENSE_MODES: Tuple[str, ...] = ("none", "ldp", "sampling", "sampling+swapping")

#: Strategies for building the server-dispersed dataset ``D̃_i``.  The
#: paper's method is ``"confidence+hard"``; the Table VII ablations replace
#: one or both components with random items.
DispersalMode = str
DISPERSAL_MODES: Tuple[str, ...] = (
    "confidence+hard",
    "confidence+random",
    "random+hard",
    "random",
)


@dataclass
class PTFConfig:
    """Hyper-parameters of PTF-FedRec.

    Defaults follow the paper: embedding size 32, α=30, β sampled from
    [0.1, 1], γ sampled from [1, 4], λ=0.1, µ=0.5, Adam with learning rate
    0.001, 20 global rounds, 5 client / 2 server local epochs, batch sizes
    64 (client) and 1024 (server), 1:4 negative sampling.
    """

    # Models
    client_model: str = "neumf"
    server_model: str = "ngcf"
    embedding_dim: int = 32
    client_mlp_layers: Tuple[int, ...] = (64, 32, 16)
    server_num_layers: int = 3

    # Protocol
    rounds: int = 20
    client_fraction: float = 1.0
    client_local_epochs: int = 5
    server_epochs: int = 2
    client_batch_size: int = 64
    server_batch_size: int = 1024
    learning_rate: float = 0.001
    negative_ratio: int = 4

    # Upload construction (Section III-B2)
    defense: DefenseMode = "sampling+swapping"
    beta_range: Tuple[float, float] = (0.1, 1.0)
    gamma_range: Tuple[float, float] = (1.0, 4.0)
    swap_rate: float = 0.1
    ldp_scale: float = 0.2

    # Dispersal construction (Section III-B3)
    alpha: int = 30
    mu: float = 0.5
    dispersal_mode: DispersalMode = "confidence+hard"
    graph_threshold: float = 0.5

    # Reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        if self.defense not in DEFENSE_MODES:
            raise ValueError(
                f"defense must be one of {DEFENSE_MODES}, got {self.defense!r}"
            )
        if self.dispersal_mode not in DISPERSAL_MODES:
            raise ValueError(
                f"dispersal_mode must be one of {DISPERSAL_MODES}, got {self.dispersal_mode!r}"
            )
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(f"client_fraction must be in (0, 1], got {self.client_fraction}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if not 0.0 <= self.mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {self.mu}")
        if not 0.0 <= self.swap_rate <= 1.0:
            raise ValueError(f"swap_rate must be in [0, 1], got {self.swap_rate}")
        low, high = self.beta_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError(f"beta_range must satisfy 0 < low <= high <= 1, got {self.beta_range}")
        low, high = self.gamma_range
        if not 0.0 < low <= high:
            raise ValueError(f"gamma_range must satisfy 0 < low <= high, got {self.gamma_range}")
        if self.negative_ratio < 1:
            raise ValueError(f"negative_ratio must be >= 1, got {self.negative_ratio}")
        if self.ldp_scale < 0:
            raise ValueError(f"ldp_scale must be non-negative, got {self.ldp_scale}")

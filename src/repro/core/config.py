"""Legacy flat configuration for PTF-FedRec (paper Section IV-D).

.. deprecated::
    :class:`PTFConfig` is a backward-compatibility shim.  The canonical
    configuration API is :class:`repro.experiments.ExperimentSpec`, whose
    sections (model / protocol / privacy / dispersal / evaluation) carry
    the same hyper-parameters; ``PTFConfig(...)`` now validates by
    converting to a spec (:meth:`PTFConfig.to_spec`) and every core
    component accepts either form.

This module also keeps the mode vocabularies, which are shared by the shim
and the spec sections.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.spec import ExperimentSpec

#: Privacy defenses applied to the client's uploaded prediction dataset.
#: ``"none"`` uploads every trained item's prediction (the vulnerable
#: baseline), ``"ldp"`` adds Laplace noise to every score, ``"sampling"``
#: uploads only a random β/γ subset, and ``"sampling+swapping"`` (the
#: paper's full mechanism) additionally swaps a λ fraction of positive
#: scores with negative scores.
DefenseMode = str
DEFENSE_MODES: Tuple[str, ...] = ("none", "ldp", "sampling", "sampling+swapping")

#: Strategies for building the server-dispersed dataset ``D̃_i``.  The
#: paper's method is ``"confidence+hard"``; the Table VII ablations replace
#: one or both components with random items.
DispersalMode = str
DISPERSAL_MODES: Tuple[str, ...] = (
    "confidence+hard",
    "confidence+random",
    "random+hard",
    "random",
)


@dataclass
class PTFConfig:
    """Deprecated flat hyper-parameter bundle for PTF-FedRec.

    Defaults follow the paper: embedding size 32, α=30, β sampled from
    [0.1, 1], γ sampled from [1, 4], λ=0.1, µ=0.5, Adam with learning rate
    0.001, 20 global rounds, 5 client / 2 server local epochs, batch sizes
    64 (client) and 1024 (server), 1:4 negative sampling.

    Use :class:`repro.experiments.ExperimentSpec` instead; this shim only
    exists so pre-spec code keeps running.  Construction emits a
    :class:`DeprecationWarning` and validates by building the equivalent
    spec, so invalid values raise ``ValueError`` as before (a few
    degenerate settings 1.0 silently accepted — zero batch sizes, a zero
    learning rate — are now rejected too; zero-epoch ablations remain
    valid).
    """

    # Models
    client_model: str = "neumf"
    server_model: str = "ngcf"
    embedding_dim: int = 32
    client_mlp_layers: Tuple[int, ...] = (64, 32, 16)
    server_num_layers: int = 3

    # Protocol
    rounds: int = 20
    client_fraction: float = 1.0
    client_local_epochs: int = 5
    server_epochs: int = 2
    client_batch_size: int = 64
    server_batch_size: int = 1024
    learning_rate: float = 0.001
    negative_ratio: int = 4

    # Upload construction (Section III-B2)
    defense: DefenseMode = "sampling+swapping"
    beta_range: Tuple[float, float] = (0.1, 1.0)
    gamma_range: Tuple[float, float] = (1.0, 4.0)
    swap_rate: float = 0.1
    ldp_scale: float = 0.2

    # Dispersal construction (Section III-B3)
    alpha: int = 30
    mu: float = 0.5
    dispersal_mode: DispersalMode = "confidence+hard"
    graph_threshold: float = 0.5

    # Reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        warnings.warn(
            "PTFConfig is deprecated; build a repro.experiments.ExperimentSpec "
            "instead (PTFConfig(...).to_spec() performs the conversion).",
            DeprecationWarning,
            stacklevel=3,
        )
        self.to_spec()  # validates every field with the spec's rules

    def to_spec(self) -> "ExperimentSpec":
        """Convert to the canonical :class:`ExperimentSpec` (trainer="ptf")."""
        from repro.experiments.spec import ExperimentSpec

        flat = {f.name: getattr(self, f.name) for f in fields(self)}
        seed = flat.pop("seed")
        return ExperimentSpec.from_flat(trainer="ptf", seed=seed, **flat)

    @classmethod
    def from_spec(cls, spec: "ExperimentSpec") -> "PTFConfig":
        """Flatten a spec back into the legacy shape (compat accessors)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(
                client_model=spec.model.client_model,
                server_model=spec.model.server_model,
                embedding_dim=spec.model.embedding_dim,
                client_mlp_layers=spec.model.client_mlp_layers,
                server_num_layers=spec.model.server_num_layers,
                rounds=spec.protocol.rounds,
                client_fraction=spec.protocol.client_fraction,
                client_local_epochs=spec.protocol.client_local_epochs,
                server_epochs=spec.protocol.server_epochs,
                client_batch_size=spec.protocol.client_batch_size,
                server_batch_size=spec.protocol.server_batch_size,
                learning_rate=spec.protocol.learning_rate,
                negative_ratio=spec.protocol.negative_ratio,
                defense=spec.privacy.defense,
                beta_range=spec.privacy.beta_range,
                gamma_range=spec.privacy.gamma_range,
                swap_rate=spec.privacy.swap_rate,
                ldp_scale=spec.privacy.ldp_scale,
                alpha=spec.dispersal.alpha,
                mu=spec.dispersal.mu,
                dispersal_mode=spec.dispersal.mode,
                graph_threshold=spec.dispersal.graph_threshold,
                seed=spec.seed,
            )


def legacy_config_view(spec: "ExperimentSpec") -> PTFConfig:
    """Deprecated flat snapshot of a spec, for pre-1.1 ``.config`` readers.

    Backs the ``.config`` properties on :class:`~repro.core.client.PTFClient`,
    :class:`~repro.core.server.PTFServer` and
    :class:`~repro.core.protocol.PTFFedRec`.  The returned object is a
    reconstruction: mutating it does not affect the running system.
    """
    warnings.warn(
        ".config is deprecated; read the structured .spec instead "
        "(e.g. spec.protocol.rounds rather than config.rounds).",
        DeprecationWarning,
        stacklevel=3,
    )
    # Rebuilt on every access (no memo): specs are mutable, and a stale
    # snapshot disagreeing with .spec would be worse than the rebuild cost
    # on this deprecated path.
    return PTFConfig.from_spec(spec)


def ensure_spec(config: Optional[object]) -> "ExperimentSpec":
    """Normalize any accepted config form to an :class:`ExperimentSpec`.

    Core components (:class:`~repro.core.client.PTFClient`,
    :class:`~repro.core.server.PTFServer`,
    :class:`~repro.core.protocol.PTFFedRec`) call this so they accept an
    ``ExperimentSpec``, a legacy ``PTFConfig``, or ``None`` (paper
    defaults) interchangeably.
    """
    from repro.experiments.spec import ExperimentSpec

    if config is None:
        return ExperimentSpec(trainer="ptf")
    if isinstance(config, ExperimentSpec):
        return config
    if isinstance(config, PTFConfig):
        return config.to_spec()
    raise TypeError(
        "config must be an ExperimentSpec, a PTFConfig or None, "
        f"got {type(config).__name__}"
    )

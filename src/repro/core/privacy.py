"""Privacy-preserving construction of the client's uploaded dataset ``D̂_i``.

Section III-B2 of the paper: uploading predictions for *all* trained items
lets a curious server run the "Top Guess Attack" (treat the top γ·|V_t|
scores as the user's positives).  PTF-FedRec defends with

* **sampling** — upload only a random fraction β of the positives and a
  random ratio γ of negatives, so the server no longer knows the
  positive/negative ratio of the uploaded set (noise-free differential
  privacy via subsampling), and
* **swapping** — exchange the scores of a fraction λ of the
  highest-scoring positives with scores of negatives, perturbing the
  order information that the attack exploits.

Local differential privacy (Laplace noise on the scores) is implemented as
the comparison defense used in Tables V and VI.
"""

from __future__ import annotations

from typing import Tuple

# repro: disable=backend-purity -- perturbation operates on uploaded prediction arrays pre-wire
import numpy as np


def sample_upload_items(
    positive_items: np.ndarray,
    negative_items: np.ndarray,
    beta: float,
    gamma: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Select the uploaded subset ``V̂_i`` from the trained item pool.

    ``beta`` is the fraction of positive items to upload; ``gamma`` is the
    negative-to-positive ratio of the uploaded set (Eq. 7).  At least one
    positive is always kept (the paper's β lower bound is 0.1), and the
    negative count is capped by the available pool.
    """
    positive_items = np.asarray(positive_items, dtype=np.int64)
    negative_items = np.asarray(negative_items, dtype=np.int64)
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")

    num_positive = max(1, int(round(beta * positive_items.size))) if positive_items.size else 0
    selected_positive = (
        rng.choice(positive_items, size=num_positive, replace=False)
        if num_positive
        else np.empty(0, dtype=np.int64)
    )
    num_negative = min(negative_items.size, int(round(gamma * max(num_positive, 1))))
    selected_negative = (
        rng.choice(negative_items, size=num_negative, replace=False)
        if num_negative
        else np.empty(0, dtype=np.int64)
    )
    return selected_positive, selected_negative


def swap_positive_scores(
    scores: np.ndarray,
    positive_mask: np.ndarray,
    swap_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Swap the scores of top positives with scores of random negatives (Eq. 8).

    ``positive_mask`` marks which entries of ``scores`` belong to positive
    items.  A fraction ``swap_rate`` of the positives — those with the
    highest predicted scores, which are exactly the ones the Top Guess
    Attack would recover — exchange their score values with randomly
    chosen negatives.  Returns a new array; the input is not modified.
    """
    scores = np.asarray(scores, dtype=np.float64).copy()
    positive_mask = np.asarray(positive_mask, dtype=bool)
    if scores.shape != positive_mask.shape:
        raise ValueError("scores and positive_mask must have the same shape")
    if not 0.0 <= swap_rate <= 1.0:
        raise ValueError(f"swap_rate must be in [0, 1], got {swap_rate}")

    positive_indices = np.flatnonzero(positive_mask)
    negative_indices = np.flatnonzero(~positive_mask)
    if positive_indices.size == 0 or negative_indices.size == 0 or swap_rate == 0.0:
        return scores

    num_swaps = int(round(swap_rate * positive_indices.size))
    if num_swaps == 0:
        return scores
    num_swaps = min(num_swaps, negative_indices.size)

    ranked_positives = positive_indices[np.argsort(-scores[positive_indices])]
    chosen_positives = ranked_positives[:num_swaps]
    chosen_negatives = rng.choice(negative_indices, size=num_swaps, replace=False)

    swapped = scores.copy()
    swapped[chosen_positives] = scores[chosen_negatives]
    swapped[chosen_negatives] = scores[chosen_positives]
    return swapped


def laplace_perturbation(
    scores: np.ndarray,
    scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add Laplace noise to prediction scores and clip back to [0, 1].

    This is the classic LDP mechanism used by traditional FedRecs; the
    paper shows it either fails to hide the score ordering (small scale)
    or destroys utility (large scale).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if scale == 0:
        return scores.copy()
    noisy = scores + rng.laplace(0.0, scale, size=scores.shape)
    return np.clip(noisy, 0.0, 1.0)


def apply_defense(
    defense: str,
    scores: np.ndarray,
    positive_mask: np.ndarray,
    swap_rate: float,
    ldp_scale: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply the score-level part of the configured defense.

    Sampling is handled earlier (it decides *which* items are uploaded);
    this function perturbs the *scores* of the already-selected items:
    ``"ldp"`` adds Laplace noise, ``"sampling+swapping"`` applies the swap
    mechanism, and the other modes leave scores untouched.
    """
    if defense == "ldp":
        return laplace_perturbation(scores, ldp_scale, rng)
    if defense == "sampling+swapping":
        return swap_positive_scores(scores, positive_mask, swap_rate, rng)
    return np.asarray(scores, dtype=np.float64).copy()

"""The "Top Guess Attack" privacy audit (Section III-B2 / IV-G).

Threat model: the central server is honest-but-curious.  Knowing the
conventional negative-sampling ratio (1:4, i.e. 20% of trained items are
positives), it guesses that the top ``guess_ratio`` fraction of a client's
uploaded prediction scores correspond to that client's interacted items.
The attack is graded with F1 against the client's true positives among the
uploaded items; lower F1 means better privacy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

# repro: disable=backend-purity -- the attack consumes the plaintext upload arrays an adversary sees
import numpy as np

from repro.core.client import ClientUpload
from repro.eval.metrics import f1_score


@dataclass(frozen=True)
class AttackReport:
    """Aggregate result of auditing one round of uploads."""

    mean_f1: float
    per_client_f1: Dict[int, float]
    guess_ratio: float
    num_clients: int

    def as_dict(self) -> Dict[str, float]:
        return {"F1": self.mean_f1, "guess_ratio": self.guess_ratio, "clients": self.num_clients}


class TopGuessAttack:
    """Implements the curious server's positive-item inference."""

    def __init__(self, guess_ratio: float = 0.2):
        if not 0.0 < guess_ratio <= 1.0:
            raise ValueError(f"guess_ratio must be in (0, 1], got {guess_ratio}")
        self.guess_ratio = guess_ratio

    def guess_positive_items(self, upload: ClientUpload) -> np.ndarray:
        """Return the items the attacker would flag as positives."""
        if upload.num_records == 0:
            return np.empty(0, dtype=np.int64)
        num_guesses = max(1, int(round(self.guess_ratio * upload.num_records)))
        order = np.argsort(-upload.scores)
        return upload.items[order[:num_guesses]]

    def audit_upload(self, upload: ClientUpload) -> float:
        """F1 of the attacker's guesses against the true uploaded positives."""
        guesses = self.guess_positive_items(upload)
        return f1_score(guesses, upload.true_positive_items)

    def audit_round(self, uploads: Sequence[ClientUpload]) -> AttackReport:
        """Audit every client's upload and average the F1 scores."""
        per_client: Dict[int, float] = {}
        for upload in uploads:
            if upload.num_records == 0:
                continue
            per_client[upload.user_id] = self.audit_upload(upload)
        mean = float(np.mean(list(per_client.values()))) if per_client else 0.0
        return AttackReport(
            mean_f1=mean,
            per_client_f1=per_client,
            guess_ratio=self.guess_ratio,
            num_clients=len(per_client),
        )

"""Byte-level communication accounting.

Table IV of the paper compares the *average per-client, per-round*
communication cost of each framework.  Every simulated framework in this
repository records each logical transfer (download or upload, per client,
per round) in a :class:`CommunicationLedger`, and the benchmark reproduces
the table directly from the ledger.

Cost model:

* dense parameters — 4 bytes per float (float32 on the wire),
* homomorphically encrypted values — one Paillier-style ciphertext per
  value; 2048-bit keys give 512-byte ciphertexts (the expansion that makes
  FedMF's costs explode in the paper),
* prediction triples — ``(user id, item id, score)`` packed as two 4-byte
  integers and one 4-byte float.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Literal

# repro: disable=backend-purity -- byte accounting and ledger serialization over int arrays
import numpy as np

FLOAT_BYTES = 4
INT_BYTES = 4
PAILLIER_CIPHERTEXT_BYTES = 512

Direction = Literal["download", "upload"]


def dense_parameter_bytes(num_values: int) -> int:
    """Bytes needed to ship ``num_values`` plaintext float parameters."""
    if num_values < 0:
        raise ValueError(f"num_values must be non-negative, got {num_values}")
    return num_values * FLOAT_BYTES


def sparse_parameter_bytes(
    num_rows: int,
    row_width: int,
    index_bytes: int = INT_BYTES,
    value_bytes: int = FLOAT_BYTES,
) -> int:
    """Bytes needed to ship ``num_rows`` touched rows of a parameter table.

    A sparse payload carries, per touched row, one row index plus
    ``row_width`` values — so a client that touched 40 of 100k item rows
    pays for 40 rows, not the full table.  ``value_bytes`` generalizes the
    per-value cost (FedMF ships ciphertexts, not plaintext floats; row
    indices stay plaintext — they are already exposed by which rows carry
    an update at all).
    """
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    if row_width < 0:
        raise ValueError(f"row_width must be non-negative, got {row_width}")
    return num_rows * (index_bytes + row_width * value_bytes)


def encrypted_parameter_bytes(
    num_values: int, ciphertext_bytes: int = PAILLIER_CIPHERTEXT_BYTES
) -> int:
    """Bytes needed to ship ``num_values`` homomorphically encrypted values."""
    if num_values < 0:
        raise ValueError(f"num_values must be non-negative, got {num_values}")
    return num_values * ciphertext_bytes


def prediction_triple_bytes(num_triples: int) -> int:
    """Bytes needed to ship ``num_triples`` ``(user, item, score)`` records."""
    if num_triples < 0:
        raise ValueError(f"num_triples must be non-negative, got {num_triples}")
    return num_triples * (2 * INT_BYTES + FLOAT_BYTES)


@dataclass(frozen=True)
class TransferRecord:
    """One logical transfer between the server and a client."""

    round_index: int
    client_id: int
    direction: Direction
    num_bytes: int
    description: str = ""


class CommunicationLedger:
    """Accumulates transfers and answers per-client/per-round questions."""

    def __init__(self):
        self._records: List[TransferRecord] = []

    def record(
        self,
        round_index: int,
        client_id: int,
        direction: Direction,
        num_bytes: int,
        description: str = "",
    ) -> None:
        """Append one transfer to the ledger."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if direction not in ("download", "upload"):
            raise ValueError(f"direction must be 'download' or 'upload', got {direction!r}")
        self._records.append(
            TransferRecord(round_index, client_id, direction, int(num_bytes), description)
        )

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[TransferRecord]:
        return list(self._records)

    def total_bytes(self) -> int:
        """Total bytes moved across all rounds, clients and directions."""
        return sum(record.num_bytes for record in self._records)

    def bytes_per_round(self) -> Dict[int, int]:
        """Total bytes per round."""
        totals: Dict[int, int] = defaultdict(int)
        for record in self._records:
            totals[record.round_index] += record.num_bytes
        return dict(totals)

    def client_round_bytes(self) -> Dict[tuple, int]:
        """Bytes for each ``(client, round)`` combination that had traffic."""
        totals: Dict[tuple, int] = defaultdict(int)
        for record in self._records:
            totals[(record.client_id, record.round_index)] += record.num_bytes
        return dict(totals)

    def average_client_round_bytes(self) -> float:
        """Average bytes per client per round (the Table IV quantity)."""
        per_pair = self.client_round_bytes()
        if not per_pair:
            return 0.0
        # repro: disable=float-determinism -- integer byte counts; order-free
        return sum(per_pair.values()) / len(per_pair)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round cost in KB."""
        return self.average_client_round_bytes() / 1024.0

    def average_client_round_megabytes(self) -> float:
        """Average per-client per-round cost in MB."""
        return self.average_client_round_bytes() / (1024.0 * 1024.0)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Columnar snapshot of every record (arrays + parallel string lists).

        A resumed run must report the *whole* run's communication, so the
        ledger is checkpointed alongside the model state.
        """
        return {
            "round_index": np.array([r.round_index for r in self._records], dtype=np.int64),
            "client_id": np.array([r.client_id for r in self._records], dtype=np.int64),
            "num_bytes": np.array([r.num_bytes for r in self._records], dtype=np.int64),
            "direction": [r.direction for r in self._records],
            "description": [r.description for r in self._records],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace all records with a :meth:`state_dict` snapshot."""
        rounds = state["round_index"]
        clients = state["client_id"]
        sizes = state["num_bytes"]
        directions = state["direction"]
        descriptions = state["description"]
        lengths = {len(rounds), len(clients), len(sizes), len(directions), len(descriptions)}
        if len(lengths) != 1:
            raise ValueError(f"ledger state columns disagree on length: {sorted(lengths)}")
        self._records = [
            TransferRecord(int(r), int(c), str(d), int(b), str(text))
            for r, c, d, b, text in zip(rounds, clients, directions, sizes, descriptions)
        ]

"""MetaMF: meta matrix factorization for federated rating prediction.

MetaMF (Lin et al. 2020) keeps a meta network on the server that generates
item embeddings for each client's private rating-prediction model.  This
reproduction models it as a matrix-factorization recommender whose item
embeddings are *generated* by a shared meta network applied to a public
item base table; the public payload is therefore the base table plus the
meta-network weights, which makes its per-round traffic slightly larger
than FCF's raw item table — matching the ordering in the paper's Table IV.
"""

from __future__ import annotations

from typing import Optional, Sequence

# repro: disable=backend-purity -- meta-network shape bookkeeping; training math runs on Tensor
import numpy as np

from repro.data.dataset import InteractionDataset
from repro.federated.base import FederatedConfig, ParameterTransmissionFedRec
from repro.federated.communication import dense_parameter_bytes
from repro.models.base import Recommender
from repro.nn import Embedding, Linear
from repro.tensor import Tensor
from repro.utils.rng import RngFactory
from repro.utils.rng import seeded_rng


class MetaMFModel(Recommender):
    """MF whose item embeddings are produced by a shared meta network."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(num_users, num_items)
        rng = rng if rng is not None else seeded_rng()
        self.embedding_dim = embedding_dim
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng)
        self.item_base_embedding = Embedding(num_items, embedding_dim, rng=rng)
        self.meta_hidden = Linear(embedding_dim, embedding_dim, rng=rng)
        self.meta_output = Linear(embedding_dim, embedding_dim, rng=rng)

    def generate_item_embedding(self, items: np.ndarray) -> Tensor:
        """Run the meta network over the base embeddings of ``items``."""
        base = self.item_base_embedding(items)
        hidden = self.meta_hidden(base).relu()
        return self.meta_output(hidden) + base

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_vectors = self.user_embedding(users)
        item_vectors = self.generate_item_embedding(items)
        logits = (user_vectors * item_vectors).sum(axis=1)
        return logits.sigmoid()

    def item_update_counts(self) -> np.ndarray:
        return self.item_base_embedding.update_counts.copy()


class MetaMF(ParameterTransmissionFedRec):
    """Federated training of :class:`MetaMFModel` with FedAvg aggregation."""

    name = "MetaMF"

    def __init__(self, dataset: InteractionDataset, config: Optional[FederatedConfig] = None):
        super().__init__(dataset, config)

    def _build_global_model(self) -> MetaMFModel:
        rng = RngFactory(self.config.seed).spawn("metamf-model")
        return MetaMFModel(
            self.dataset.num_users,
            self.dataset.num_items,
            embedding_dim=self.config.embedding_dim,
            rng=rng,
        )

    def _public_parameter_names(self) -> Sequence[str]:
        return [
            "item_base_embedding.weight",
            "meta_hidden.weight",
            "meta_hidden.bias",
            "meta_output.weight",
            "meta_output.bias",
        ]

    def _item_row_parameter_names(self) -> Sequence[str]:
        # Only the base table is item-indexed; the meta-network weights are
        # dense blocks every client updates wholesale.
        return ["item_base_embedding.weight"]

    def _public_value_count(self) -> int:
        model: MetaMFModel = self.model
        return (
            model.item_base_embedding.weight.size
            + model.meta_hidden.weight.size
            + model.meta_hidden.bias.size
            + model.meta_output.weight.size
            + model.meta_output.bias.size
        )

    def _download_bytes(self) -> int:
        return dense_parameter_bytes(self._public_value_count())

    def _upload_bytes(self) -> int:
        return dense_parameter_bytes(self._public_value_count())

"""FedMF: secure federated matrix factorization (Chai et al. 2020).

FedMF follows the same learning protocol as FCF but protects the uploaded
item-embedding updates with additively homomorphic encryption, so the
server aggregates ciphertexts it cannot read individually.  Encryption is
semantically transparent to the learning dynamics (the aggregate is the
same numbers); what changes is the wire size — every 4-byte float becomes
a ciphertext.  The paper's Table IV shows this expansion dominating the
comparison, and this implementation reproduces it with a configurable
``ciphertext_bytes`` cost model (default 64 bytes/value, which matches the
roughly 16x expansion over FCF reported in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.data.dataset import InteractionDataset
from repro.federated.base import FederatedConfig, ParameterTransmissionFedRec
from repro.federated.communication import encrypted_parameter_bytes
from repro.models.mf import MatrixFactorization
from repro.utils.rng import RngFactory

DEFAULT_CIPHERTEXT_BYTES = 64


class FedMF(ParameterTransmissionFedRec):
    """FCF with homomorphically encrypted parameter exchange."""

    name = "FedMF"

    def __init__(
        self,
        dataset: InteractionDataset,
        config: Optional[FederatedConfig] = None,
        ciphertext_bytes: int = DEFAULT_CIPHERTEXT_BYTES,
    ):
        if ciphertext_bytes < 4:
            raise ValueError(
                f"ciphertext_bytes must be at least 4 (plaintext size), got {ciphertext_bytes}"
            )
        self.ciphertext_bytes = ciphertext_bytes
        super().__init__(dataset, config)

    def _build_global_model(self) -> MatrixFactorization:
        # Same plain matrix factorization as FCF (see the note there); only
        # the wire format differs.
        rng = RngFactory(self.config.seed).spawn("fedmf-model")
        return MatrixFactorization(
            self.dataset.num_users,
            self.dataset.num_items,
            embedding_dim=self.config.embedding_dim,
            rng=rng,
            use_bias=False,
        )

    def _public_parameter_names(self) -> Sequence[str]:
        return ["item_embedding.weight"]

    def _item_row_parameter_names(self) -> Sequence[str]:
        # Sparse payloads ship only the item rows a client interacted with.
        return ["item_embedding.weight"]

    def _sparse_value_bytes(self) -> int:
        # Each uploaded value is still a ciphertext; the row indices stay
        # plaintext (which rows update is already visible to the server).
        return self.ciphertext_bytes

    def _public_value_count(self) -> int:
        model: MatrixFactorization = self.model
        return model.item_embedding.weight.size

    def _download_bytes(self) -> int:
        return encrypted_parameter_bytes(self._public_value_count(), self.ciphertext_bytes)

    def _upload_bytes(self) -> int:
        return encrypted_parameter_bytes(self._public_value_count(), self.ciphertext_bytes)

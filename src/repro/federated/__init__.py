"""Parameter transmission-based federated recommendation baselines.

These implement the traditional FedRec learning protocol the paper argues
against (Section II-B): the server open-sources a recommendation model,
ships its public parameters (item embeddings and shared weights) to
clients every round, clients train locally and upload updates, and the
server aggregates them FedAvg-style.

Three baselines from the paper's Table III / IV are provided:

* :class:`FCF` — federated collaborative filtering (Ammad-ud-din et al.),
* :class:`FedMF` — secure matrix factorization with homomorphically
  encrypted item-embedding updates (Chai et al.); the encryption is
  modelled by its ciphertext expansion, which is what drives its
  communication cost,
* :class:`MetaMF` — meta-network-based federated rating prediction
  (Lin et al.), approximated by a shared item-embedding *generator*
  network that is transmitted instead of the raw embedding table.
"""

from repro.federated.communication import (
    CommunicationLedger,
    TransferRecord,
    dense_parameter_bytes,
    encrypted_parameter_bytes,
    prediction_triple_bytes,
)
from repro.federated.base import FederatedConfig, ParameterTransmissionFedRec
from repro.federated.fcf import FCF
from repro.federated.fedmf import FedMF
from repro.federated.metamf import MetaMF

__all__ = [
    "CommunicationLedger",
    "TransferRecord",
    "dense_parameter_bytes",
    "encrypted_parameter_bytes",
    "prediction_triple_bytes",
    "FederatedConfig",
    "ParameterTransmissionFedRec",
    "FCF",
    "FedMF",
    "MetaMF",
]

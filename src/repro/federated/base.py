"""Simulation of the traditional parameter transmission-based FedRec protocol.

One simulated round (Section II-B of the paper):

1. the server sends the current public parameters to every selected client
   (the download leg),
2. each client combines them with its private parameters (its own user
   embedding), trains locally on its private interactions for a few
   epochs, and
3. uploads its updated public parameters (equivalently, their deltas),
4. the server averages the uploads (FedAvg) into the new global public
   parameters.

The same driver powers FCF, FedMF and MetaMF; subclasses choose the global
model, declare which parameters are public, and price the two transfer
legs for the communication ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.callbacks import Callback

from repro.data.dataset import InteractionDataset
from repro.data.sampling import UserBatchSampler
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.federated.communication import CommunicationLedger
from repro.models.base import Recommender
from repro.nn.losses import PointwiseBCELoss
from repro.optim import SGD
from repro.tensor import Tensor
from repro.utils.rng import RngFactory


@dataclass
class FederatedConfig:
    """Hyper-parameters shared by the parameter-transmission baselines."""

    rounds: int = 20
    local_epochs: int = 2
    local_learning_rate: float = 0.05
    embedding_dim: int = 32
    negative_ratio: int = 4
    batch_size: int = 64
    client_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.local_epochs <= 0:
            raise ValueError(f"local_epochs must be positive, got {self.local_epochs}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(
                f"client_fraction must be in (0, 1], got {self.client_fraction}"
            )


class ParameterTransmissionFedRec:
    """Base driver for FedAvg-style federated recommenders."""

    name = "parameter-transmission-fedrec"

    def __init__(self, dataset: InteractionDataset, config: Optional[FederatedConfig] = None):
        self.dataset = dataset
        self.config = config if config is not None else FederatedConfig()
        self._rngs = RngFactory(self.config.seed)
        self.ledger = CommunicationLedger()
        self.loss_fn = PointwiseBCELoss()
        self.model = self._build_global_model()
        self._public_names = set(self._public_parameter_names())
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _build_global_model(self) -> Recommender:
        raise NotImplementedError

    def _public_parameter_names(self) -> Sequence[str]:
        """Qualified names (per ``Module.named_parameters``) of public params."""
        raise NotImplementedError

    def _download_bytes(self) -> int:
        """Bytes shipped server→client each round."""
        raise NotImplementedError

    def _upload_bytes(self) -> int:
        """Bytes shipped client→server each round."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Federated round
    # ------------------------------------------------------------------
    def _select_clients(self, round_index: int) -> List[int]:
        users = self.dataset.users
        if self.config.client_fraction >= 1.0:
            return list(users)
        rng = self._rngs.spawn_indexed("client-selection", round_index)
        count = max(1, int(round(self.config.client_fraction * len(users))))
        return sorted(rng.choice(users, size=count, replace=False).tolist())

    def _public_state(self) -> Dict[str, np.ndarray]:
        return {
            name: parameter.data.copy()
            for name, parameter in self.model.named_parameters()
            if name in self._public_names
        }

    def _load_public_state(self, state: Dict[str, np.ndarray]) -> None:
        for name, parameter in self.model.named_parameters():
            if name in self._public_names:
                parameter.data = state[name].copy()

    def _local_training(self, user: int, round_index: int) -> float:
        """Run the client's local epochs; returns the mean batch loss."""
        positives = self.dataset.train_items(user)
        if positives.size == 0:
            return 0.0
        rng = self._rngs.spawn_indexed("local-sampling", user * 100_003 + round_index)
        sampler = UserBatchSampler(
            num_items=self.dataset.num_items,
            positive_items=positives,
            negative_ratio=self.config.negative_ratio,
            batch_size=self.config.batch_size,
            rng=rng,
        )
        optimizer = SGD(self.model.parameters(), lr=self.config.local_learning_rate)
        self.model.train()
        total_loss = 0.0
        batches = 0
        for _ in range(self.config.local_epochs):
            for items, labels in sampler.epoch():
                users = np.full(len(items), user, dtype=np.int64)
                predictions = self.model.score(users, items)
                loss = self.loss_fn(predictions, labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total_loss += loss.item()
                batches += 1
        return total_loss / max(batches, 1)

    def run_round(self, round_index: int) -> Dict[str, float]:
        """Execute one full federated round.

        Aggregation is coordinate-wise federated averaging over the clients
        that actually updated each entry: a client that never interacted
        with an item contributes nothing to that item's embedding, which is
        the standard practice in FedRec systems (only interacting users
        hold gradients for an item).
        """
        selected = self._select_clients(round_index)
        global_state = self._public_state()
        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}
        download_bytes = self._download_bytes()
        upload_bytes = self._upload_bytes()

        client_losses: List[float] = []
        for user in selected:
            self.ledger.record(round_index, user, "download", download_bytes,
                               description=f"{self.name} public parameters")
            self._load_public_state(global_state)
            client_losses.append(self._local_training(user, round_index))
            updated = self._public_state()
            for name in delta_sum:
                delta = updated[name] - global_state[name]
                delta_sum[name] += delta
                update_count[name] += (delta != 0.0)
            self.ledger.record(round_index, user, "upload", upload_bytes,
                               description=f"{self.name} public parameter update")

        new_state = {}
        for name, base in global_state.items():
            count = np.maximum(update_count[name], 1.0)
            new_state[name] = base + delta_sum[name] / count
        self._load_public_state(new_state)
        self.rounds_completed += 1
        return {
            "num_clients": len(selected),
            "client_loss": float(np.mean(client_losses)) if client_losses else 0.0,
        }

    def fit(
        self,
        rounds: Optional[int] = None,
        callbacks: Optional[Sequence["Callback"]] = None,
    ) -> "ParameterTransmissionFedRec":
        """Run the configured number of federated rounds.

        ``callbacks`` receive the shared training hooks and may stop the
        run early (see :mod:`repro.experiments.callbacks`).
        """
        from repro.experiments.callbacks import CallbackList

        hooks = CallbackList(callbacks)
        total = rounds if rounds is not None else self.config.rounds
        start = self.rounds_completed
        hooks.on_fit_start(self)
        for round_index in range(start, start + total):
            hooks.on_round_start(self, round_index)
            logs = self.run_round(round_index)
            hooks.on_round_end(self, round_index, logs)
            if hooks.should_stop:
                break
        hooks.on_fit_end(self)
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, k: int = 20, max_users: Optional[int] = None) -> RankingResult:
        """Rank with the global public + per-user private parameters."""
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(self.model, max_users=max_users)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round communication in KB (Table IV)."""
        return self.ledger.average_client_round_kilobytes()

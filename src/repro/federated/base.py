"""Simulation of the traditional parameter transmission-based FedRec protocol.

One simulated round (Section II-B of the paper):

1. the server sends the current public parameters to every selected client
   (the download leg),
2. each client combines them with its private parameters (its own user
   embedding), trains locally on its private interactions for a few
   epochs, and
3. uploads its updated public parameters (equivalently, their deltas),
4. the server averages the uploads (FedAvg) into the new global public
   parameters.

The same driver powers FCF, FedMF and MetaMF; subclasses choose the global
model, declare which parameters are public, and price the two transfer
legs for the communication ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

# repro: disable=backend-purity -- FedAvg aggregates state_dict ndarrays in parameter-registration order
import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.callbacks import Callback

from repro.data.dataset import InteractionDataset
from repro.data.sampling import UserBatchSampler
from repro.engine import ClientTrainingPlan, create_scheduler
from repro.engine.spec import EngineSpec
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.eval.scoring import DEFAULT_CHUNK_SIZE
from repro.federated.communication import (
    FLOAT_BYTES,
    CommunicationLedger,
    sparse_parameter_bytes,
)
from repro.models.base import Recommender
from repro.nn.losses import PointwiseBCELoss
from repro.optim import SGD
from repro.scenario import RoundParticipation, ScenarioEngine
from repro.scenario.spec import ScenarioSpec
from repro.tensor.sparse import SparseDelta
from repro.utils.rng import RngFactory


@dataclass
class FederatedConfig:
    """Hyper-parameters shared by the parameter-transmission baselines.

    ``engine`` optionally selects the execution scheduler for the per-round
    client loop (see :class:`repro.engine.EngineSpec`); ``None`` uses the
    serial reference path.  ``backend`` names the tensor backend the
    driver's model and local updates compute under (worker processes
    re-activate it explicitly, so the policy survives spawn-based pools).
    ``scenario`` injects dynamic-federation faults (churn, stragglers,
    async aggregation, streaming arrivals — see
    :class:`repro.scenario.ScenarioSpec`); ``None`` injects nothing.
    """

    rounds: int = 20
    local_epochs: int = 2
    local_learning_rate: float = 0.05
    embedding_dim: int = 32
    negative_ratio: int = 4
    batch_size: int = 64
    client_fraction: float = 1.0
    seed: int = 0
    engine: Optional[EngineSpec] = None
    backend: Optional[str] = None
    scenario: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        from repro.tensor.backend import resolve_backend_name

        self.backend = resolve_backend_name(self.backend)
        if isinstance(self.scenario, Mapping):
            self.scenario = ScenarioSpec(**dict(self.scenario))
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            raise ValueError(
                f"scenario must be a ScenarioSpec, a mapping or None, "
                f"got {type(self.scenario).__name__}"
            )
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.local_epochs <= 0:
            raise ValueError(f"local_epochs must be positive, got {self.local_epochs}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(
                f"client_fraction must be in (0, 1], got {self.client_fraction}"
            )
        if self.engine is not None and not isinstance(self.engine, EngineSpec):
            raise ValueError(
                f"engine must be an EngineSpec or None, got {type(self.engine).__name__}"
            )


# ----------------------------------------------------------------------
# The per-client local update, shared by every execution scheduler
# ----------------------------------------------------------------------
def build_local_plan(
    config: FederatedConfig,
    rngs: RngFactory,
    user: int,
    positives: np.ndarray,
    num_items: int,
    round_index: int,
) -> Optional[ClientTrainingPlan]:
    """Materialize one client's local-epoch batches (RNG-faithful)."""
    if positives.size == 0:
        return None
    rng = rngs.spawn_indexed("local-sampling", user * 100_003 + round_index)
    sampler = UserBatchSampler(
        num_items=num_items,
        positive_items=positives,
        negative_ratio=config.negative_ratio,
        batch_size=config.batch_size,
        rng=rng,
    )
    epochs = [list(sampler.epoch()) for _ in range(config.local_epochs)]
    return ClientTrainingPlan(user_id=int(user), epochs=epochs)


def run_local_plan(model: Recommender, config: FederatedConfig, user: int,
                   plan: ClientTrainingPlan) -> float:
    """Execute a client's plan against ``model``; returns the mean loss."""
    optimizer = SGD(model.parameters(), lr=config.local_learning_rate)
    loss_fn = PointwiseBCELoss()
    model.train()
    total_loss = 0.0
    batches = 0
    for epoch_batches in plan.epochs:
        for items, labels in epoch_batches:
            users = np.full(len(items), user, dtype=np.int64)
            predictions = model.score(users, items)
            loss = loss_fn(predictions, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            total_loss += loss.item()
            batches += 1
    return total_loss / max(batches, 1)


def fedavg_local_training(
    model: Recommender,
    rngs: RngFactory,
    config: FederatedConfig,
    user: int,
    positives: np.ndarray,
    num_items: int,
    round_index: int,
) -> float:
    """Plan and run one client's local update (used by worker processes)."""
    plan = build_local_plan(config, rngs, user, positives, num_items, round_index)
    if plan is None:
        return 0.0
    return run_local_plan(model, config, user, plan)


def load_public_state(model: Recommender, public_names, state) -> None:
    """Overwrite the model's public parameters with ``state``."""
    for name, parameter in model.named_parameters():
        if name in public_names:
            parameter.data = state[name].copy()


class ParameterTransmissionFedRec:
    """Base driver for FedAvg-style federated recommenders."""

    name = "parameter-transmission-fedrec"

    def __init__(self, dataset: InteractionDataset, config: Optional[FederatedConfig] = None):
        from repro.tensor.backend import use_backend

        self.dataset = dataset
        self.config = config if config is not None else FederatedConfig()
        self._rngs = RngFactory(self.config.seed)
        self.ledger = CommunicationLedger()
        # The driver honors its config's backend even when constructed
        # directly (the trainer adapters wrap too — nesting is harmless),
        # so the global model's dtype always matches config.backend.
        with use_backend(self.config.backend):
            self.model = self._build_global_model()
        self._public_names = set(self._public_parameter_names())
        self.engine = create_scheduler(self.config.engine)
        self.scenario = ScenarioEngine(
            self.config.scenario, self._rngs, dataset.users, dataset.num_items
        )
        # Buffered late payloads (async aggregation): each entry carries the
        # summed deltas of one round's stale cohort plus the round they fold
        # into; serialized with the checkpoint so resume replays them.
        self._stale_buffer: List[Dict[str, object]] = []
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _build_global_model(self) -> Recommender:
        raise NotImplementedError

    def _public_parameter_names(self) -> Sequence[str]:
        """Qualified names (per ``Module.named_parameters``) of public params."""
        raise NotImplementedError

    def _download_bytes(self) -> int:
        """Bytes shipped server→client each round."""
        raise NotImplementedError

    def _upload_bytes(self) -> int:
        """Bytes shipped client→server each round."""
        raise NotImplementedError

    def _item_row_parameter_names(self) -> Sequence[str]:
        """Public parameters that are item-row tables.

        The sparse payload path restricts these tables to each client's
        touched rows; every other public parameter ships whole.  Default:
        none (every public parameter is exchanged as a dense block).
        """
        return ()

    def _sparse_value_bytes(self) -> int:
        """Per-value wire cost of a sparse upload (FedMF ships ciphertexts)."""
        return FLOAT_BYTES

    @property
    def payload_format(self) -> str:
        """The configured parameter-exchange format (``dense`` or ``sparse``)."""
        return self.config.engine.payload if self.config.engine is not None else "dense"

    def _upload_bytes_sparse(self, touched: Mapping[str, tuple]) -> int:
        """Price one client's upload from its actual touched-row stats.

        Item-row tables pay per touched row (index + row values); other
        public parameters ship as dense blocks with no index overhead.
        Row indices stay plaintext even under encryption — which rows
        carry an update is already exposed by the payload's shape.
        """
        item_rows = set(self._item_row_parameter_names())
        value_bytes = self._sparse_value_bytes()
        total = 0
        for name, (num_rows, row_width) in touched.items():
            if name in item_rows:
                total += sparse_parameter_bytes(
                    num_rows, row_width, value_bytes=value_bytes
                )
            else:
                total += num_rows * row_width * value_bytes
        return total

    # ------------------------------------------------------------------
    # Federated round
    # ------------------------------------------------------------------
    def _select_clients(self, round_index: int) -> List[int]:
        users = self.dataset.users
        if self.config.client_fraction >= 1.0:
            return list(users)
        rng = self._rngs.spawn_indexed("client-selection", round_index)
        count = max(1, int(round(self.config.client_fraction * len(users))))
        return sorted(rng.choice(users, size=count, replace=False).tolist())

    def _public_state(self) -> Dict[str, np.ndarray]:
        return {
            name: parameter.data.copy()
            for name, parameter in self.model.named_parameters()
            if name in self._public_names
        }

    def _load_public_state(self, state: Dict[str, np.ndarray]) -> None:
        load_public_state(self.model, self._public_names, state)

    def local_training_plan(
        self, user: int, round_index: int
    ) -> Optional[ClientTrainingPlan]:
        """Materialize one client's local-training batches for the engine."""
        return build_local_plan(
            self.config,
            self._rngs,
            user,
            self.dataset.train_items(user),
            self.dataset.num_items,
            round_index,
        )

    def _local_training(self, user: int, round_index: int) -> float:
        """Run the client's local epochs; returns the mean batch loss."""
        plan = self.local_training_plan(user, round_index)
        if plan is None:
            return 0.0
        return run_local_plan(self.model, self.config, user, plan)

    def run_round(self, round_index: int) -> Dict[str, float]:
        """Execute one full federated round.

        The per-client local updates run through the configured execution
        engine (serial, batched or multiprocess — all bit-identical).
        Aggregation is coordinate-wise federated averaging over the clients
        that actually updated each entry: a client that never interacted
        with an item contributes nothing to that item's embedding, which is
        the standard practice in FedRec systems (only interacting users
        hold gradients for an item).

        With a scenario configured, the round instead runs the
        dynamic-participation path (:meth:`_run_round_scenario`): churned
        clients are skipped, stragglers' payloads are discarded or buffered,
        and aggregation renormalizes over what actually arrived.

        Under ``payload="sparse"`` the upload leg is metered from each
        client's actual touched-row statistics (:meth:`Scheduler.pop_touched`)
        instead of the flat full-table price — the download leg stays a
        dense broadcast of the public parameters.
        """
        if self.scenario.enabled:
            return self._run_round_scenario(round_index)
        selected = self._select_clients(round_index)
        global_state = self._public_state()
        download_bytes = self._download_bytes()
        upload_bytes = self._upload_bytes()

        losses, delta_sum, update_count = self.engine.train_fedavg_clients(
            self, selected, round_index, global_state
        )
        failed = set(self.engine.pop_failed())
        touched = self.engine.pop_touched()
        client_losses: List[float] = [
            losses[user] for user in selected if user not in failed
        ]
        for user in selected:
            self.ledger.record(round_index, user, "download", download_bytes,
                               description=f"{self.name} public parameters")
            if user in failed:
                continue
            if user in touched:
                self.ledger.record(round_index, user, "upload",
                                   self._upload_bytes_sparse(touched[user]),
                                   description=f"{self.name} sparse parameter update")
            else:
                self.ledger.record(round_index, user, "upload", upload_bytes,
                                   description=f"{self.name} public parameter update")

        new_state = {}
        for name, base in global_state.items():
            count = np.maximum(update_count[name], 1.0)
            new_state[name] = base + delta_sum[name] / count
        self._load_public_state(new_state)
        self.rounds_completed += 1
        logs = {
            "num_clients": len(selected),
            "client_loss": float(np.mean(client_losses)) if client_losses else 0.0,
        }
        if failed:
            # Worker failures outside any scenario still surface as drops
            # (extra keys appear only on failing rounds, so healthy runs
            # keep their exact log schema).
            logs.update(RoundParticipation(
                selected=len(selected),
                completed=len(selected) - len(failed),
                dropped=len(failed),
            ).as_logs())
        return logs

    def _encode_buffered(self, arrays: Dict[str, np.ndarray]) -> Dict[str, object]:
        """Encode a stale cohort's summed payload for buffering.

        Sparse runs keep only the nonzero rows (the buffer would otherwise
        hold full public tables per straggling cohort); dense runs keep the
        arrays as-is.  Folding a sparse entry back in is bit-identical: the
        dropped rows are exactly ``0.0`` and would contribute ``+0.0``.
        """
        if self.payload_format != "sparse":
            return dict(arrays)
        return {name: SparseDelta.from_dense(value) for name, value in arrays.items()}

    def _run_round_scenario(self, round_index: int) -> Dict[str, float]:
        """One round under fault injection (partial / async aggregation).

        Training still runs through the configured engine, group by group:
        the on-time cohort aggregates immediately with weight 1; async
        stragglers train now but their summed deltas are buffered and
        folded into round ``round_index + staleness`` with weight
        ``staleness_alpha / (staleness + 1)``; sync (or over-stale)
        stragglers train — the device did the work — but their payload is
        discarded.  Weighted coordinate-wise averaging renormalizes by the
        weighted update count, so partial cohorts never dilute the update.
        """
        plan = self.scenario.plan_round(self._select_clients(round_index), round_index)
        global_state = self._public_state()
        download_bytes = self._download_bytes()
        upload_bytes = self._upload_bytes()

        weighted_sum = {n: np.zeros_like(v) for n, v in global_state.items()}
        weighted_count = {n: np.zeros_like(v) for n, v in global_state.items()}
        losses: Dict[int, float] = {}
        failed: List[int] = []

        def train_group(users):
            group_losses, dsum, dcount = self.engine.train_fedavg_clients(
                self, list(users), round_index, global_state
            )
            failed.extend(self.engine.pop_failed())
            losses.update(group_losses)
            return dsum, dcount

        if plan.on_time:
            dsum, dcount = train_group(plan.on_time)
            for name in weighted_sum:
                weighted_sum[name] += dsum[name]
                weighted_count[name] += dcount[name]
        for staleness, users in plan.stale_groups():
            dsum, dcount = train_group(users)
            survivors = [user for user in users if user in losses]
            if survivors:
                self._stale_buffer.append({
                    "due_round": round_index + staleness,
                    "origin_round": round_index,
                    "staleness": staleness,
                    "users": survivors,
                    "delta_sum": self._encode_buffered(dsum),
                    "update_count": self._encode_buffered(dcount),
                })
        if plan.lost:
            train_group(plan.lost)
        touched = self.engine.pop_touched()

        # Fold in buffered payloads that are due this round, FIFO.  Sparse
        # runs buffer rows-touched payloads; folding them adds, at the
        # encoded rows, the same weighted values the dense fold adds — the
        # skipped rows would have contributed exactly ``weight * 0.0``.
        applied = 0
        pending_buffer = []
        for entry in self._stale_buffer:
            if int(entry["due_round"]) > round_index:
                pending_buffer.append(entry)
                continue
            weight = self.scenario.staleness_weight(int(entry["staleness"]))
            for name in weighted_sum:
                dsum_value = entry["delta_sum"][name]
                dcount_value = entry["update_count"][name]
                if isinstance(dsum_value, SparseDelta):
                    dsum_value.add_into(weighted_sum[name], weight=weight)
                else:
                    weighted_sum[name] += weight * dsum_value
                if isinstance(dcount_value, SparseDelta):
                    dcount_value.add_into(weighted_count[name], weight=weight)
                else:
                    weighted_count[name] += weight * dcount_value
            applied += len(entry["users"])
        self._stale_buffer = pending_buffer

        failed_set = set(failed)
        uploaded = ({user for user in plan.on_time} | set(plan.stale)) - failed_set
        for user in plan.selected:
            if user in plan.dropped:
                continue
            self.ledger.record(round_index, user, "download", download_bytes,
                               description=f"{self.name} public parameters")
            if user not in uploaded:
                continue
            if user in touched:
                self.ledger.record(round_index, user, "upload",
                                   self._upload_bytes_sparse(touched[user]),
                                   description=f"{self.name} sparse parameter update")
            else:
                self.ledger.record(round_index, user, "upload", upload_bytes,
                                   description=f"{self.name} public parameter update")

        new_state = {}
        for name, base in global_state.items():
            count = np.where(weighted_count[name] > 0.0, weighted_count[name], 1.0)
            new_state[name] = base + weighted_sum[name] / count
        self._load_public_state(new_state)
        self.rounds_completed += 1

        client_losses = [losses[user] for user in plan.trained if user in losses]
        participation = RoundParticipation(
            selected=len(plan.selected),
            completed=len([u for u in plan.on_time if u not in failed_set]),
            dropped=len(plan.dropped) + len(plan.lost) + len(failed),
            straggled=len(plan.stale) + len(plan.lost),
            stale_applied=applied,
        )
        return {
            "num_clients": len(plan.selected),
            "client_loss": float(np.mean(client_losses)) if client_losses else 0.0,
            **participation.as_logs(),
        }

    def fit(
        self,
        rounds: Optional[int] = None,
        callbacks: Optional[Sequence["Callback"]] = None,
    ) -> "ParameterTransmissionFedRec":
        """Run the configured number of federated rounds.

        ``callbacks`` receive the shared training hooks and may stop the
        run early (see :mod:`repro.experiments.callbacks`).
        """
        from repro.experiments.callbacks import CallbackList
        from repro.tensor.backend import use_backend

        hooks = CallbackList(callbacks)
        total = rounds if rounds is not None else self.config.rounds
        start = self.rounds_completed
        hooks.on_fit_start(self)
        with use_backend(self.config.backend):
            for round_index in range(start, start + total):
                hooks.on_round_start(self, round_index)
                logs = self.run_round(round_index)
                hooks.on_round_end(self, round_index, logs)
                if hooks.should_stop:
                    break
        hooks.on_fit_end(self)
        return self

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Global model (public + private rows), ledger and round counter.

        The per-client local optimizer is SGD built fresh every round, so
        the model tables and the round counter are the whole training
        state of a FedAvg-style baseline.  Async-scenario runs additionally
        carry the buffered stale payloads, so a resumed run folds them into
        exactly the rounds an uninterrupted run would have.
        """
        return {
            "rounds_completed": int(self.rounds_completed),
            "model": self.model.state_dict(),
            "ledger": self.ledger.state_dict(),
            "stale_buffer": [
                {
                    "due_round": int(entry["due_round"]),
                    "origin_round": int(entry["origin_round"]),
                    "staleness": int(entry["staleness"]),
                    "users": [int(user) for user in entry["users"]],
                    "delta_sum": {
                        name: value.state_dict() if isinstance(value, SparseDelta)
                        else value
                        for name, value in entry["delta_sum"].items()
                    },
                    "update_count": {
                        name: value.state_dict() if isinstance(value, SparseDelta)
                        else value
                        for name, value in entry["update_count"].items()
                    },
                }
                for entry in self._stale_buffer
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot; the next round continues
        bit-identically to a run that was never interrupted."""
        self.model.load_state_dict(state["model"])
        self.ledger.load_state_dict(state["ledger"])
        self.rounds_completed = int(state["rounds_completed"])
        self._stale_buffer = [
            {
                "due_round": int(entry["due_round"]),
                "origin_round": int(entry["origin_round"]),
                "staleness": int(entry["staleness"]),
                "users": [int(user) for user in entry["users"]],
                "delta_sum": {
                    name: SparseDelta.from_state_dict(value)
                    if SparseDelta.is_state_dict(value) else np.asarray(value)
                    for name, value in entry["delta_sum"].items()
                },
                "update_count": {
                    name: SparseDelta.from_state_dict(value)
                    if SparseDelta.is_state_dict(value) else np.asarray(value)
                    for name, value in entry["update_count"].items()
                },
            }
            for entry in state.get("stale_buffer", [])
        ]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Rank with the global public + per-user private parameters.

        ``batch_size`` chooses the evaluator's execution path (chunked
        cohort scoring by default, the per-user reference loop with
        ``None``); both return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(self.model, max_users=max_users, batch_size=batch_size)

    def average_client_round_kilobytes(self) -> float:
        """Average per-client per-round communication in KB (Table IV)."""
        return self.ledger.average_client_round_kilobytes()

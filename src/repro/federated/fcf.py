"""Federated Collaborative Filtering (FCF, Ammad-ud-din et al. 2019).

The first FedRec: a matrix-factorization model where user embeddings stay
on device (private) and the item-embedding table is the public parameter
set exchanged with the server every round.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.data.dataset import InteractionDataset
from repro.federated.base import FederatedConfig, ParameterTransmissionFedRec
from repro.federated.communication import dense_parameter_bytes
from repro.models.mf import MatrixFactorization
from repro.utils.rng import RngFactory


class FCF(ParameterTransmissionFedRec):
    """FedAvg over the item embeddings of a matrix-factorization model."""

    name = "FCF"

    def __init__(self, dataset: InteractionDataset, config: Optional[FederatedConfig] = None):
        super().__init__(dataset, config)

    def _build_global_model(self) -> MatrixFactorization:
        # The original FCF optimizes a plain dot-product factorization, so
        # no bias terms are used (they would also leak global popularity to
        # every client for free).
        rng = RngFactory(self.config.seed).spawn("fcf-model")
        return MatrixFactorization(
            self.dataset.num_users,
            self.dataset.num_items,
            embedding_dim=self.config.embedding_dim,
            rng=rng,
            use_bias=False,
        )

    def _public_parameter_names(self) -> Sequence[str]:
        return ["item_embedding.weight"]

    def _item_row_parameter_names(self) -> Sequence[str]:
        # Sparse payloads ship only the item rows a client interacted with.
        return ["item_embedding.weight"]

    def _public_value_count(self) -> int:
        model: MatrixFactorization = self.model
        return model.item_embedding.weight.size

    def _download_bytes(self) -> int:
        return dense_parameter_bytes(self._public_value_count())

    def _upload_bytes(self) -> int:
        return dense_parameter_bytes(self._public_value_count())

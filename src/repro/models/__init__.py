"""Recommendation models used by the paper.

Three base recommenders (Section III-A):

* :class:`NeuMF` — neural matrix factorization (the "simple, public"
  client-side model),
* :class:`NGCF` — neural graph collaborative filtering,
* :class:`LightGCN` — simplified graph convolution,

plus :class:`MatrixFactorization`, the classic dot-product model used by
the parameter-transmission federated baselines (FCF, FedMF), and
:class:`PopularityRecommender` as a sanity-check baseline.
"""

from repro.models.base import Recommender
from repro.models.mf import MatrixFactorization
from repro.models.neumf import NeuMF
from repro.models.graph import build_normalized_adjacency, pairs_from_scores
from repro.models.ngcf import NGCF
from repro.models.lightgcn import LightGCN
from repro.models.popularity import PopularityRecommender
from repro.models.factory import create_model, MODEL_REGISTRY

__all__ = [
    "Recommender",
    "MatrixFactorization",
    "NeuMF",
    "NGCF",
    "LightGCN",
    "PopularityRecommender",
    "build_normalized_adjacency",
    "pairs_from_scores",
    "create_model",
    "MODEL_REGISTRY",
]

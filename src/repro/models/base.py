"""Common interface shared by every recommendation model."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import Module
from repro.tensor import Tensor, no_grad


class Recommender(Module):
    """Base class for user-item preference models.

    Every recommender maps a batch of ``(user, item)`` index pairs to a
    preference probability in ``[0, 1]`` via :meth:`score`.  Ranking
    helpers (:meth:`score_all_items`, :meth:`recommend`) are implemented on
    top and shared by the evaluation code, the centralized trainers and
    both federated frameworks.
    """

    def __init__(self, num_users: int, num_items: int):
        super().__init__()
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = int(num_users)
        self.num_items = int(num_items)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Return predicted preference probabilities for index pairs."""
        raise NotImplementedError

    def item_update_counts(self) -> np.ndarray:
        """Per-item count of gradient updates (confidence proxy).

        PTF-FedRec's server uses this to pick "reliable" items for the
        dispersed dataset; models without an item embedding return zeros.
        """
        return np.zeros(self.num_items, dtype=np.int64)

    # ------------------------------------------------------------------
    # Ranking helpers
    # ------------------------------------------------------------------
    def score_all_items(self, user: int) -> np.ndarray:
        """Score every item for one user without recording gradients."""
        items = np.arange(self.num_items, dtype=np.int64)
        users = np.full(self.num_items, int(user), dtype=np.int64)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.score(users, items).numpy()
        finally:
            self.train(was_training)
        return np.asarray(scores, dtype=np.float64).reshape(-1)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score arbitrary pairs without recording gradients."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.score(
                    np.asarray(users, dtype=np.int64), np.asarray(items, dtype=np.int64)
                ).numpy()
        finally:
            self.train(was_training)
        return np.asarray(scores, dtype=np.float64).reshape(-1)

    def recommend(
        self,
        user: int,
        k: int = 20,
        exclude_items: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the top-``k`` item ids for ``user``.

        ``exclude_items`` (typically the user's training positives) are
        removed from the candidate pool, matching the paper's evaluation
        over "all items that have not interacted with users".
        """
        scores = self.score_all_items(user)
        if exclude_items is not None and len(exclude_items):
            scores = scores.copy()
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf
        k = min(k, self.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return top[np.argsort(-scores[top])]

"""Common interface shared by every recommendation model."""

from __future__ import annotations

from typing import Optional, Sequence

# repro: disable=backend-purity -- top-k cuts over detached score rows; model math runs on Tensor
import numpy as np

from repro.nn import Module
from repro.tensor import Tensor, no_grad


def top_k_ranked(scores: np.ndarray, k: int):
    """Cut the top-``k`` of masked score rows; returns ``(ranked, valid)``.

    The one implementation of the exclusion contract shared by every
    top-k cut site (``Recommender.recommend``, the batched evaluator, the
    serving facade).  ``scores`` is 1-D ``(num_items,)`` or 2-D
    ``(users, num_items)`` with masked-out entries set to ``-inf``;
    ``ranked`` carries ``k`` best-first item ids per row (masked items
    sort to the tail) and ``valid`` counts each row's unmasked candidates,
    capped at ``k`` — every slot at or beyond ``valid`` is mask leakage
    the caller must truncate or ignore.
    """
    top = np.argpartition(-scores, kth=k - 1, axis=-1)[..., :k]
    order = np.argsort(-np.take_along_axis(scores, top, axis=-1), axis=-1)
    ranked = np.take_along_axis(top, order, axis=-1)
    valid = np.minimum(np.count_nonzero(scores != -np.inf, axis=-1), k)
    return ranked, valid


class Recommender(Module):
    """Base class for user-item preference models.

    Every recommender maps a batch of ``(user, item)`` index pairs to a
    preference probability in ``[0, 1]`` via :meth:`score`.  Ranking
    helpers (:meth:`score_all_items`, :meth:`recommend`) are implemented on
    top and shared by the evaluation code, the centralized trainers and
    both federated frameworks.
    """

    def __init__(self, num_users: int, num_items: int):
        super().__init__()
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = int(num_users)
        self.num_items = int(num_items)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Return predicted preference probabilities for index pairs."""
        raise NotImplementedError

    def item_update_counts(self) -> np.ndarray:
        """Per-item count of gradient updates (confidence proxy).

        PTF-FedRec's server uses this to pick "reliable" items for the
        dispersed dataset; models without an item embedding return zeros.
        """
        return np.zeros(self.num_items, dtype=np.int64)

    # ------------------------------------------------------------------
    # Ranking helpers
    # ------------------------------------------------------------------
    def score_all_items(self, user: int) -> np.ndarray:
        """Score every item for one user without recording gradients."""
        items = np.arange(self.num_items, dtype=np.int64)
        users = np.full(self.num_items, int(user), dtype=np.int64)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.score(users, items).numpy()
        finally:
            self.train(was_training)
        return np.asarray(scores, dtype=np.float64).reshape(-1)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score arbitrary pairs without recording gradients."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scores = self.score(
                    np.asarray(users, dtype=np.int64), np.asarray(items, dtype=np.int64)
                ).numpy()
        finally:
            self.train(was_training)
        return np.asarray(scores, dtype=np.float64).reshape(-1)

    def recommend(
        self,
        user: int,
        k: int = 20,
        exclude_items: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the top-``k`` item ids for ``user``.

        ``exclude_items`` (typically the user's training positives) are
        removed from the candidate pool, matching the paper's evaluation
        over "all items that have not interacted with users".  When fewer
        than ``k`` candidates survive the exclusion, the returned list is
        truncated to the valid candidates — excluded items are never
        recommended back.
        """
        scores = self.score_all_items(user)
        if exclude_items is not None and len(exclude_items):
            scores = scores.copy()
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf
        k = min(k, self.num_items)
        ranked, valid = top_k_ranked(scores, k)
        return ranked[:valid] if valid < k else ranked

"""Bipartite interaction-graph utilities for the graph recommenders.

NGCF and LightGCN propagate embeddings over the symmetrically normalized
adjacency of the user-item bipartite graph,

    A_hat = D^{-1/2} A D^{-1/2},   A = [[0, R], [R^T, 0]],

where ``R`` is the binary interaction matrix.  In centralized training the
graph comes from the training interactions; in PTF-FedRec the server never
sees raw interactions, so it reconstructs a surrogate graph from the
high-score pairs in the prediction datasets clients upload
(:func:`pairs_from_scores`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

# repro: disable=backend-purity -- sparse adjacency construction over integer interaction indices
import numpy as np
import scipy.sparse as sp

from repro.tensor.backend import active_backend


def build_normalized_adjacency(
    num_users: int,
    num_items: int,
    pairs: Sequence[Tuple[int, int]],
    add_self_loops: bool = False,
    dtype: Optional[np.dtype] = None,
) -> sp.csr_matrix:
    """Build the symmetric normalized adjacency over users and items.

    Nodes ``0 .. num_users-1`` are users and ``num_users .. num_users +
    num_items - 1`` are items.  Isolated nodes receive a zero row, which
    simply leaves their embedding unchanged during propagation.

    Normalization is computed in float64 for stability, then the matrix is
    cast to ``dtype`` (default: the active tensor backend's dtype) so a
    float32 model's ``sparse_matmul`` stays float32 end to end instead of
    silently upcasting every propagation.
    """
    if dtype is None:
        dtype = active_backend().dtype
    size = num_users + num_items
    pairs = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    if pairs.size == 0:
        adjacency = sp.csr_matrix((size, size))
    else:
        users = pairs[:, 0]
        items = pairs[:, 1] + num_users
        rows = np.concatenate([users, items])
        cols = np.concatenate([items, users])
        values = np.ones(len(rows))
        adjacency = sp.csr_matrix((values, (rows, cols)), shape=(size, size))
        # Collapse duplicate edges to weight one.
        adjacency.data = np.ones_like(adjacency.data)
    if add_self_loops:
        adjacency = adjacency + sp.eye(size, format="csr")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inverse_sqrt = np.power(degrees, -0.5)
    inverse_sqrt[~np.isfinite(inverse_sqrt)] = 0.0
    normalizer = sp.diags(inverse_sqrt)
    normalized = (normalizer @ adjacency @ normalizer).tocsr()
    if normalized.dtype != dtype:
        normalized = normalized.astype(dtype)
    return normalized


def pairs_from_scores(
    users: np.ndarray,
    items: np.ndarray,
    scores: np.ndarray,
    threshold: float = 0.5,
) -> np.ndarray:
    """Select ``(user, item)`` pairs whose score passes ``threshold``.

    The PTF-FedRec server calls this on the pooled uploaded predictions to
    build the surrogate interaction graph its NGCF/LightGCN model
    propagates over — the server never observes true interactions.
    """
    users = np.asarray(users, dtype=np.int64).reshape(-1)
    items = np.asarray(items, dtype=np.int64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if not (len(users) == len(items) == len(scores)):
        raise ValueError("users, items and scores must have equal length")
    mask = scores >= threshold
    selected = np.stack([users[mask], items[mask]], axis=1)
    if selected.size == 0:
        return selected.reshape(0, 2)
    return np.unique(selected, axis=0)

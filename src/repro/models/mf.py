"""Classic matrix factorization with a sigmoid link.

This is the model the parameter-transmission federated baselines (FCF,
FedMF) train: user and item embeddings whose dot product, squashed through
a sigmoid, predicts the interaction probability.
"""

from __future__ import annotations

from typing import Optional

# repro: disable=backend-purity -- integer id bookkeeping at the model boundary; float math runs on Tensor
import numpy as np

from repro.models.base import Recommender
from repro.nn import Embedding
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.utils.rng import seeded_rng


class MatrixFactorization(Recommender):
    """Dot-product matrix factorization with per-user/item bias terms."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        rng: Optional[np.random.Generator] = None,
        use_bias: bool = True,
        embedding_std: float = 0.1,
    ):
        super().__init__(num_users, num_items)
        rng = rng if rng is not None else seeded_rng()
        self.embedding_dim = embedding_dim
        # Plain dot-product MF needs a larger initialization scale than the
        # deep models: with tiny embeddings the logits (and therefore the
        # gradients) start near zero and federated training stalls.
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=rng, std=embedding_std)
        self.use_bias = use_bias
        if use_bias:
            self.user_bias = Parameter(np.zeros(num_users), name="user_bias")
            self.item_bias = Parameter(np.zeros(num_items), name="item_bias")

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        user_vectors = self.user_embedding(users)
        item_vectors = self.item_embedding(items)
        logits = (user_vectors * item_vectors).sum(axis=1)
        if self.use_bias:
            logits = logits + self.user_bias.index_rows(users) + self.item_bias.index_rows(items)
        return logits.sigmoid()

    def item_update_counts(self) -> np.ndarray:
        return self.item_embedding.update_counts.copy()

    def public_parameter_count(self) -> int:
        """Number of scalar values a parameter-transmission FedRec would ship.

        Public parameters are the item embedding table and item bias; the
        user embedding/bias stay on the client (Section II-B of the paper).
        """
        count = self.item_embedding.weight.size
        if self.use_bias:
            count += self.item_bias.size
        return count

"""Model factory used by the experiment harness.

The paper's experiments are parameterized by model *names* ("NeuMF",
"NGCF", "LightGCN"), e.g. the client/server combination matrix in
Table VIII; the factory turns those names into configured instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

# repro: disable=backend-purity -- served-model reconstruction copies state_dict ndarrays verbatim
import numpy as np

from repro.models.base import Recommender
from repro.models.lightgcn import LightGCN
from repro.models.mf import MatrixFactorization
from repro.models.neumf import NeuMF
from repro.models.ngcf import NGCF

MODEL_REGISTRY: Dict[str, Callable[..., Recommender]] = {
    "neumf": NeuMF,
    "ngcf": NGCF,
    "lightgcn": LightGCN,
    "mf": MatrixFactorization,
}


def create_model(
    name: str,
    num_users: int,
    num_items: int,
    embedding_dim: int = 32,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> Recommender:
    """Instantiate a recommender by case-insensitive name.

    Raises ``KeyError`` listing the available names when ``name`` is
    unknown, so experiment configs fail fast with a helpful message.
    """
    key = name.strip().lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    factory = MODEL_REGISTRY[key]
    return factory(num_users, num_items, embedding_dim=embedding_dim, rng=rng, **kwargs)

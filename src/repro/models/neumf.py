"""Neural Matrix Factorization (NeuMF, He et al. 2017).

NeuMF is the paper's "simple and publicly available" client-side model and
also one of the candidate server models.  It fuses a generalized matrix
factorization (GMF) branch with an MLP branch over the concatenated user
and item embeddings (Eq. 1 of the paper); the paper's configuration uses
32-dimensional embeddings and a 64→32→16 MLP tower.
"""

from __future__ import annotations

from typing import Optional, Sequence

# repro: disable=backend-purity -- integer id bookkeeping at the model boundary; float math runs on Tensor
import numpy as np

from repro.models.base import Recommender
from repro.nn import Embedding, Linear
from repro.tensor import Tensor
from repro.tensor.functional import concat
from repro.utils.rng import seeded_rng


class NeuMF(Recommender):
    """GMF + MLP neural collaborative filtering model."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        mlp_layers: Sequence[int] = (64, 32, 16),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(num_users, num_items)
        rng = rng if rng is not None else seeded_rng()
        self.embedding_dim = embedding_dim
        self.mlp_layer_sizes = tuple(mlp_layers)

        # Separate embedding tables for the GMF and MLP branches, as in the
        # original NeuMF architecture.
        self.user_embedding_gmf = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding_gmf = Embedding(num_items, embedding_dim, rng=rng)
        self.user_embedding_mlp = Embedding(num_users, embedding_dim, rng=rng)
        self.item_embedding_mlp = Embedding(num_items, embedding_dim, rng=rng)

        input_dim = 2 * embedding_dim
        self._mlp_layers = []
        for index, width in enumerate(self.mlp_layer_sizes):
            layer = Linear(input_dim, width, rng=rng)
            setattr(self, f"mlp_{index}", layer)
            self._mlp_layers.append(layer)
            input_dim = width

        # Final prediction layer over [GMF vector, MLP output] (the "h"
        # vector in Eq. 1).
        self.prediction = Linear(embedding_dim + input_dim, 1, rng=rng)

    def forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return self.score(users, items)

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)

        gmf_user = self.user_embedding_gmf(users)
        gmf_item = self.item_embedding_gmf(items)
        gmf_vector = gmf_user * gmf_item

        mlp_user = self.user_embedding_mlp(users)
        mlp_item = self.item_embedding_mlp(items)
        hidden = concat([mlp_user, mlp_item], axis=1)
        for layer in self._mlp_layers:
            hidden = layer(hidden).relu()

        fused = concat([gmf_vector, hidden], axis=1)
        logits = self.prediction(fused).reshape(-1)
        return logits.sigmoid()

    def item_update_counts(self) -> np.ndarray:
        return (
            self.item_embedding_gmf.update_counts + self.item_embedding_mlp.update_counts
        ).copy()

    def public_parameter_count(self) -> int:
        """Scalar count of the parameters a traditional FedRec would share.

        Everything except the user embeddings is public: both item tables,
        the MLP tower and the prediction head.
        """
        public = (
            self.item_embedding_gmf.weight.size
            + self.item_embedding_mlp.weight.size
            + self.prediction.weight.size
            + self.prediction.bias.size
        )
        for layer in self._mlp_layers:
            public += layer.weight.size + layer.bias.size
        return public

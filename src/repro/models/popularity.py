"""Non-personalized popularity baseline.

Not part of the paper's tables, but a standard sanity check: any trained
recommender in this repository should beat (or at least match) raw item
popularity, and the test suite uses it as a floor for the learned models.
"""

from __future__ import annotations

# repro: disable=backend-purity -- count-based cold-start scoring over int arrays; no dispatched math
import numpy as np

from repro.models.base import Recommender
from repro.tensor import Tensor


class PopularityRecommender(Recommender):
    """Scores every item by its (normalized) global interaction count."""

    def __init__(self, num_users: int, num_items: int):
        super().__init__(num_users, num_items)
        self._scores = np.zeros(num_items, dtype=np.float64)

    def fit(self, item_counts: np.ndarray) -> "PopularityRecommender":
        """Fit from per-item interaction counts (see ``InteractionDataset.item_popularity``)."""
        counts = np.asarray(item_counts, dtype=np.float64)
        if counts.shape != (self.num_items,):
            raise ValueError(
                f"expected counts of shape ({self.num_items},), got {counts.shape}"
            )
        peak = counts.max()
        self._scores = counts / peak if peak > 0 else counts
        return self

    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        items = np.asarray(items, dtype=np.int64)
        return Tensor(self._scores[items])

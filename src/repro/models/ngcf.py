"""Neural Graph Collaborative Filtering (NGCF, Wang et al. 2019).

NGCF propagates user/item embeddings over the normalized bipartite
adjacency with per-layer transformation weights and a bi-interaction term
(Eq. 2 of the paper); the final representation concatenates the outputs of
every propagation layer.  The paper uses it as the strongest server-side
model — PTF-FedRec(NGCF) is the best federated configuration in Table III.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

# repro: disable=backend-purity -- integer adjacency indexing; propagation math runs on Tensor
import numpy as np
import scipy.sparse as sp

from repro.models.base import Recommender
from repro.models.graph import build_normalized_adjacency
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.nn import init
from repro.tensor import Tensor
from repro.tensor.functional import concat
from repro.utils.rng import seeded_rng


class NGCF(Recommender):
    """Graph collaborative filtering with weighted propagation layers."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        embedding_dim: int = 32,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
        interaction_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        super().__init__(num_users, num_items)
        rng = rng if rng is not None else seeded_rng()
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers

        size = num_users + num_items
        self.node_embedding = Parameter(
            init.xavier_uniform((size, embedding_dim), rng), name="node_embedding"
        )
        self._graph_weights = []
        self._bi_weights = []
        for layer in range(num_layers):
            graph_weight = Linear(embedding_dim, embedding_dim, rng=rng)
            bi_weight = Linear(embedding_dim, embedding_dim, rng=rng)
            setattr(self, f"graph_weight_{layer}", graph_weight)
            setattr(self, f"bi_weight_{layer}", bi_weight)
            self._graph_weights.append(graph_weight)
            self._bi_weights.append(bi_weight)

        self._adjacency = build_normalized_adjacency(
            num_users, num_items, interaction_pairs if interaction_pairs is not None else [],
            dtype=self.node_embedding.data.dtype,
        )
        self.register_buffer("_item_update_counts", np.zeros(num_items, dtype=np.int64))
        self._cached_final: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def set_interaction_graph(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Replace the propagation graph (used by the PTF-FedRec server).

        The adjacency dtype follows the model's own parameters (not the
        ambient backend), so a float32 model propagates in float32 no
        matter which context rebuilds its graph.
        """
        self._adjacency = build_normalized_adjacency(
            self.num_users, self.num_items, pairs,
            dtype=self.node_embedding.data.dtype,
        )
        self._cached_final = None

    @property
    def adjacency(self) -> sp.csr_matrix:
        return self._adjacency

    def train(self, mode: bool = True) -> "NGCF":
        self._cached_final = None
        return super().train(mode)

    def load_state_dict(self, state) -> None:
        # New weights invalidate the eval-mode propagation cache even when
        # no mode flip follows (e.g. refreshing a serving-side model).
        super().load_state_dict(state)
        self._cached_final = None

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self) -> Tensor:
        """Return final node embeddings: the concatenation of all layers."""
        embeddings = self.node_embedding
        outputs = [embeddings]
        for graph_weight, bi_weight in zip(self._graph_weights, self._bi_weights):
            aggregated = embeddings.sparse_matmul(self._adjacency)
            messages = graph_weight(aggregated) + bi_weight(aggregated * embeddings)
            embeddings = messages.leaky_relu(0.2)
            outputs.append(embeddings)
        return concat(outputs, axis=1)

    def _final_embeddings(self) -> Tensor:
        if self.training:
            return self.propagate()
        if self._cached_final is None:
            self._cached_final = self.propagate().numpy()
        # _wrap: share the cache without a dtype renormalization (a plain
        # Tensor(...) would upcast a float32 cache outside use_backend).
        return Tensor._wrap(self._cached_final)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if self.training:
            np.add.at(self._item_update_counts, items, 1)
        final = self._final_embeddings()
        user_vectors = final.index_rows(users)
        item_vectors = final.index_rows(items + self.num_users)
        logits = (user_vectors * item_vectors).sum(axis=1)
        return logits.sigmoid()

    def item_update_counts(self) -> np.ndarray:
        return self._item_update_counts.copy()

    def public_parameter_count(self) -> int:
        """Scalar count of the parameters a traditional FedRec would share."""
        public = self.node_embedding.size - self.num_users * self.embedding_dim
        for graph_weight, bi_weight in zip(self._graph_weights, self._bi_weights):
            public += graph_weight.weight.size + graph_weight.bias.size
            public += bi_weight.weight.size + bi_weight.bias.size
        return public

"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is fully reproducible from a seed — important because the
federated experiments compare methods from identical starting points.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization (used by NGCF/LightGCN)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization (for ReLU MLPs such as NeuMF's tower)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance normal initialization (classic for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)


def _fans(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out

"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is fully reproducible from a seed — important because the
federated experiments compare methods from identical starting points.

Random draws always happen in float64 (the generator's native precision,
and the only way two backends can start from the *same* random values);
the result is then cast to the active backend's dtype — under the default
``"numpy"`` backend the cast is the identity, so reference initialization
is bit-identical to the pre-backend code.
"""

from __future__ import annotations

# repro: disable=backend-purity -- initializers draw raw ndarrays that Tensor wraps in the active backend dtype
import numpy as np

from repro.tensor.backend import active_backend


def _cast(values: np.ndarray) -> np.ndarray:
    """Cast freshly drawn float64 values to the active backend dtype."""
    return active_backend().asarray(values)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization (used by NGCF/LightGCN)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-limit, limit, size=shape))


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape))


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization (for ReLU MLPs such as NeuMF's tower)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-limit, limit, size=shape))


def normal(shape, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance normal initialization (classic for embeddings)."""
    return _cast(rng.normal(0.0, std, size=shape))


def zeros(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=active_backend().dtype)


def _fans(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out

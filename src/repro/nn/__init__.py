"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides the layer/module abstraction used by every recommendation model
in the repository: parameter registration, ``state_dict`` save/load,
common layers (``Linear``, ``Embedding``, ``Sequential``, ``Dropout``) and
weight initializers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Linear,
    Embedding,
    Sequential,
    Dropout,
    ReLU,
    Sigmoid,
    Tanh,
    LeakyReLU,
    Identity,
)
from repro.nn import init
from repro.nn import losses

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Identity",
    "init",
    "losses",
]

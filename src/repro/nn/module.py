"""Module / Parameter abstraction for the NumPy autograd substrate."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    Identical to :class:`Tensor` but always created with
    ``requires_grad=True``; modules register instances automatically when
    they are assigned as attributes.
    """

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for
    :meth:`parameters`, :meth:`state_dict` and :meth:`zero_grad`.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters recursively."""
        for _, parameter in self.named_parameters():
            yield parameter

    def num_parameters(self) -> int:
        """Total number of scalar trainable values."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval switches
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. ``Dropout``)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by qualified name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

"""Module / Parameter abstraction for the NumPy autograd substrate."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

# repro: disable=backend-purity -- parameter/buffer registries hold raw ndarrays; math dispatches through Tensor ops
import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    Identical to :class:`Tensor` but always created with
    ``requires_grad=True``; modules register instances automatically when
    they are assigned as attributes.
    """

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for
    :meth:`parameters`, :meth:`state_dict` and :meth:`zero_grad`.
    Non-trainable arrays that are part of the model's state (update
    counters, running statistics) are declared with
    :meth:`register_buffer` so :meth:`state_dict` round-trips them too.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        elif name in self.__dict__.get("_buffers", ()) and isinstance(value, np.ndarray):
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Register a non-trainable array as part of the module's state.

        The buffer is also exposed as a plain attribute; in-place updates
        (``np.add.at``, ``+=``) and whole-array reassignment both keep the
        registry in sync.
        """
        value = np.asarray(value)
        self.__dict__.setdefault("_buffers", OrderedDict())[name] = value
        object.__setattr__(self, name, value)
        return value

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters recursively."""
        for _, parameter in self.named_parameters():
            yield parameter

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs recursively."""
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar trainable values."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval switches
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. ``Dropout``)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter *and buffer* arrays, keyed by qualified name."""
        state = {name: parameter.data.copy() for name, parameter in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter and buffer values produced by :meth:`state_dict`.

        The keys must match exactly (every parameter and registered buffer,
        nothing else).  Buffers are restored in place so any alias held by
        running code keeps observing the module's state.
        """
        own_parameters = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        own = set(own_parameters) | set(own_buffers)
        missing = own - set(state)
        unexpected = set(state) - own
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own_parameters.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()
        for name, buffer in own_buffers.items():
            value = np.asarray(state[name], dtype=buffer.dtype)
            if value.shape != buffer.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {buffer.shape}, got {value.shape}"
                )
            buffer[...] = value

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

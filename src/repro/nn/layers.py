"""Standard layers used by the recommendation models."""

from __future__ import annotations

from typing import Optional, Sequence

# repro: disable=backend-purity -- init draws and dropout masks are ndarray plumbing; layer math runs on Tensor
import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import Tensor
from repro.utils.rng import seeded_rng


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else seeded_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng),
                                name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs.matmul(self.weight.T)
        if self.bias is not None:
            output = output + self.bias
        return output

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Tracks how many times each row has been part of a gradient update via
    :attr:`update_counts`; PTF-FedRec's confidence-based dispersal
    (Section III-B3 of the paper) uses this counter to decide which item
    predictions are reliable enough to share with clients.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.01,
    ):
        super().__init__()
        rng = rng if rng is not None else seeded_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std),
                                name="weight")
        self.register_buffer("update_counts", np.zeros(num_embeddings, dtype=np.int64))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if self.training:
            np.add.at(self.update_counts, indices, 1)
        return self.weight.index_rows(indices)

    def all_rows(self) -> Tensor:
        """Return the full table as a tensor (used by graph propagation)."""
        return self.weight

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else seeded_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * Tensor(mask)


class ReLU(Module):
    """Elementwise ReLU activation module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sigmoid(Module):
    """Elementwise sigmoid activation module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Tanh(Module):
    """Elementwise tanh activation module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class LeakyReLU(Module):
    """Elementwise LeakyReLU activation module."""

    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.leaky_relu(self.negative_slope)


class Identity(Module):
    """Pass-through module (useful as a default component)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._ordered:
            output = module(output)
        return output

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self):
        return iter(self._ordered)

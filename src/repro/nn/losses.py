"""Loss functions for recommendation training.

Re-exports the numerically stable implementations from
:mod:`repro.tensor.functional` under the conventional ``nn.losses``
namespace, plus a pointwise loss object used by the trainers.
"""

from __future__ import annotations

from typing import Iterable, Union

# repro: disable=backend-purity -- dtype-aware clipping bounds only; loss math runs on Tensor ops
import numpy as np

from repro.tensor import Tensor
from repro.tensor.functional import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    bpr_loss,
    l2_regularization,
    mse_loss,
)

__all__ = [
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "bpr_loss",
    "l2_regularization",
    "mse_loss",
    "PointwiseBCELoss",
]


class PointwiseBCELoss:
    """Binary cross-entropy with optional L2 weight decay on given tensors.

    This is the loss used by both sides of PTF-FedRec: clients optimize it
    over ``D_i ∪ D̃_i`` (Eq. 3) and the server over the uploaded prediction
    sets ``D̂_i`` (Eq. 5).  Targets may be hard {0, 1} labels or soft
    prediction scores in ``[0, 1]``.
    """

    def __init__(self, l2_weight: float = 0.0):
        self.l2_weight = l2_weight

    def __call__(
        self,
        predictions: Tensor,
        targets: Union[Tensor, np.ndarray],
        regularized: Iterable[Tensor] = (),
    ) -> Tensor:
        loss = binary_cross_entropy(predictions, targets)
        if self.l2_weight > 0.0:
            loss = loss + l2_regularization(regularized, self.l2_weight)
        return loss

"""Full-ranking evaluation protocol.

Matches the paper's Section IV-B: for every user with held-out test items,
score *all* items the user has not interacted with in training, take the
top-K, and average Recall@K and NDCG@K over users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.metrics import hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k
from repro.models.base import Recommender


@dataclass(frozen=True)
class RankingResult:
    """Average ranking metrics over evaluated users."""

    recall: float
    ndcg: float
    precision: float
    hit_rate: float
    k: int
    num_users_evaluated: int

    def as_dict(self) -> Dict[str, float]:
        return {
            f"Recall@{self.k}": self.recall,
            f"NDCG@{self.k}": self.ndcg,
            f"Precision@{self.k}": self.precision,
            f"HitRate@{self.k}": self.hit_rate,
        }


class RankingEvaluator:
    """Evaluates a :class:`Recommender` on a dataset's test split."""

    def __init__(self, dataset: InteractionDataset, k: int = 20):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = k

    def evaluate(
        self,
        model: Recommender,
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
    ) -> RankingResult:
        """Average Recall/NDCG/Precision/HitRate at ``k`` over test users.

        ``max_users`` caps the number of evaluated users (deterministically,
        lowest ids first) so benchmark runs stay fast; ``None`` evaluates
        everyone with at least one test interaction.
        """
        candidates = list(users) if users is not None else self.dataset.users
        evaluated = 0
        recall_sum = 0.0
        ndcg_sum = 0.0
        precision_sum = 0.0
        hit_sum = 0.0
        for user in candidates:
            test_items = self.dataset.test_items(user)
            if test_items.size == 0:
                continue
            recommended = model.recommend(
                user, k=self.k, exclude_items=self.dataset.train_items(user)
            )
            recall_sum += recall_at_k(recommended, test_items, self.k)
            ndcg_sum += ndcg_at_k(recommended, test_items, self.k)
            precision_sum += precision_at_k(recommended, test_items, self.k)
            hit_sum += hit_rate_at_k(recommended, test_items, self.k)
            evaluated += 1
            if max_users is not None and evaluated >= max_users:
                break
        if evaluated == 0:
            return RankingResult(0.0, 0.0, 0.0, 0.0, self.k, 0)
        return RankingResult(
            recall=recall_sum / evaluated,
            ndcg=ndcg_sum / evaluated,
            precision=precision_sum / evaluated,
            hit_rate=hit_sum / evaluated,
            k=self.k,
            num_users_evaluated=evaluated,
        )

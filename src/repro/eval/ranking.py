"""Full-ranking evaluation protocol.

Matches the paper's Section IV-B: for every user with held-out test items,
score *all* items the user has not interacted with in training, take the
top-K, and average Recall@K and NDCG@K over users.

:class:`RankingEvaluator` owns all scoring pipelines.  The **batched**
path (:meth:`~RankingEvaluator.evaluate` with its default ``batch_size``)
scores whole cohorts of users at once through
:func:`repro.eval.scoring.batch_scores`, masks every chunk's training
positives with one fancy-indexed assignment, cuts top-K with one
``argpartition`` per chunk and grades the ``(users, K)`` ranked matrix
with vectorized boolean relevance tables
(:func:`repro.eval.metrics.batch_metrics_at_k`).  The **per-user** path
(``batch_size=None``, and :meth:`~RankingEvaluator.evaluate_user_scores`
for callers that supply score vectors) is the reference implementation:
the batched path reproduces it *exactly* — same floats, same tie-breaks —
the way the execution engine's schedulers are bit-identical to the serial
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional

# repro: disable=backend-purity -- full-ranking protocol masks/cuts detached score matrices
import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.metrics import (
    batch_metrics_at_k,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.eval.scoring import DEFAULT_CHUNK_SIZE, batch_scores
from repro.models.base import Recommender, top_k_ranked


@dataclass(frozen=True)
class RankingResult:
    """Average ranking metrics over evaluated users."""

    recall: float
    ndcg: float
    precision: float
    hit_rate: float
    k: int
    num_users_evaluated: int

    def as_dict(self) -> Dict[str, float]:
        return {
            f"Recall@{self.k}": self.recall,
            f"NDCG@{self.k}": self.ndcg,
            f"Precision@{self.k}": self.precision,
            f"HitRate@{self.k}": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RankingResult":
        """Rebuild from ``{**as_dict(), "k": ..., "num_users_evaluated": ...}``
        (the shape :meth:`repro.experiments.RunResult.to_dict` stores)."""
        k = int(data["k"])
        return cls(
            recall=float(data[f"Recall@{k}"]),
            ndcg=float(data[f"NDCG@{k}"]),
            precision=float(data[f"Precision@{k}"]),
            hit_rate=float(data[f"HitRate@{k}"]),
            k=k,
            num_users_evaluated=int(data["num_users_evaluated"]),
        )


class _MetricAccumulator:
    """Running per-user metric sums, averaged into a RankingResult."""

    def __init__(self, k: int):
        self.k = k
        self.recall = 0.0
        self.ndcg = 0.0
        self.precision = 0.0
        self.hit = 0.0
        self.count = 0

    def add(self, result: RankingResult) -> None:
        self.add_values(result.recall, result.ndcg, result.precision, result.hit_rate)

    def add_values(self, recall, ndcg, precision, hit_rate) -> None:
        self.recall += recall
        self.ndcg += ndcg
        self.precision += precision
        self.hit += hit_rate
        self.count += 1

    def average(self) -> RankingResult:
        if self.count == 0:
            return RankingResult(0.0, 0.0, 0.0, 0.0, self.k, 0)
        return RankingResult(
            recall=float(self.recall / self.count),
            ndcg=float(self.ndcg / self.count),
            precision=float(self.precision / self.count),
            hit_rate=float(self.hit / self.count),
            k=self.k,
            num_users_evaluated=self.count,
        )


class RankingEvaluator:
    """Evaluates a :class:`Recommender` on a dataset's test split."""

    def __init__(self, dataset: InteractionDataset, k: int = 20):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = k

    # ------------------------------------------------------------------
    # Per-user scoring (the reference implementation)
    # ------------------------------------------------------------------
    def result_for_recommendations(
        self, recommended: np.ndarray, test_items: np.ndarray
    ) -> RankingResult:
        """Grade one user's ranked recommendation list."""
        k = min(self.k, self.dataset.num_items)
        return RankingResult(
            recall=recall_at_k(recommended, test_items, k),
            ndcg=ndcg_at_k(recommended, test_items, k),
            precision=precision_at_k(recommended, test_items, k),
            hit_rate=hit_rate_at_k(recommended, test_items, k),
            k=k,
            num_users_evaluated=1,
        )

    def evaluate_user_scores(self, user: int, scores: np.ndarray) -> RankingResult:
        """Grade one user given that user's full item-score vector.

        Training positives are masked out before the top-K cut, matching
        the full-ranking protocol; the caller supplies the scores, so this
        works for models that index the user differently (e.g. a client's
        on-device model, which always scores as user 0).  Only valid
        candidates (items that survive the mask) are ever recommended: when
        fewer than K candidates remain, the graded list is that short.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (self.dataset.num_items,):
            raise ValueError(
                f"scores must have shape ({self.dataset.num_items},), got {scores.shape}"
            )
        train_items = self.dataset.train_items(user)
        if train_items.size:
            scores = scores.copy()
            scores[train_items] = -np.inf
        k = min(self.k, self.dataset.num_items)
        recommended, valid = top_k_ranked(scores, k)
        if valid < k:
            recommended = recommended[:valid]
        return self.result_for_recommendations(recommended, self.dataset.test_items(user))

    # ------------------------------------------------------------------
    # Aggregate evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: Recommender,
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Average Recall/NDCG/Precision/HitRate at ``k`` over test users.

        ``max_users`` caps the number of evaluated users (deterministically,
        lowest ids first) so benchmark runs stay fast; ``None`` evaluates
        everyone with at least one test interaction.

        ``batch_size`` selects the execution path: an integer (the default)
        scores users in memory-bounded chunks of that many through
        :func:`repro.eval.scoring.batch_scores` and ranks each chunk with
        one vectorized partition/sort; ``None`` runs the per-user reference
        loop (``model.recommend`` once per user).  Both paths return
        *equal* results — same floats, same tie-breaks — the batched one is
        just faster.
        """
        if batch_size is not None:
            selected = self._selected_users(users, max_users)
            # Hold the model in eval mode across the whole chunk stream so
            # user-independent work survives between chunks (the graph
            # models cache their propagation while in eval mode and
            # invalidate it on any mode flip).
            was_training = bool(getattr(model, "training", False))
            if was_training:
                model.eval()
            try:
                return self._evaluate_chunks(
                    lambda chunk: batch_scores(model, chunk, chunk_size=batch_size),
                    selected,
                    batch_size,
                    copy_scores=False,  # batch_scores allocates fresh rows
                )
            finally:
                if was_training:
                    model.train(True)
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(users):
            recommended = model.recommend(
                user, k=self.k, exclude_items=self.dataset.train_items(user)
            )
            accumulator.add(
                self.result_for_recommendations(recommended, self.dataset.test_items(user))
            )
            if max_users is not None and accumulator.count >= max_users:
                break
        return accumulator.average()

    def evaluate_recommendation_lists(
        self,
        recommendations: Mapping[int, np.ndarray],
    ) -> RankingResult:
        """Average metrics over pre-computed per-user ranked lists.

        Grades recommendation lists produced *outside* the evaluator — the
        serving path: ``repro.serve.Recommender.recommend`` returns ranked
        ids per user, and this method scores them with the exact same
        :meth:`result_for_recommendations` pipeline the training-time
        evaluation uses, so offline and serving metrics are directly
        comparable.  Users without held-out test items are skipped, like
        everywhere else.
        """
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(recommendations):
            accumulator.add(
                self.result_for_recommendations(
                    np.asarray(recommendations[user], dtype=np.int64),
                    self.dataset.test_items(user),
                )
            )
        return accumulator.average()

    def evaluate_per_user_scores(
        self,
        score_fn: Callable[[int], np.ndarray],
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
    ) -> RankingResult:
        """Average metrics where ``score_fn(user)`` yields each user's scores.

        The per-user counterpart of :meth:`evaluate`: used when every user
        has their own model (PTF-FedRec clients) rather than one shared
        recommender.  :meth:`evaluate_score_matrices` is the batched
        (stacked-cohort) variant.
        """
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(users):
            accumulator.add(self.evaluate_user_scores(user, score_fn(user)))
            if max_users is not None and accumulator.count >= max_users:
                break
        return accumulator.average()

    def evaluate_score_matrices(
        self,
        score_matrix_fn: Callable[[np.ndarray], np.ndarray],
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
        batch_size: int = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Average metrics where ``score_matrix_fn(chunk)`` scores a cohort.

        The stacked-cohort variant of :meth:`evaluate_per_user_scores`:
        ``score_matrix_fn`` receives an ``(U,)`` array of user ids (at most
        ``batch_size`` of them) and returns their ``(U, num_items)`` score
        matrix — e.g. one stacked forward over a cohort of per-client
        models (:func:`repro.engine.batch.stack_models`).  Row ``i`` must
        hold the same scores ``score_fn(chunk[i])`` would have produced;
        the pipeline then equals the per-user variant exactly.
        """
        return self._evaluate_chunks(
            score_matrix_fn, self._selected_users(users, max_users), batch_size
        )

    # ------------------------------------------------------------------
    # The batched pipeline
    # ------------------------------------------------------------------
    def _evaluate_chunks(
        self,
        score_matrix_fn: Callable[[np.ndarray], np.ndarray],
        selected: List[int],
        batch_size: int,
        copy_scores: bool = True,
    ) -> RankingResult:
        """Score/mask/cut/grade ``selected`` users ``batch_size`` at a time.

        ``copy_scores`` defends callers whose ``score_matrix_fn`` returns a
        view into live model state — the ranking step masks the matrix in
        place; the internal ``batch_scores`` path always allocates fresh
        rows and skips the copy.
        """
        if batch_size is None or batch_size <= 0:
            raise ValueError(f"batch_size must be a positive int, got {batch_size}")
        accumulator = _MetricAccumulator(self.k)
        k = min(self.k, self.dataset.num_items)
        for start in range(0, len(selected), batch_size):
            chunk = np.asarray(selected[start:start + batch_size], dtype=np.int64)
            scores = score_matrix_fn(chunk)
            if copy_scores:
                scores = np.array(scores, dtype=np.float64, copy=True)
            else:
                scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (chunk.size, self.dataset.num_items):
                raise ValueError(
                    f"score matrix must have shape "
                    f"({chunk.size}, {self.dataset.num_items}), got {scores.shape}"
                )
            ranked, valid = self._rank_chunk(chunk, scores, k)
            relevance, counts = self._relevance_at(chunk, ranked, valid)
            metrics = batch_metrics_at_k(relevance, counts, k)
            for values in zip(*metrics):
                accumulator.add_values(*values)
        return accumulator.average()

    def _rank_chunk(self, users: np.ndarray, scores: np.ndarray, k: int):
        """Mask training positives and cut top-``k`` for one chunk in place.

        Returns ``(ranked, valid)``: the ``(U, k)`` ranked item ids (ties
        broken exactly as the per-user ``argpartition``/``argsort`` calls
        break them — each row is the same 1-D subproblem) and each user's
        number of valid candidates, i.e. items still scored above the
        ``-inf`` mask.  Masked items sort to the tail of every row, so
        positions at and beyond ``valid[i]`` are mask leakage and must be
        ignored (truncated) by the caller.
        """
        train_rows = [self.dataset.train_items(user) for user in users]
        sizes = np.fromiter(
            (row.size for row in train_rows), dtype=np.int64, count=len(train_rows)
        )
        if sizes.any():
            # One fancy-indexed assignment for the whole chunk instead of a
            # Python masking loop per user.
            scores[np.repeat(np.arange(users.size), sizes),
                   np.concatenate(train_rows)] = -np.inf
        return top_k_ranked(scores, k)

    def _relevance_at(self, users: np.ndarray, ranked: np.ndarray, valid: np.ndarray):
        """Boolean relevance of each ranked slot, plus test-item counts.

        Builds one chunk-sized boolean table over the item space (instead
        of per-user Python sets), gathers it at the ranked positions, and
        blanks the slots past each user's valid-candidate cutoff so masked
        leakage can never register as a hit.
        """
        table = np.zeros((users.size, self.dataset.num_items), dtype=bool)
        test_rows = [self.dataset.test_items(user) for user in users]
        counts = np.fromiter(
            (row.size for row in test_rows), dtype=np.int64, count=len(test_rows)
        )
        if counts.any():
            table[np.repeat(np.arange(users.size), counts),
                  np.concatenate(test_rows)] = True
        relevance = np.take_along_axis(table, ranked, axis=1)
        relevance[np.arange(ranked.shape[1])[None, :] >= valid[:, None]] = False
        return relevance, counts

    # ------------------------------------------------------------------
    # User selection
    # ------------------------------------------------------------------
    def _selected_users(
        self, users: Optional[Iterable[int]], max_users: Optional[int]
    ) -> List[int]:
        """Eligible users as a list, capped at ``max_users`` like the
        per-user loops cap their accumulators."""
        selected = list(self._test_users(users))
        if max_users is not None:
            selected = selected[:max_users]
        return selected

    def _test_users(self, users: Optional[Iterable[int]]) -> Iterable[int]:
        """Users with at least one held-out test interaction, in order."""
        candidates = list(users) if users is not None else self.dataset.users
        for user in candidates:
            if self.dataset.test_items(user).size:
                yield user

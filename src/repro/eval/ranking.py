"""Full-ranking evaluation protocol.

Matches the paper's Section IV-B: for every user with held-out test items,
score *all* items the user has not interacted with in training, take the
top-K, and average Recall@K and NDCG@K over users.

:class:`RankingEvaluator` owns all per-user scoring: global-model
evaluation (:meth:`~RankingEvaluator.evaluate`) and per-user score-vector
evaluation (:meth:`~RankingEvaluator.evaluate_user_scores`, used by
PTF-FedRec's per-client model analysis) share the same mask / top-K /
metric pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.metrics import hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k
from repro.models.base import Recommender


@dataclass(frozen=True)
class RankingResult:
    """Average ranking metrics over evaluated users."""

    recall: float
    ndcg: float
    precision: float
    hit_rate: float
    k: int
    num_users_evaluated: int

    def as_dict(self) -> Dict[str, float]:
        return {
            f"Recall@{self.k}": self.recall,
            f"NDCG@{self.k}": self.ndcg,
            f"Precision@{self.k}": self.precision,
            f"HitRate@{self.k}": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RankingResult":
        """Rebuild from ``{**as_dict(), "k": ..., "num_users_evaluated": ...}``
        (the shape :meth:`repro.experiments.RunResult.to_dict` stores)."""
        k = int(data["k"])
        return cls(
            recall=float(data[f"Recall@{k}"]),
            ndcg=float(data[f"NDCG@{k}"]),
            precision=float(data[f"Precision@{k}"]),
            hit_rate=float(data[f"HitRate@{k}"]),
            k=k,
            num_users_evaluated=int(data["num_users_evaluated"]),
        )


class _MetricAccumulator:
    """Running per-user metric sums, averaged into a RankingResult."""

    def __init__(self, k: int):
        self.k = k
        self.recall = 0.0
        self.ndcg = 0.0
        self.precision = 0.0
        self.hit = 0.0
        self.count = 0

    def add(self, result: RankingResult) -> None:
        self.recall += result.recall
        self.ndcg += result.ndcg
        self.precision += result.precision
        self.hit += result.hit_rate
        self.count += 1

    def average(self) -> RankingResult:
        if self.count == 0:
            return RankingResult(0.0, 0.0, 0.0, 0.0, self.k, 0)
        return RankingResult(
            recall=self.recall / self.count,
            ndcg=self.ndcg / self.count,
            precision=self.precision / self.count,
            hit_rate=self.hit / self.count,
            k=self.k,
            num_users_evaluated=self.count,
        )


class RankingEvaluator:
    """Evaluates a :class:`Recommender` on a dataset's test split."""

    def __init__(self, dataset: InteractionDataset, k: int = 20):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.dataset = dataset
        self.k = k

    # ------------------------------------------------------------------
    # Per-user scoring
    # ------------------------------------------------------------------
    def result_for_recommendations(
        self, recommended: np.ndarray, test_items: np.ndarray
    ) -> RankingResult:
        """Grade one user's ranked recommendation list."""
        k = min(self.k, self.dataset.num_items)
        return RankingResult(
            recall=recall_at_k(recommended, test_items, k),
            ndcg=ndcg_at_k(recommended, test_items, k),
            precision=precision_at_k(recommended, test_items, k),
            hit_rate=hit_rate_at_k(recommended, test_items, k),
            k=k,
            num_users_evaluated=1,
        )

    def evaluate_user_scores(self, user: int, scores: np.ndarray) -> RankingResult:
        """Grade one user given that user's full item-score vector.

        Training positives are masked out before the top-K cut, matching
        the full-ranking protocol; the caller supplies the scores, so this
        works for models that index the user differently (e.g. a client's
        on-device model, which always scores as user 0).
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (self.dataset.num_items,):
            raise ValueError(
                f"scores must have shape ({self.dataset.num_items},), got {scores.shape}"
            )
        train_items = self.dataset.train_items(user)
        if train_items.size:
            scores = scores.copy()
            scores[train_items] = -np.inf
        k = min(self.k, self.dataset.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        recommended = top[np.argsort(-scores[top])]
        return self.result_for_recommendations(recommended, self.dataset.test_items(user))

    # ------------------------------------------------------------------
    # Aggregate evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: Recommender,
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
    ) -> RankingResult:
        """Average Recall/NDCG/Precision/HitRate at ``k`` over test users.

        ``max_users`` caps the number of evaluated users (deterministically,
        lowest ids first) so benchmark runs stay fast; ``None`` evaluates
        everyone with at least one test interaction.
        """
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(users):
            recommended = model.recommend(
                user, k=self.k, exclude_items=self.dataset.train_items(user)
            )
            accumulator.add(
                self.result_for_recommendations(recommended, self.dataset.test_items(user))
            )
            if max_users is not None and accumulator.count >= max_users:
                break
        return accumulator.average()

    def evaluate_recommendation_lists(
        self,
        recommendations: Mapping[int, np.ndarray],
    ) -> RankingResult:
        """Average metrics over pre-computed per-user ranked lists.

        Grades recommendation lists produced *outside* the evaluator — the
        serving path: ``repro.serve.Recommender.recommend`` returns ranked
        ids per user, and this method scores them with the exact same
        :meth:`result_for_recommendations` pipeline the training-time
        evaluation uses, so offline and serving metrics are directly
        comparable.  Users without held-out test items are skipped, like
        everywhere else.
        """
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(recommendations):
            accumulator.add(
                self.result_for_recommendations(
                    np.asarray(recommendations[user], dtype=np.int64),
                    self.dataset.test_items(user),
                )
            )
        return accumulator.average()

    def evaluate_per_user_scores(
        self,
        score_fn: Callable[[int], np.ndarray],
        users: Optional[Iterable[int]] = None,
        max_users: Optional[int] = None,
    ) -> RankingResult:
        """Average metrics where ``score_fn(user)`` yields each user's scores.

        The per-user counterpart of :meth:`evaluate`: used when every user
        has their own model (PTF-FedRec clients) rather than one shared
        recommender.
        """
        accumulator = _MetricAccumulator(self.k)
        for user in self._test_users(users):
            accumulator.add(self.evaluate_user_scores(user, score_fn(user)))
            if max_users is not None and accumulator.count >= max_users:
                break
        return accumulator.average()

    def _test_users(self, users: Optional[Iterable[int]]) -> Iterable[int]:
        """Users with at least one held-out test interaction, in order."""
        candidates = list(users) if users is not None else self.dataset.users
        for user in candidates:
            if self.dataset.test_items(user).size:
                yield user

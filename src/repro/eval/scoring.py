"""Batched score-matrix computation shared by evaluation and serving.

The per-user callers (the full-ranking evaluator, serial ``recommend``
loops) ask a model for one user's scores at a time; at evaluation and
query time that Python loop is the bottleneck, not the math.
:func:`batch_scores` computes a whole cohort's ``(users, num_items)``
score matrix at once, the same way the execution engine stacks client
work (:mod:`repro.engine.batch`): architecture-specific closed forms where
the model is a (transformed) embedding dot product — one matmul per
cohort — and a flattened all-pairs tensor pass as the universal fallback.
Either way, scoring ``U`` users costs a handful of NumPy calls instead of
``U`` Python round-trips.

This module lives under :mod:`repro.eval` so the training-time evaluator
and the serving tier (:mod:`repro.serve`) share one cohort scorer without
the evaluator depending on the serving package; ``repro.serve.scoring``
re-exports it for compatibility.

The all-pairs fallback processes users in chunks of ``chunk_size`` so the
flattened ``(chunk x num_items)`` pair arrays — and the tensor graph's
intermediate activations (NeuMF's MLP tower) — stay memory-bounded no
matter how large the cohort is.  :data:`DEFAULT_CHUNK_SIZE` is the shared
knob: the batched evaluator chunks its user stream by the same value.
"""

from __future__ import annotations

from typing import Optional

# repro: disable=backend-purity -- cohort scorer returns detached ndarray score matrices by contract
import numpy as np

from repro.engine.batch import StackedMF, StackedMetaMF
from repro.models.base import Recommender
from repro.tensor import no_grad

#: Users per scoring chunk — shared by the all-pairs fallback below and by
#: :meth:`repro.eval.ranking.RankingEvaluator.evaluate`'s ``batch_size``.
DEFAULT_CHUNK_SIZE = 128


def _sigmoid(logits: np.ndarray) -> np.ndarray:
    """The substrate's sigmoid (same clipping as ``Tensor.sigmoid``)."""
    return 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))


def _relu(values: np.ndarray) -> np.ndarray:
    return values * (values > 0)


# ----------------------------------------------------------------------
# Closed-form cohort scorers (one matmul per cohort)
# ----------------------------------------------------------------------
def _mf_scores(model, users: np.ndarray):
    """Matrix factorization: ``sigmoid(U @ I.T (+ biases))``."""
    user_vectors = model.user_embedding.weight.data[users]
    item_table = model.item_embedding.weight.data
    logits = user_vectors @ item_table.T
    if model.use_bias:
        logits = logits + model.user_bias.data[users][:, None]
        logits = logits + model.item_bias.data[None, :]
    return _sigmoid(logits)


def _metamf_scores(model, users: np.ndarray):
    """MetaMF: run the meta network once over the full base table."""
    base = model.item_base_embedding.weight.data
    hidden = _relu(base @ model.meta_hidden.weight.data.T + model.meta_hidden.bias.data)
    item_vectors = hidden @ model.meta_output.weight.data.T + model.meta_output.bias.data + base
    user_vectors = model.user_embedding.weight.data[users]
    return _sigmoid(user_vectors @ item_vectors.T)


def _graph_scores(model, users: np.ndarray):
    """NGCF / LightGCN: propagate once, then one user-by-item matmul.

    Propagation is user-independent, so an already-eval-mode model serves
    every chunk of a cohort from its own propagation cache (the batched
    evaluator holds the model in eval mode across chunks for exactly this
    reason); mode flips — which invalidate that cache by the models' own
    contract — happen only when the model arrives in training mode.
    """
    was_training = model.training
    if was_training:
        model.eval()
    try:
        with no_grad():
            final_embeddings = getattr(model, "_final_embeddings", model.propagate)
            final = final_embeddings().numpy()
    finally:
        if was_training:
            model.train(True)
    user_vectors = final[users]
    item_vectors = final[model.num_users:]
    return _sigmoid(user_vectors @ item_vectors.T)


def _closed_form(model):
    """Pick the architecture's cohort scorer, or ``None`` for the fallback.

    Dispatch reuses the engine's own ``supports`` predicates
    (:mod:`repro.engine.batch`) so the two stacked paths recognize the
    same architectures; the graph models have no training-side stacking
    and are matched on their propagation interface.  Unrecognized
    architectures degrade gracefully to the flat all-pairs pass.
    """
    if StackedMF.supports(model):
        return _mf_scores
    if StackedMetaMF.supports(model):
        return _metamf_scores
    if hasattr(model, "propagate") and hasattr(model, "node_embedding"):
        return _graph_scores
    return None


def _flat_scores(model: Recommender, users: np.ndarray) -> np.ndarray:
    """All-pairs fallback for one cohort chunk: a single flat tensor pass."""
    items = np.arange(model.num_items, dtype=np.int64)
    flat_users = np.repeat(users, model.num_items)
    flat_items = np.tile(items, users.size)
    scores = model.score_pairs(flat_users, flat_items)
    return scores.reshape(users.size, model.num_items)


def batch_scores(
    model: Recommender,
    users: np.ndarray,
    chunk_size: Optional[int] = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Score every item for a cohort of users; returns ``(U, num_items)``.

    Models without a closed form (e.g. NeuMF's MLP tower) run flat
    all-pairs forwards — still vectorized tensor passes rather than ``U``
    per-user calls, but materialized ``chunk_size`` users at a time so the
    flattened pair arrays never hold more than ``chunk_size x num_items``
    rows (``None`` disables chunking).  The closed forms allocate only the
    returned matrix and ignore ``chunk_size``.
    """
    users = np.asarray(users, dtype=np.int64).reshape(-1)
    if users.size == 0:
        return np.empty((0, model.num_items), dtype=np.float64)
    if np.any((users < 0) | (users >= model.num_users)):
        raise IndexError("user id out of range for the served model")
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive or None, got {chunk_size}")
    scorer = _closed_form(model)
    if scorer is not None:
        return np.asarray(scorer(model, users), dtype=np.float64)
    if chunk_size is None or users.size <= chunk_size:
        return _flat_scores(model, users)
    scores = np.empty((users.size, model.num_items), dtype=np.float64)
    for start in range(0, users.size, chunk_size):
        chunk = users[start:start + chunk_size]
        scores[start:start + chunk.size] = _flat_scores(model, chunk)
    return scores

"""Top-K ranking metrics and binary classification metrics."""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np


def recall_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the relevant items that appear in the top-``k``.

    Returns 0 when the user has no relevant items (such users are skipped
    by the evaluator, but the metric itself stays well defined).
    """
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    hits = sum(1 for item in list(recommended)[:k] if int(item) in relevant_set)
    return hits / len(relevant_set)


def precision_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the top-``k`` recommendations that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(int(i) for i in relevant)
    hits = sum(1 for item in list(recommended)[:k] if int(item) in relevant_set)
    return hits / k


def hit_rate_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """1.0 when any relevant item appears in the top-``k``, else 0.0."""
    relevant_set = set(int(i) for i in relevant)
    return 1.0 if any(int(item) in relevant_set for item in list(recommended)[:k]) else 0.0


def ndcg_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance.

    The ideal DCG normalizes by ranking all relevant items first, so a
    perfect ranking scores 1.0 regardless of how many relevant items the
    user has.
    """
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    top = list(recommended)[:k]
    dcg = 0.0
    for position, item in enumerate(top):
        if int(item) in relevant_set:
            dcg += 1.0 / np.log2(position + 2)
    ideal_hits = min(len(relevant_set), k)
    ideal = sum(1.0 / np.log2(position + 2) for position in range(ideal_hits))
    return dcg / ideal if ideal > 0 else 0.0


def f1_score(predicted: Iterable[int], actual: Iterable[int]) -> float:
    """F1 between two item sets (used to grade the Top Guess Attack)."""
    predicted_set: Set[int] = set(int(i) for i in predicted)
    actual_set: Set[int] = set(int(i) for i in actual)
    if not predicted_set or not actual_set:
        return 0.0
    true_positives = len(predicted_set & actual_set)
    if true_positives == 0:
        return 0.0
    precision = true_positives / len(predicted_set)
    recall = true_positives / len(actual_set)
    return 2.0 * precision * recall / (precision + recall)

"""Top-K ranking metrics and binary classification metrics."""

from __future__ import annotations

from typing import Iterable, Sequence, Set

# repro: disable=backend-purity -- metrics grade detached score matrices; backend dtype fixed upstream
import numpy as np


def recall_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the relevant items that appear in the top-``k``.

    Returns 0 when the user has no relevant items (such users are skipped
    by the evaluator, but the metric itself stays well defined).
    """
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    hits = sum(1 for item in list(recommended)[:k] if int(item) in relevant_set)
    return hits / len(relevant_set)


def precision_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the top-``k`` recommendations that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(int(i) for i in relevant)
    hits = sum(1 for item in list(recommended)[:k] if int(item) in relevant_set)
    return hits / k


def hit_rate_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """1.0 when any relevant item appears in the top-``k``, else 0.0."""
    relevant_set = set(int(i) for i in relevant)
    return 1.0 if any(int(item) in relevant_set for item in list(recommended)[:k]) else 0.0


def ndcg_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance.

    The ideal DCG normalizes by ranking all relevant items first, so a
    perfect ranking scores 1.0 regardless of how many relevant items the
    user has.
    """
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        return 0.0
    top = list(recommended)[:k]
    dcg = 0.0
    for position, item in enumerate(top):
        if int(item) in relevant_set:
            dcg += 1.0 / np.log2(position + 2)
    ideal_hits = min(len(relevant_set), k)
    ideal = sum(1.0 / np.log2(position + 2) for position in range(ideal_hits))
    return dcg / ideal if ideal > 0 else 0.0


def batch_metrics_at_k(relevance: np.ndarray, relevant_counts: np.ndarray, k: int):
    """All four ranking metrics for a whole cohort at once.

    ``relevance`` is the ``(users, width)`` boolean table saying whether
    each user's ranked item at each position is a held-out test item
    (positions past a user's valid candidates must already be ``False``);
    ``relevant_counts`` is each user's total number of test items.  Returns
    ``(recall, ndcg, precision, hit_rate)`` arrays of shape ``(users,)``.

    Every value is **bitwise identical** to the scalar metric functions
    above on the same ranked list: counts divide with the same IEEE
    division, and the DCG accumulates position by position in the same
    order as the scalar loop (adding an exact ``0.0`` at non-relevant
    positions), with the log discounts computed by the very same
    ``1.0 / np.log2(position + 2)`` scalar calls.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevance = np.asarray(relevance, dtype=bool)
    if relevance.ndim != 2:
        raise ValueError(f"relevance must be 2-D (users, width), got {relevance.shape}")
    if relevance.shape[1] > k:
        # Grade only the top-k slots, exactly like the scalar functions'
        # ``list(recommended)[:k]`` truncation.
        relevance = relevance[:, :k]
    counts = np.asarray(relevant_counts, dtype=np.int64)
    num_users, width = relevance.shape
    if counts.shape != (num_users,):
        raise ValueError(
            f"relevant_counts must have shape ({num_users},), got {counts.shape}"
        )

    hits = relevance.sum(axis=1)
    has_relevant = counts > 0
    recall = np.where(has_relevant, hits / np.maximum(counts, 1), 0.0)
    precision = hits / k
    hit_rate = (hits > 0).astype(np.float64)

    # The exact discounts the scalar loop uses, and their sequential
    # (left-to-right) prefix sums for the ideal DCG.
    max_ideal_hits = int(min(counts.max(initial=0), k))
    discounts = [
        1.0 / np.log2(position + 2) for position in range(max(width, max_ideal_hits))
    ]
    dcg = np.zeros(num_users)
    for position in range(width):
        dcg = dcg + relevance[:, position] * discounts[position]
    ideal_prefix = [0.0]
    for discount in discounts:
        ideal_prefix.append(ideal_prefix[-1] + discount)
    ideal_prefix = np.asarray(ideal_prefix)
    ideal = ideal_prefix[np.minimum(counts, k)]
    ndcg = np.where(has_relevant & (ideal > 0), dcg / np.where(ideal > 0, ideal, 1.0), 0.0)
    return recall, ndcg, precision, hit_rate


def f1_score(predicted: Iterable[int], actual: Iterable[int]) -> float:
    """F1 between two item sets (used to grade the Top Guess Attack)."""
    predicted_set: Set[int] = set(int(i) for i in predicted)
    actual_set: Set[int] = set(int(i) for i in actual)
    if not predicted_set or not actual_set:
        return 0.0
    true_positives = len(predicted_set & actual_set)
    if true_positives == 0:
        return 0.0
    precision = true_positives / len(predicted_set)
    recall = true_positives / len(actual_set)
    return 2.0 * precision * recall / (precision + recall)

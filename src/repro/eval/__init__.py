"""Evaluation metrics and ranking protocols.

The paper reports Recall@20 and NDCG@20 over all non-interacted items, and
uses F1 to measure the Top Guess Attack's inference quality (Section IV-B).
"""

from repro.eval.metrics import (
    recall_at_k,
    ndcg_at_k,
    precision_at_k,
    hit_rate_at_k,
    f1_score,
)
from repro.eval.ranking import RankingEvaluator, RankingResult

__all__ = [
    "recall_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "hit_rate_at_k",
    "f1_score",
    "RankingEvaluator",
    "RankingResult",
]

"""Evaluation metrics and ranking protocols.

The paper reports Recall@20 and NDCG@20 over all non-interacted items, and
uses F1 to measure the Top Guess Attack's inference quality (Section IV-B).
:class:`RankingEvaluator` runs the full-ranking protocol batched by
default — cohorts of users scored through :func:`batch_scores`, ranked and
graded as ``(users, K)`` matrices — with the per-user loop kept as the
bit-identical reference path (``batch_size=None``).
"""

from repro.eval.metrics import (
    batch_metrics_at_k,
    recall_at_k,
    ndcg_at_k,
    precision_at_k,
    hit_rate_at_k,
    f1_score,
)
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.eval.scoring import DEFAULT_CHUNK_SIZE, batch_scores

__all__ = [
    "batch_metrics_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "hit_rate_at_k",
    "f1_score",
    "RankingEvaluator",
    "RankingResult",
    "DEFAULT_CHUNK_SIZE",
    "batch_scores",
]

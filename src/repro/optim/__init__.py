"""Gradient-descent optimizers and learning-rate schedules."""

from repro.optim.optimizers import Optimizer, SGD, Adam
from repro.optim.schedulers import ConstantLR, StepLR, ExponentialLR

__all__ = ["Optimizer", "SGD", "Adam", "ConstantLR", "StepLR", "ExponentialLR"]

"""Learning-rate schedules.

The paper uses a constant learning rate; step and exponential decay are
included because the extension benches sweep longer training horizons
where decay stabilizes the server model.
"""

from __future__ import annotations

from repro.optim.optimizers import Optimizer


class _Scheduler:
    """Base scheduler: adjusts ``optimizer.lr`` once per :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._rate()
        return self.optimizer.lr

    def _rate(self) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """Keeps the learning rate fixed (the paper's setting)."""

    def _rate(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiplies the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def _rate(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class ExponentialLR(_Scheduler):
    """Multiplies the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _rate(self) -> float:
        return self.base_lr * (self.gamma ** self.epoch)

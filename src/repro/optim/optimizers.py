"""First-order optimizers for the NumPy autograd substrate.

The paper trains every model with Adam (learning rate 0.001); SGD with
optional momentum is provided as well because the federated baselines
(FCF-style local updates) historically use it and the ablation benches
compare both.

The per-parameter update arithmetic itself lives in the active tensor
backend (:mod:`repro.tensor.backend`): the default ``"numpy"`` backend
reproduces the historical out-of-place float64 updates bit for bit, while
``"numpy32"`` runs fused in-place float32 kernels over reusable scratch
buffers.  An optimizer captures the backend active at construction, so a
model built under ``use_backend("numpy32")`` keeps its fused kernels even
when ``step()`` later runs outside the context.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

# repro: disable=backend-purity -- optimizer state is raw ndarray slots updated through backend kernels
import numpy as np

from repro.tensor import Tensor
from repro.tensor.backend import Backend, get_backend


def _load_indexed_arrays(target: Dict[int, np.ndarray], source: Dict, count: int) -> None:
    """Replace ``target`` with index-keyed arrays from a state mapping.

    Arrays are *copied* in: the in-place fused kernels of the ``numpy32``
    backend mutate the optimizer's moment/velocity buffers directly, so
    aliasing the caller's state dict would corrupt it (e.g. a loaded
    ``Checkpoint.state`` tree after the next training round).
    """
    target.clear()
    for key, value in source.items():
        index = int(key)
        if not 0 <= index < count:
            raise IndexError(f"optimizer state index {index} out of range [0, {count})")
        target[index] = np.array(value)


class Optimizer:
    """Base class holding a parameter list and common bookkeeping.

    ``backend`` selects the update kernels (a name, a
    :class:`~repro.tensor.backend.Backend`, or ``None`` for the backend
    active at construction time).  In-place backends reuse per-parameter
    scratch buffers across steps, so no update allocates parameter-sized
    temporaries.
    """

    def __init__(self, parameters: Iterable[Tensor], lr: float,
                 backend: Union[str, Backend, None] = None):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.backend = get_backend(backend)
        self._scratch: Dict[tuple, tuple] = {}

    def _scratch_for(self, parameter: Tensor) -> Optional[tuple]:
        """Reusable scratch pair for in-place kernels (``None`` for reference).

        Keyed by ``(shape, dtype)`` rather than parameter index: ``step()``
        updates parameters sequentially, so same-shaped parameters can
        share one pair — halving resident scratch for models whose big
        tables repeat a shape (and scratch contents never survive a step).
        """
        if not self.backend.inplace:
            return None
        key = (parameter.data.shape, parameter.data.dtype)
        scratch = self._scratch.get(key)
        if scratch is None:
            scratch = self._scratch[key] = (
                np.empty_like(parameter.data), np.empty_like(parameter.data)
            )
        return scratch

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without the scratch buffers (content-free; lazily rebuilt).

        Keeps the payload lean when the multiprocess scheduler ships
        client optimizers to workers and back.
        """
        state = self.__dict__.copy()
        state["_scratch"] = {}
        return state

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Index-keyed snapshot of the optimizer's mutable state.

        Stateless optimizers return an empty dict; subclasses with
        per-parameter state override this (and :meth:`load_state_dict`).
        Keys are parameter *indices* in the managed list — the same
        pickle-stable keying the engine's slot accessors use — so the
        snapshot survives serialization and process boundaries.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no state, got keys {sorted(state)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Per-parameter state is keyed by the parameter's *index* in the managed
    list (not ``id()``), so optimizer state survives pickling — a property
    the multiprocess execution engine relies on when it ships clients to
    worker processes and back.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        backend: Union[str, Backend, None] = None,
    ):
        super().__init__(parameters, lr, backend=backend)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        kernel = self.backend.sgd_update
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            parameter.data, velocity = kernel(
                parameter.data,
                parameter.grad,
                self.lr,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
                velocity=self._velocity.get(index) if self.momentum else None,
                scratch=self._scratch_for(parameter),
            )
            if self.momentum:
                self._velocity[index] = velocity

    def state_dict(self) -> Dict[str, Any]:
        """Momentum velocities keyed by parameter index."""
        return {"velocity": {index: v.copy() for index, v in self._velocity.items()}}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore velocities from a :meth:`state_dict` snapshot."""
        _load_indexed_arrays(
            self._velocity, state.get("velocity", {}), len(self.parameters)
        )


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) — the paper's optimizer.

    Per-parameter state (step count and both moment estimates) is keyed by
    the parameter's index in the managed list, which keeps the state valid
    across pickling and lets :mod:`repro.engine` stack the state of many
    per-client optimizers into contiguous arrays (see
    :meth:`slot_state` / :meth:`load_slot_state`).
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        backend: Union[str, Backend, None] = None,
    ):
        super().__init__(parameters, lr, backend=backend)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._steps: Dict[int, int] = {}
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        kernel = self.backend.adam_update
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            step = self._steps.get(index, 0) + 1
            first = self._first_moment.get(index)
            second = self._second_moment.get(index)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            parameter.data, first, second = kernel(
                parameter.data,
                parameter.grad,
                step,
                first,
                second,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                weight_decay=self.weight_decay,
                scratch=self._scratch_for(parameter),
            )
            self._steps[index] = step
            self._first_moment[index] = first
            self._second_moment[index] = second

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Step counts and both moment estimates, keyed by parameter index."""
        return {
            "steps": {index: int(step) for index, step in self._steps.items()},
            "first_moment": {index: m.copy() for index, m in self._first_moment.items()},
            "second_moment": {index: m.copy() for index, m in self._second_moment.items()},
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (bitwise: the next
        :meth:`step` continues exactly where the saved optimizer left off)."""
        count = len(self.parameters)
        self._steps.clear()
        for key, step in state.get("steps", {}).items():
            index = int(key)
            if not 0 <= index < count:
                raise IndexError(f"optimizer state index {index} out of range [0, {count})")
            self._steps[index] = int(step)
        _load_indexed_arrays(self._first_moment, state.get("first_moment", {}), count)
        _load_indexed_arrays(self._second_moment, state.get("second_moment", {}), count)

    # ------------------------------------------------------------------
    # State transfer (used by repro.engine to stack per-client optimizers)
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """Whether any parameter has been stepped yet."""
        return bool(self._steps)

    def slot_state(self, index: int):
        """Return ``(step, first_moment, second_moment)`` for parameter ``index``.

        Fresh (never-stepped) slots report ``(0, zeros, zeros)`` so callers
        can stack heterogeneous client optimizers uniformly.
        """
        parameter = self.parameters[index]
        step = self._steps.get(index, 0)
        first = self._first_moment.get(index)
        second = self._second_moment.get(index)
        if first is None:
            first = np.zeros_like(parameter.data)
            second = np.zeros_like(parameter.data)
        return step, first, second

    def load_slot_state(self, index: int, step: int, first: np.ndarray,
                        second: np.ndarray) -> None:
        """Install ``(step, first_moment, second_moment)`` for parameter ``index``."""
        if not 0 <= index < len(self.parameters):
            raise IndexError(f"parameter index {index} out of range")
        self._steps[index] = int(step)
        self._first_moment[index] = np.asarray(first)
        self._second_moment[index] = np.asarray(second)

"""Text and JSON reporters with stable shapes for CI consumption."""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from repro.analysis.core import Finding

REPORT_VERSION = 1

__all__ = ["render_text", "render_json", "REPORT_VERSION"]


def render_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale_baseline: int,
    files: int,
    show_grandfathered: bool = False,
) -> str:
    """Human-readable report: one `path:line:col: rule: message` per finding."""
    lines: List[str] = [finding.render() for finding in new]
    if show_grandfathered and grandfathered:
        lines.append("-- grandfathered (baselined) --")
        lines.extend(finding.render() for finding in grandfathered)
    per_rule = Counter(finding.rule for finding in new)
    breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(per_rule.items()))
    summary = (
        f"{len(new)} new finding(s)"
        + (f" [{breakdown}]" if breakdown else "")
        + f", {len(grandfathered)} baselined, {stale_baseline} stale baseline "
        + f"entr{'y' if stale_baseline == 1 else 'ies'}, {files} file(s) analysed"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale_baseline: int,
    files: int,
) -> dict:
    """JSON-ready report; uploaded as the CI ``static-analysis`` artifact."""
    return {
        "version": REPORT_VERSION,
        "summary": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline_entries": stale_baseline,
            "files_analysed": files,
            "by_rule": dict(sorted(Counter(f.rule for f in new).items())),
        },
        "findings": [finding.to_dict() for finding in new],
        "grandfathered": [finding.to_dict() for finding in grandfathered],
    }

"""Core machinery for the invariant linter: findings, suppressions, rules.

The analyzer is deliberately self-contained (stdlib ``ast`` + ``tokenize``
only) so the CI ``static-analysis`` job can run it before any heavyweight
dependency is imported, and so the linter can never be broken by the code
it is linting.

Three comment grammars are recognised anywhere in analysed sources:

``# repro: disable=<rule>[,<rule>...] -- <justification>``
    Suppress the named rules on this line (or, when the comment stands on
    a line of its own, on the next code line).  The justification after
    ``--`` is **required**: a suppression without one is itself reported
    as a ``bad-suppression`` finding.

``# repro: disable-file=<rule>[,<rule>...] -- <justification>``
    Same, but for the whole file.

``# guarded-by: <lock>`` / ``# holds-lock: <lock>``
    Concurrency annotations consumed by the ``guarded-by`` rule (see
    :mod:`repro.analysis.rules.guarded_by`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rules",
    "analyze_file",
    "analyze_source",
    "analyze_paths",
    "classify_role",
]

#: Reserved rule names used for problems in the analysis inputs themselves.
META_RULES = ("bad-suppression", "parse-error")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_\-,\s]+?)"
    r"(?:\s+--\s*(.*))?\s*$"
)
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(\S+)")
_HOLDS_LOCK_RE = re.compile(r"#\s*holds-lock:\s*(\S+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # posix-relative display path
    line: int
    col: int
    rule: str
    message: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, (path, rule, message) don't."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: disable=`` comment."""

    line: int  # line the comment physically sits on
    rules: Tuple[str, ...]
    justification: str
    file_wide: bool = False


def classify_role(rel_path: str) -> str:
    """Map a repo-relative posix path onto a lint scope.

    ``library`` (src/repro), ``tests``, ``benchmarks`` or ``other``;
    rules pick which scopes they run in.
    """
    parts = rel_path.split("/")
    if rel_path.startswith("src/repro/") or rel_path.startswith("repro/"):
        return "library"
    if "tests" in parts[:1] or "/tests/" in rel_path:
        return "tests"
    if "benchmarks" in parts[:1] or "/benchmarks/" in rel_path:
        return "benchmarks"
    return "other"


def _library_rel(rel_path: str) -> Optional[str]:
    """The ``repro/...`` part of a library path (allowlists key off it)."""
    if rel_path.startswith("src/repro/"):
        return rel_path[len("src/"):]
    if rel_path.startswith("repro/"):
        return rel_path
    return None


class FileContext:
    """Everything a rule needs to know about one analysed file."""

    def __init__(self, source: str, rel_path: str, role: Optional[str] = None):
        self.source = source
        self.rel_path = rel_path
        self.role = role if role is not None else classify_role(rel_path)
        self.library_rel = _library_rel(rel_path)
        self.tree = ast.parse(source, filename=rel_path)
        self.lines = source.splitlines()
        # Comment scan: token-accurate (a "#" inside a string is not a
        # comment), shared by suppressions and the guarded-by annotations.
        self._comments: List[Tuple[int, int, str]] = []  # (line, col, text)
        self._code_lines: set = set()
        self._scan_tokens()
        self.suppressions: List[Suppression] = []
        self.suppression_problems: List[Finding] = []
        self._parse_suppressions()

    # ------------------------------------------------------------------
    # Token / comment scan
    # ------------------------------------------------------------------
    def _scan_tokens(self) -> None:
        code_kinds = (
            tokenize.NAME, tokenize.NUMBER, tokenize.STRING, tokenize.OP,
            tokenize.FSTRING_START if hasattr(tokenize, "FSTRING_START") else tokenize.OP,
        )
        try:
            for tok in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if tok.type == tokenize.COMMENT:
                    self._comments.append((tok.start[0], tok.start[1], tok.string))
                elif tok.type in code_kinds:
                    for line in range(tok.start[0], tok.end[0] + 1):
                        self._code_lines.add(line)
        except (tokenize.TokenError, IndentationError):  # ast.parse already vetted it
            pass

    def _attach_line(self, comment_line: int) -> int:
        """The code line a comment governs: its own line, or — for a
        comment standing alone — the next line holding code."""
        if comment_line in self._code_lines:
            return comment_line
        following = [line for line in self._code_lines if line > comment_line]
        return min(following) if following else comment_line

    def comments(self) -> List[Tuple[int, int, str]]:
        return list(self._comments)

    def annotations(self, pattern: re.Pattern) -> List[Tuple[int, str]]:
        """(attached code line, captured group) for every matching comment."""
        found = []
        for line, _col, text in self._comments:
            match = pattern.search(text)
            if match:
                found.append((self._attach_line(line), match.group(1)))
        return found

    def guarded_by_annotations(self) -> List[Tuple[int, str]]:
        return self.annotations(_GUARDED_BY_RE)

    def holds_lock_annotations(self) -> List[Tuple[int, str]]:
        return self.annotations(_HOLDS_LOCK_RE)

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> None:
        known = set(all_rules()) | set(META_RULES)
        for line, col, text in self._comments:
            match = _SUPPRESS_RE.search(text)
            if match is None:
                if re.search(r"#\s*repro:\s*disable", text):
                    self.suppression_problems.append(Finding(
                        self.rel_path, line, col, "bad-suppression",
                        "malformed suppression; use "
                        "'# repro: disable=<rule> -- <justification>'",
                    ))
                continue
            file_wide = match.group(1) == "disable-file"
            rules = tuple(
                name.strip() for name in match.group(2).split(",") if name.strip()
            )
            justification = (match.group(3) or "").strip()
            unknown = [name for name in rules if name not in known]
            if unknown:
                self.suppression_problems.append(Finding(
                    self.rel_path, line, col, "bad-suppression",
                    f"suppression names unknown rule(s) {', '.join(sorted(unknown))}",
                ))
            if not justification:
                self.suppression_problems.append(Finding(
                    self.rel_path, line, col, "bad-suppression",
                    "suppression is missing its justification "
                    "('# repro: disable=<rule> -- <why this is safe>')",
                ))
                continue  # an unjustified suppression suppresses nothing
            self.suppressions.append(Suppression(
                line=self._attach_line(line) if not file_wide else line,
                rules=rules,
                justification=justification,
                file_wide=file_wide,
            ))

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule in META_RULES:
            return False  # problems with the inputs are never maskable
        for suppression in self.suppressions:
            if finding.rule not in suppression.rules:
                continue
            if suppression.file_wide or suppression.line == finding.line:
                return True
        return False


class Rule:
    """Base class for one invariant check.

    Subclasses set ``name``/``description``, declare the scopes they run
    in (``roles``), and implement :meth:`check` yielding raw findings —
    suppression filtering happens in :func:`analyze_file`.
    """

    name: str = ""
    description: str = ""
    roles: Sequence[str] = ("library",)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.role in self.roles

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            ctx.rel_path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.name,
            message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator: instantiate and register an invariant rule."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} must define a rule name")
    if rule.name in _REGISTRY or rule.name in META_RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """Name -> rule instance for every registered rule."""
    from repro.analysis import rules as _rules  # noqa: F401  (registration import)

    return dict(_REGISTRY)


def get_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    registry = all_rules()
    if names is None:
        return [registry[name] for name in sorted(registry)]
    selected = []
    for name in names:
        if name not in registry:
            raise KeyError(
                f"unknown rule {name!r}; known rules: {', '.join(sorted(registry))}"
            )
        selected.append(registry[name])
    return selected


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def analyze_file(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    """Run ``rules`` over one file; returns unsuppressed findings only."""
    findings: List[Finding] = list(ctx.suppression_problems)
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def analyze_source(
    source: str,
    rel_path: str = "src/repro/module.py",
    role: Optional[str] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyse a source string as if it lived at ``rel_path``.

    The test-fixture entry point: paired violating/clean snippets run
    through exactly the production driver.
    """
    try:
        ctx = FileContext(source, rel_path, role=role)
    except SyntaxError as error:
        return [Finding(rel_path, error.lineno or 1, error.offset or 0,
                        "parse-error", f"could not parse: {error.msg}")]
    return analyze_file(ctx, get_rules(rules))


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if "__pycache__" in parts or any(p.startswith(".") for p in parts):
                    continue
                yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> Tuple[List[Finding], int]:
    """Analyse files/directories; returns (findings, files analysed)."""
    selected = get_rules(rules)
    root = Path.cwd() if root is None else Path(root)
    findings: List[Finding] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            ctx = FileContext(source, rel)
        except SyntaxError as error:
            findings.append(Finding(rel, error.lineno or 1, error.offset or 0,
                                    "parse-error", f"could not parse: {error.msg}"))
            continue
        findings.extend(analyze_file(ctx, selected))
    return sorted(findings), count

"""``repro.analysis`` — the AST-based invariant linter.

Every speedup in this repository is sold on a ``==`` bit-identity
contract with the paper's serial reference; that contract rests on
conventions no unit test checks directly: keyed RNG streams only, no raw
numpy in backend-dispatched code, lock-guarded shared state in the
serving layer, no float accumulation over unordered iteration, and
round-trippable ``state_dict`` pairs.  This package machine-checks them::

    PYTHONPATH=src python -m repro.analysis src tests benchmarks

Exit codes are stable: ``0`` clean (modulo the checked-in baseline),
``1`` new findings, ``2`` usage/configuration error.  See
``docs/conventions.md`` for the invariants, the
``# repro: disable=<rule> -- <justification>`` suppression syntax, and
how to add a rule.

The package is import-light on purpose (stdlib only): the CI
``static-analysis`` job can lint the tree even when the numerical stack
is broken.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    classify_role,
    get_rules,
    register,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "classify_role",
    "get_rules",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]

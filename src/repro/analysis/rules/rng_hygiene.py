"""``rng-hygiene`` — all randomness flows through keyed ``utils.rng`` streams.

The repository's identity tests compare entire training runs with ``==``;
that only works because every stochastic draw comes from a generator
derived as ``(seed, stream name[, index])`` by :mod:`repro.utils.rng`.
Three patterns break the contract and are flagged in library code and
benchmarks:

* ``np.random.*`` calls — the legacy global-state API (``np.random.seed``,
  ``np.random.rand``) is process-wide mutable state, and even
  ``np.random.default_rng`` called directly creates streams the seed
  audit cannot see.  Use :func:`repro.utils.rng.seeded_rng` or
  :class:`repro.utils.rng.RngFactory` instead.
* the stdlib ``random`` module — per-process salted, invisible to the
  keyed-stream audit.
* wall-clock reads (``time.time``, ``datetime.now`` …) — results must
  never depend on when they were computed.  Elapsed-time telemetry via
  ``time.perf_counter`` / ``time.monotonic`` is exempt: it measures
  execution, it cannot change results.

``repro/utils/rng.py`` itself is exempt — it *is* the chokepoint.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.core import FileContext, Finding, Rule, register

NP_RANDOM_MESSAGE = (
    "np.random.{name} call; draw from repro.utils.rng keyed streams "
    "(seeded_rng / RngFactory) instead"
)
STDLIB_RANDOM_MESSAGE = (
    "stdlib random module; draw from repro.utils.rng keyed streams instead"
)
WALL_CLOCK_MESSAGE = (
    "wall-clock call {name}(); results must not depend on real time "
    "(time.perf_counter/time.monotonic telemetry is exempt)"
)

_WALL_CLOCK_TIME_ATTRS = {"time", "time_ns"}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


@register
class RngHygieneRule(Rule):
    name = "rng-hygiene"
    description = (
        "no np.random.* / stdlib random / wall-clock calls; "
        "RNG comes from utils.rng keyed streams"
    )
    roles = ("library", "benchmarks")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.role not in self.roles:
            return False
        return ctx.library_rel != "repro/utils/rng.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _ImportAliases()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node, aliases)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)

    # ------------------------------------------------------------------
    def _check_import(self, ctx, node, aliases) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.numpy.add(bound)
                elif alias.name == "random":
                    yield self.finding(ctx, node, STDLIB_RANDOM_MESSAGE)
                elif alias.name in ("time", "datetime"):
                    aliases.modules.setdefault(alias.name, set()).add(bound)
            return
        module = node.module or ""
        if node.level:
            return
        if module == "random":
            yield self.finding(ctx, node, STDLIB_RANDOM_MESSAGE)
        elif module == "numpy" :
            for alias in node.names:
                if alias.name == "random":
                    aliases.numpy_random.add(alias.asname or alias.name)
        elif module == "numpy.random":
            for alias in node.names:
                if alias.name != "Generator":  # type annotations are fine
                    yield self.finding(ctx, node, NP_RANDOM_MESSAGE.format(
                        name=alias.name))
        elif module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_ATTRS:
                    yield self.finding(ctx, node, WALL_CLOCK_MESSAGE.format(
                        name=f"time.{alias.name}"))
        elif module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    aliases.datetime_classes.add(alias.asname or alias.name)

    def _check_call(self, ctx, node: ast.Call, aliases) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        chain = _attribute_chain(func)
        if chain is None:
            return
        # np.random.<fn>(...) or numpy.random.<fn>(...)
        if len(chain) == 3 and chain[0] in aliases.numpy and chain[1] == "random":
            yield self.finding(ctx, node, NP_RANDOM_MESSAGE.format(name=chain[2]))
            return
        # from numpy import random [as nr]; nr.<fn>(...)
        if len(chain) == 2 and chain[0] in aliases.numpy_random:
            yield self.finding(ctx, node, NP_RANDOM_MESSAGE.format(name=chain[1]))
            return
        # time.time() / time.time_ns()
        if (len(chain) == 2 and chain[0] in aliases.modules.get("time", ())
                and chain[1] in _WALL_CLOCK_TIME_ATTRS):
            yield self.finding(ctx, node, WALL_CLOCK_MESSAGE.format(
                name=f"time.{chain[1]}"))
            return
        # datetime.datetime.now() / datetime.date.today()
        if (len(chain) == 3 and chain[0] in aliases.modules.get("datetime", ())
                and chain[1] in ("datetime", "date")
                and chain[2] in _WALL_CLOCK_DATETIME_ATTRS):
            yield self.finding(ctx, node, WALL_CLOCK_MESSAGE.format(
                name=f"datetime.{chain[1]}.{chain[2]}"))
            return
        # from datetime import datetime; datetime.now()
        if (len(chain) == 2 and chain[0] in aliases.datetime_classes
                and chain[1] in _WALL_CLOCK_DATETIME_ATTRS):
            yield self.finding(ctx, node, WALL_CLOCK_MESSAGE.format(
                name=f"{chain[0]}.{chain[1]}"))


class _ImportAliases:
    def __init__(self):
        self.numpy: Set[str] = set()
        self.numpy_random: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.modules: Dict[str, Set[str]] = {}


def _attribute_chain(node: ast.Attribute):
    """``a.b.c`` -> ("a", "b", "c"); None for non-Name roots."""
    parts = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))

"""``state-dict-symmetry`` — serializable state must round-trip.

PR 3 made ``state_dict``/``load_state_dict`` the durable-lifecycle
contract: anything a checkpoint saves must be restorable, bit-identically.
A class that grows a ``state_dict`` without a loader produces artifacts
nothing can restore; a loader without a saver means resume paths accept
state no checkpoint can produce.  Both directions are flagged:

* ``state_dict`` requires ``load_state_dict`` — or ``from_state_dict``,
  the classmethod-constructor spelling value types use
  (:class:`repro.tensor.sparse.SparseDelta`);
* ``load_state_dict``/``from_state_dict`` without ``state_dict`` is
  flagged only for classes with no base classes: subclasses routinely
  override just the loader (LightGCN/NGCF rebuild their propagation
  caches on load) while inheriting the saver from ``nn.Module``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

MISSING_LOADER_MESSAGE = (
    "class {name} defines state_dict but no load_state_dict/from_state_dict; "
    "checkpointed state must be restorable"
)
MISSING_SAVER_MESSAGE = (
    "class {name} defines {loader} but no state_dict (and has no base class "
    "to inherit one from); restorable state must be checkpointable"
)

_LOADER_NAMES = ("load_state_dict", "from_state_dict")


@register
class StateDictSymmetryRule(Rule):
    name = "state-dict-symmetry"
    description = "state_dict without load_state_dict (or vice versa) is an error"
    roles = ("library",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_saver = "state_dict" in methods
            loaders = [name for name in _LOADER_NAMES if name in methods]
            has_bases = any(
                not (isinstance(base, ast.Name) and base.id == "object")
                for base in node.bases
            )
            if has_saver and not loaders:
                yield self.finding(
                    ctx, node, MISSING_LOADER_MESSAGE.format(name=node.name)
                )
            elif loaders and not has_saver and not has_bases:
                yield self.finding(
                    ctx, node,
                    MISSING_SAVER_MESSAGE.format(name=node.name, loader=loaders[0]),
                )

"""``guarded-by`` — a mini lock-discipline checker for the serving layer.

The PR 8 gateway and the thread-safe ``serve.Recommender`` share mutable
state (queues, LRU cache, stat counters) between client threads, a
dispatcher thread and swap loader threads.  The convention that keeps the
telemetry exact and the caches uncorrupted is *annotated*, and this rule
makes the annotation machine-checked:

* ``self.<attr> = ...  # guarded-by: <lock>`` registers ``attr`` (the
  comment may also stand on its own line directly above the assignment);
* every later load or store of ``self.<attr>`` anywhere in the class must
  then sit lexically inside ``with self.<lock>:``;
* a method whose whole body runs with the lock held (a ``..._locked``
  helper called under the lock) declares it:
  ``def _drain_locked(self):  # holds-lock: <lock>``.

``__init__`` (and ``__new__``/``__post_init__``) are exempt —
construction happens before the object is published to other threads.
Nested functions reset the held-lock set: a closure defined inside a
``with`` block may run on another thread long after the lock was
released, so lexical inheritance would be unsound.

The checker is lexical, not a model checker: it proves the *convention*
(every annotated access is inside a matching ``with``), not full race
freedom.  Benign racy reads (``len()`` snapshots for reprs) take a
justified ``# repro: disable=guarded-by`` instead of a lock.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule, register

UNGUARDED_MESSAGE = (
    "self.{attr} is declared guarded-by self.{lock} but is accessed "
    "without holding it"
)
DANGLING_MESSAGE = (
    "guarded-by annotation does not attach to a `self.<attr> = ...` assignment"
)

_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}


@register
class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes annotated `# guarded-by: <lock>` are only touched "
        "inside `with self.<lock>:`"
    )
    roles = ("library", "tests", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        annotations = ctx.guarded_by_annotations()
        if not annotations:
            return
        holds = dict(ctx.holds_lock_annotations())
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, annotations, holds)
        # Annotations that attached to no self-attribute assignment at all
        # are typos and must fail loudly, or the "guard" silently never
        # existed.
        claimed = set()
        for node in ast.walk(ctx.tree):
            for line in _self_assignment_lines(node):
                claimed.add(line)
        for line, _lock in annotations:
            if line not in claimed:
                yield Finding(ctx.rel_path, line, 0, self.name, DANGLING_MESSAGE)

    # ------------------------------------------------------------------
    def _check_class(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        annotations: List[Tuple[int, str]],
        holds: Dict[int, str],
    ) -> Iterator[Finding]:
        guarded = self._guarded_attrs(cls, annotations)
        if not guarded:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS:
                continue
            held: Set[str] = set()
            declared = holds.get(item.lineno)
            if declared is not None:
                held.add(_normalize_lock(declared))
            for stmt in item.body:
                yield from self._walk(ctx, stmt, guarded, held)

    def _guarded_attrs(
        self, cls: ast.ClassDef, annotations: List[Tuple[int, str]]
    ) -> Dict[str, str]:
        """attr name -> lock name, from annotated assignments in this class."""
        lines = {line: _normalize_lock(lock) for line, lock in annotations}
        guarded: Dict[str, str] = {}
        for node in ast.walk(cls):
            if node is cls or isinstance(node, ast.ClassDef):
                continue
            for line, attr in _self_assignments(node):
                if line in lines:
                    guarded[attr] = lines[line]
        return guarded

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        guarded: Dict[str, str],
        held: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            acquired = set(held)
            for item in node.items:
                lock = _lock_expr_name(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            for item in node.items:
                yield from self._walk(ctx, item.context_expr, guarded, held)
            for child in node.body:
                yield from self._walk(ctx, child, guarded, acquired)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may execute later, on any thread, without
            # the lexically-enclosing lock: analyse it with a clean slate.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._walk(ctx, child, guarded, set())
            return
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and node.attr in guarded and guarded[node.attr] not in held):
                yield self.finding(ctx, node, UNGUARDED_MESSAGE.format(
                    attr=node.attr, lock=guarded[node.attr]))
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, guarded, held)


def _normalize_lock(lock: str) -> str:
    return lock[len("self."):] if lock.startswith("self.") else lock


def _lock_expr_name(expr: ast.AST):
    """``with self._lock:`` / ``with self._cond:`` -> the lock attr name."""
    if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


def _self_assignments(node: ast.AST) -> List[Tuple[int, str]]:
    """(line, attr) for each direct ``self.<attr>`` assignment target."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    found = []
    for target in targets:
        elements = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for element in elements:
            if (isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"):
                found.append((element.lineno, element.attr))
    return found


def _self_assignment_lines(node: ast.AST) -> List[int]:
    return [line for line, _attr in _self_assignments(node)]

"""Project-specific invariant rules.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry.  To add a rule: create a module
here, subclass :class:`repro.analysis.core.Rule`, decorate it with
``@register``, import it below, and document the invariant in
``docs/conventions.md`` (with a paired violating/clean fixture in
``tests/test_analysis.py``).
"""

from repro.analysis.rules import (  # noqa: F401  (import = registration)
    backend_purity,
    float_determinism,
    guarded_by,
    rng_hygiene,
    state_dict,
)

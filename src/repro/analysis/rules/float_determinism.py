"""``float-determinism`` — no accumulation over unordered iteration.

IEEE float addition is not associative: summing the same values in a
different order produces different bits, and every scheduler/backend/
payload equivalence in this repo is asserted with ``==``.  Sets (and
anything built from them) iterate in hash order, which varies across
processes; accumulating floats over one is a latent identity break that
only fires when a hash seed changes.

Flagged in library code:

* ``sum(...)`` / ``math.fsum(...)`` / ``np.sum(...)`` whose iterable is a
  set literal, set comprehension, ``set()``/``frozenset()`` call — or a
  comprehension iterating over one;
* the same call shapes over dict views (``.values()``/``.items()``/
  ``.keys()``): insertion order *is* deterministic for a fixed code path,
  but it silently depends on construction order, so the accumulation
  needs a justified suppression stating why the order (or the dtype —
  integer sums are order-free) makes it safe;
* ``for``-loops over set-typed iterables whose body contains an
  augmented ``+=`` accumulation.

The aggregation paths proper (``federated/base.py``, ``core/server.py``)
accumulate over *sorted client ids and parameter-registration order* by
construction — the patterns above are the ways new code usually slips
off that path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import FileContext, Finding, Rule, register

SET_MESSAGE = (
    "accumulation over unordered set iteration; float addition is not "
    "associative — iterate a sorted/list container instead"
)
DICT_VIEW_MESSAGE = (
    "sum over dict-view iteration (.{method}()) depends on insertion "
    "order; sort the keys or justify why the accumulation is order-free"
)
LOOP_MESSAGE = (
    "augmented accumulation inside a loop over a set; float addition is "
    "not associative — iterate a sorted/list container instead"
)

_SUM_NAMES = {"sum", "fsum"}
_DICT_VIEW_METHODS = {"values", "items", "keys"}


@register
class FloatDeterminismRule(Rule):
    name = "float-determinism"
    description = "no sum()/accumulation over set or dict-view iteration"
    roles = ("library",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and self._is_sum_call(node) and node.args:
                iterable = _unwrap_comprehension(node.args[0])
                if _is_set_expr(iterable):
                    yield self.finding(ctx, node, SET_MESSAGE)
                else:
                    method = _dict_view_method(iterable)
                    if method is not None:
                        yield self.finding(
                            ctx, node, DICT_VIEW_MESSAGE.format(method=method)
                        )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                if any(
                    isinstance(child, ast.AugAssign)
                    and isinstance(child.op, ast.Add)
                    for stmt in node.body
                    for child in ast.walk(stmt)
                ):
                    yield self.finding(ctx, node, LOOP_MESSAGE)

    def _is_sum_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _SUM_NAMES
        if isinstance(func, ast.Attribute):
            return func.attr in ("fsum", "sum")
        return False


def _unwrap_comprehension(node: ast.AST) -> ast.AST:
    """``sum(f(x) for x in ITER)`` -> ``ITER``; other args pass through."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)) and node.generators:
        return node.generators[0].iter
    return node


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra: {a} | set(b), arrived - failed, ...
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _dict_view_method(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and not node.args and not node.keywords
            and node.func.attr in _DICT_VIEW_METHODS):
        return node.func.attr
    return None

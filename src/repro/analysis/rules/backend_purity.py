"""``backend-purity`` — keep raw numpy out of backend-dispatched code.

PR 5 extracted the array layer behind the :class:`repro.tensor.Backend`
registry precisely so numerical kernels have one owner: the float64
``numpy`` reference backend stays bit-identical to the paper while
``numpy32`` swaps in fused float32 kernels.  A ``import numpy`` outside
the array layer is how that contract erodes — new tensor math quietly
computed at a fixed precision the backend can no longer control.

Only the array layer itself (``repro/tensor/``) and the dataset layer
(``repro/data/``, which materialises interaction logs as plain int
arrays) may import numpy freely.  Everywhere else an import must carry a
justified suppression explaining why the usage is index bookkeeping or a
serving-boundary concern rather than dispatched math.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Library paths where raw numpy is the point, not a leak.
ALLOWLIST_PREFIXES = ("repro/tensor/", "repro/data/")

MESSAGE = (
    "direct numpy import outside the array-layer allowlist (repro/tensor/, "
    "repro/data/); tensor math must dispatch through the active Backend"
)


@register
class BackendPurityRule(Rule):
    name = "backend-purity"
    description = "no `import numpy` outside the repro/tensor + repro/data allowlist"
    roles = ("library",)

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.role not in self.roles or ctx.library_rel is None:
            return False
        return not ctx.library_rel.startswith(ALLOWLIST_PREFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        yield self.finding(ctx, node, MESSAGE)
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and (
                    module == "numpy" or module.startswith("numpy.")
                ):
                    yield self.finding(ctx, node, MESSAGE)

"""Command-line entry point: ``python -m repro.analysis <paths...>``.

Stable exit codes (the CI ``static-analysis`` job keys off them):

* ``0`` — no findings beyond the baseline,
* ``1`` — new findings (or a baseline written with ``--write-baseline``
  that is now non-empty),
* ``2`` — usage error: unknown rule, missing path, unreadable baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import all_rules, analyze_paths
from repro.analysis.reporters import render_json, render_text

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter (see docs/conventions.md)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyse")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="baseline JSON of grandfathered findings (default: "
             f"{DEFAULT_BASELINE}; silently skipped when absent)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="additionally write the JSON report to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print grandfathered findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name}: {rule.description} [scopes: {', '.join(rule.roles)}]")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    rule_names = None
    if args.rules is not None:
        rule_names = [name.strip() for name in args.rules.split(",") if name.strip()]

    try:
        findings, files = analyze_paths(args.paths, rules=rule_names)
    except (KeyError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0 if not findings else 1

    baseline = Counter()
    if not args.no_baseline and Path(args.baseline).exists():
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"error: unreadable baseline: {error}", file=sys.stderr)
            return 2
    new, grandfathered, stale = apply_baseline(findings, baseline)

    if args.json:
        report = render_json(new, grandfathered, stale, files)
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(render_json(new, grandfathered, stale, files), indent=2))
    else:
        print(render_text(new, grandfathered, stale, files,
                          show_grandfathered=args.show_baselined))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())

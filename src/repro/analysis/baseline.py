"""Checked-in baseline of grandfathered findings.

A baseline lets the linter land with real findings still open: known
violations are recorded in ``analysis-baseline.json`` and only *new*
findings fail the build.  Matching is by ``(path, rule, message)`` as a
multiset — line numbers drift with every edit, so they are recorded for
humans but ignored when matching.  Baseline entries that no longer match
anything are reported as *stale* so the file ratchets down over time.

The repository itself ships an **empty** baseline: every finding the
first full run surfaced was either fixed or carries an inline justified
suppression (see ``docs/conventions.md``).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.analysis.core import Finding

BASELINE_VERSION = 1

__all__ = ["load_baseline", "write_baseline", "apply_baseline", "BASELINE_VERSION"]


def load_baseline(path: Union[str, Path]) -> Counter:
    """Baseline file -> multiset of ``(path, rule, message)`` keys."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a baseline file (missing 'findings')")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} unsupported "
            f"(expected {BASELINE_VERSION})"
        )
    keys: Counter = Counter()
    for entry in payload["findings"]:
        keys[(entry["path"], entry["rule"], entry["message"])] += 1
    return keys


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Serialize current findings as the new grandfathered set."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], int]:
    """Split findings into (new, grandfathered) and count stale entries."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    # repro: disable=float-determinism -- integer multiset counts; order-free
    stale = sum(remaining.values())
    return new, grandfathered, stale

"""Composable experiment specification — the canonical configuration API.

An :class:`ExperimentSpec` describes one training run in any paradigm:
PTF-FedRec itself, the parameter-transmission baselines (FCF, FedMF,
MetaMF), or centralized training.  It is assembled from small sections so
that sweeps can override one concern without re-stating the others:

* :class:`ModelSpec` — which architectures the client and server run,
* :class:`ProtocolSpec` — rounds, epochs, batching and learning rates,
* :class:`PrivacySpec` — the upload defense (Section III-B2) and audit,
* :class:`DispersalSpec` — the server's dispersed dataset ``D̃_i`` (Eq. 9),
* :class:`EvalSpec` — ranking depth and in-training evaluation cadence,
* :class:`~repro.engine.EngineSpec` — *how* the per-round client work is
  executed (serial / batched / multiprocess); purely a performance choice,
  since every scheduler is bit-identical on a fixed seed,
* :class:`~repro.scenario.ScenarioSpec` — dynamic-federation fault
  injection (churn, stragglers, async aggregation, streaming arrivals);
  disabled by default, in which case runs are bit-identical to a
  scenario-free build.

Every spec round-trips losslessly through ``to_dict``/``from_dict`` and
JSON, validates its fields on construction, and names the trainer that
:func:`repro.run` should dispatch to (see
:mod:`repro.experiments.registry`):

>>> spec = ExperimentSpec(trainer="ptf", model={"embedding_dim": 16})
>>> spec.model.embedding_dim
16
>>> ExperimentSpec.from_json(spec.to_json()) == spec
True

The legacy monolithic :class:`repro.core.config.PTFConfig` is retained as
a deprecated shim whose :meth:`~repro.core.config.PTFConfig.to_spec`
produces the equivalent ``ExperimentSpec``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from repro.core.config import DEFENSE_MODES, DISPERSAL_MODES
from repro.engine.spec import EngineSpec
from repro.eval.scoring import DEFAULT_CHUNK_SIZE
from repro.scenario.spec import ScenarioSpec


def _as_int_tuple(value) -> Tuple[int, ...]:
    return tuple(int(v) for v in value)


def _as_float_pair(value) -> Tuple[float, float]:
    pair = tuple(float(v) for v in value)
    if len(pair) != 2:
        raise ValueError(f"expected a (low, high) pair, got {value!r}")
    return pair


@dataclass
class ModelSpec:
    """Which architectures the participants run.

    ``client_model`` is the public on-device model (the paper fixes NeuMF);
    ``server_model`` is the provider's hidden model for PTF-FedRec and the
    trained model for centralized runs.  The parameter-transmission
    baselines carry their architecture in the trainer name and only read
    ``embedding_dim``.
    """

    client_model: str = "neumf"
    server_model: str = "ngcf"
    embedding_dim: int = 32
    client_mlp_layers: Tuple[int, ...] = (64, 32, 16)
    server_num_layers: int = 3

    def __post_init__(self) -> None:
        self.client_mlp_layers = _as_int_tuple(self.client_mlp_layers)
        if not self.client_model or not isinstance(self.client_model, str):
            raise ValueError(f"client_model must be a non-empty string, got {self.client_model!r}")
        if not self.server_model or not isinstance(self.server_model, str):
            raise ValueError(f"server_model must be a non-empty string, got {self.server_model!r}")
        if self.embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {self.embedding_dim}")
        if self.server_num_layers <= 0:
            raise ValueError(f"server_num_layers must be positive, got {self.server_num_layers}")
        if any(width <= 0 for width in self.client_mlp_layers):
            raise ValueError(f"client_mlp_layers must be positive, got {self.client_mlp_layers}")

    def server_model_kwargs(self) -> Dict[str, Any]:
        """Extra ``create_model`` kwargs the server architecture needs.

        Single source of the per-architecture special cases (graph models
        take ``num_layers``, NeuMF takes ``mlp_layers``), shared by the PTF
        server and the centralized trainer adapter.
        """
        name = self.server_model.lower()
        kwargs: Dict[str, Any] = {}
        if name in ("ngcf", "lightgcn"):
            kwargs["num_layers"] = self.server_num_layers
        if name == "neumf":
            kwargs["mlp_layers"] = self.client_mlp_layers
        return kwargs


@dataclass
class ProtocolSpec:
    """Round structure, batching and optimization across all paradigms.

    ``rounds`` is the number of global rounds for the federated trainers
    and the number of epochs for centralized training, so per-round metric
    histories line up across paradigms.  ``local_learning_rate`` and
    ``l2_weight`` only matter for the parameter-transmission baselines and
    centralized training respectively.
    """

    rounds: int = 20
    client_fraction: float = 1.0
    client_local_epochs: int = 5
    server_epochs: int = 2
    client_batch_size: int = 64
    server_batch_size: int = 1024
    learning_rate: float = 0.001
    local_learning_rate: float = 0.05
    negative_ratio: int = 4
    l2_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(f"client_fraction must be in (0, 1], got {self.client_fraction}")
        # Zero epochs are allowed (the corresponding training leg is simply
        # skipped — a supported ablation the pre-spec config also accepted).
        if self.client_local_epochs < 0:
            raise ValueError(
                f"client_local_epochs must be non-negative, got {self.client_local_epochs}"
            )
        if self.server_epochs < 0:
            raise ValueError(f"server_epochs must be non-negative, got {self.server_epochs}")
        if self.client_batch_size <= 0:
            raise ValueError(f"client_batch_size must be positive, got {self.client_batch_size}")
        if self.server_batch_size <= 0:
            raise ValueError(f"server_batch_size must be positive, got {self.server_batch_size}")
        if self.learning_rate <= 0.0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.local_learning_rate <= 0.0:
            raise ValueError(
                f"local_learning_rate must be positive, got {self.local_learning_rate}"
            )
        if self.negative_ratio < 1:
            raise ValueError(f"negative_ratio must be >= 1, got {self.negative_ratio}")
        if self.l2_weight < 0.0:
            raise ValueError(f"l2_weight must be non-negative, got {self.l2_weight}")


@dataclass
class PrivacySpec:
    """The client-side upload defense and the privacy audit settings."""

    defense: str = "sampling+swapping"
    beta_range: Tuple[float, float] = (0.1, 1.0)
    gamma_range: Tuple[float, float] = (1.0, 4.0)
    swap_rate: float = 0.1
    ldp_scale: float = 0.2
    audit_guess_ratio: float = 0.2

    def __post_init__(self) -> None:
        self.beta_range = _as_float_pair(self.beta_range)
        self.gamma_range = _as_float_pair(self.gamma_range)
        if self.defense not in DEFENSE_MODES:
            raise ValueError(f"defense must be one of {DEFENSE_MODES}, got {self.defense!r}")
        if not 0.0 <= self.swap_rate <= 1.0:
            raise ValueError(f"swap_rate must be in [0, 1], got {self.swap_rate}")
        low, high = self.beta_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError(f"beta_range must satisfy 0 < low <= high <= 1, got {self.beta_range}")
        low, high = self.gamma_range
        if not 0.0 < low <= high:
            raise ValueError(f"gamma_range must satisfy 0 < low <= high, got {self.gamma_range}")
        if self.ldp_scale < 0:
            raise ValueError(f"ldp_scale must be non-negative, got {self.ldp_scale}")
        if not 0.0 < self.audit_guess_ratio <= 1.0:
            raise ValueError(
                f"audit_guess_ratio must be in (0, 1], got {self.audit_guess_ratio}"
            )


@dataclass
class DispersalSpec:
    """The server-dispersed dataset ``D̃_i`` (paper Section III-B3)."""

    alpha: int = 30
    mu: float = 0.5
    mode: str = "confidence+hard"
    graph_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if not 0.0 <= self.mu <= 1.0:
            raise ValueError(f"mu must be in [0, 1], got {self.mu}")
        if self.mode not in DISPERSAL_MODES:
            raise ValueError(f"dispersal_mode must be one of {DISPERSAL_MODES}, got {self.mode!r}")
        if not 0.0 <= self.graph_threshold <= 1.0:
            raise ValueError(f"graph_threshold must be in [0, 1], got {self.graph_threshold}")


@dataclass
class EvalSpec:
    """Ranking evaluation depth and in-training evaluation cadence.

    ``every`` > 0 evaluates the model every that-many rounds during
    training (via the :class:`~repro.experiments.callbacks.EvalEveryK`
    callback) so the per-round history carries ranking metrics; 0 only
    evaluates once after training.  ``verbose`` attaches a progress logger.

    ``batch_size`` sets how many users the full-ranking evaluator scores
    per chunk (see :meth:`repro.eval.RankingEvaluator.evaluate`); ``None``
    selects the per-user reference loop.  Purely an execution choice —
    both paths return equal metrics — so, like the ``engine`` section, it
    may differ freely between otherwise-identical runs.
    """

    k: int = 20
    max_users: Optional[int] = None
    every: int = 0
    audit_privacy: bool = True
    verbose: bool = False
    batch_size: Optional[int] = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.max_users is not None and self.max_users <= 0:
            raise ValueError(f"max_users must be positive or None, got {self.max_users}")
        if self.every < 0:
            raise ValueError(f"every must be non-negative, got {self.every}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive or None, got {self.batch_size}"
            )


_SECTION_TYPES: Dict[str, type] = {
    "model": ModelSpec,
    "protocol": ProtocolSpec,
    "privacy": PrivacySpec,
    "dispersal": DispersalSpec,
    "evaluation": EvalSpec,
    "engine": EngineSpec,
    "scenario": ScenarioSpec,
}

#: Flat field name -> (section name, attribute name).  Lets callers (and the
#: PTFConfig shim) address any spec field without spelling out the section.
_FLAT_FIELDS: Dict[str, Tuple[str, str]] = {
    f.name: (section, f.name)
    for section, section_cls in _SECTION_TYPES.items()
    for f in fields(section_cls)
}
_FLAT_FIELDS["dispersal_mode"] = ("dispersal", "mode")  # legacy PTFConfig name


def _section_from_dict(section_cls: type, data: Mapping[str, Any]):
    known = {f.name for f in fields(section_cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {section_cls.__name__} fields {unknown}; known fields: {sorted(known)}"
        )
    return section_cls(**dict(data))


def _jsonify(value):
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    return value


def _section_to_dict(section) -> Dict[str, Any]:
    return {f.name: _jsonify(getattr(section, f.name)) for f in fields(section)}


@dataclass
class ExperimentSpec:
    """One fully described experiment: a trainer name plus config sections.

    ``trainer`` selects the paradigm from the trainer registry (``"ptf"``,
    ``"fcf"``, ``"fedmf"``, ``"metamf"``, ``"centralized"``, or anything
    registered with :func:`repro.experiments.register_trainer`).  Sections
    may be given as instances or plain dicts:

    >>> spec = ExperimentSpec(trainer="ptf", model={"embedding_dim": 16},
    ...                       engine={"scheduler": "batched"})
    >>> spec.engine.scheduler
    'batched'
    >>> spec.replace(alpha=50).dispersal.alpha
    50

    The ``engine`` section never changes results — all schedulers are
    bit-identical on a fixed seed — so sweeps may freely mix execution
    strategies (``repro.run(spec, dataset)`` runs any of them).

    ``backend`` names the tensor backend (:mod:`repro.tensor.backend`)
    the run computes under: ``"numpy"`` (default, float64, bit-stable
    reference) or ``"numpy32"`` (float32 + fused optimizer kernels, fast).
    Unlike ``engine``, the backend *is* part of the arithmetic — resuming a
    checkpoint under a different backend is rejected.

    >>> ExperimentSpec(trainer="ptf", backend="numpy32").backend
    'numpy32'
    """

    trainer: str = "ptf"
    seed: int = 0
    backend: Optional[str] = None
    model: ModelSpec = field(default_factory=ModelSpec)
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    privacy: PrivacySpec = field(default_factory=PrivacySpec)
    dispersal: DispersalSpec = field(default_factory=DispersalSpec)
    evaluation: EvalSpec = field(default_factory=EvalSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)

    def __post_init__(self) -> None:
        for name, section_cls in _SECTION_TYPES.items():
            value = getattr(self, name)
            if isinstance(value, Mapping):
                setattr(self, name, _section_from_dict(section_cls, value))
            elif not isinstance(value, section_cls):
                raise ValueError(
                    f"{name} must be a {section_cls.__name__} or a mapping, got {type(value).__name__}"
                )
        if not isinstance(self.trainer, str) or not self.trainer:
            raise ValueError(f"trainer must be a non-empty string, got {self.trainer!r}")
        from repro.experiments.registry import available_trainers, is_registered

        if not is_registered(self.trainer):
            raise ValueError(
                f"unknown trainer {self.trainer!r}; registered trainers: {available_trainers()}"
            )
        # ``backend=None`` adopts the session's active backend (so e.g. a
        # CI leg exporting REPRO_BACKEND=numpy32 runs every default-spec
        # experiment under the fast backend); the serialized spec always
        # records a concrete, validated backend name.
        from repro.tensor.backend import resolve_backend_name

        self.backend = resolve_backend_name(self.backend)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_flat(cls, trainer: str = "ptf", seed: int = 0,
                  backend: Optional[str] = None, **overrides) -> "ExperimentSpec":
        """Build a spec from flat field names (``alpha=30, defense="ldp"``).

        Every section field can be addressed by its bare name; the legacy
        ``dispersal_mode`` alias maps to ``dispersal.mode``.  This is the
        conversion path for :meth:`repro.core.config.PTFConfig.to_spec` and
        a convenient way to write sweeps over a handful of fields.
        """
        sections: Dict[str, Dict[str, Any]] = {name: {} for name in _SECTION_TYPES}
        for key, value in overrides.items():
            target = _FLAT_FIELDS.get(key)
            if target is None:
                raise ValueError(
                    f"unknown experiment field {key!r}; known fields: {sorted(_FLAT_FIELDS)}"
                )
            section, attr = target
            sections[section][attr] = value
        return cls(trainer=trainer, seed=seed, backend=backend, **{
            name: _section_from_dict(section_cls, sections[name])
            for name, section_cls in _SECTION_TYPES.items()
        })

    def replace(self, **flat_overrides) -> "ExperimentSpec":
        """Return a copy with flat field overrides applied (sweep helper)."""
        data = self.to_dict()
        for key, value in flat_overrides.items():
            if key in ("trainer", "seed", "backend"):
                data[key] = value
                continue
            target = _FLAT_FIELDS.get(key)
            if target is None:
                raise ValueError(
                    f"unknown experiment field {key!r}; known fields: {sorted(_FLAT_FIELDS)}"
                )
            section, attr = target
            data[section][attr] = _jsonify(value)
        return ExperimentSpec.from_dict(data)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested, JSON-safe dict representation (tuples become lists)."""
        data: Dict[str, Any] = {
            "trainer": self.trainer, "seed": self.seed, "backend": self.backend,
        }
        for name in _SECTION_TYPES:
            data[name] = _section_to_dict(getattr(self, name))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys with ValueError."""
        remaining = dict(data)
        kwargs: Dict[str, Any] = {}
        for name, section_cls in _SECTION_TYPES.items():
            if name in remaining:
                kwargs[name] = _section_from_dict(section_cls, remaining.pop(name))
        for name in ("trainer", "seed", "backend"):
            if name in remaining:
                kwargs[name] = remaining.pop(name)
        if remaining:
            raise ValueError(
                f"unknown ExperimentSpec fields {sorted(remaining)}; "
                f"known: ['trainer', 'seed', 'backend'] + {sorted(_SECTION_TYPES)}"
            )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self, dataset_fingerprint: Optional[str] = None) -> str:
        """Content hash identifying the *results* this spec determines.

        The canonical (sorted-key, separator-stable) JSON of the spec is
        hashed together with the backend name and — when given — the
        dataset's SHA-256 (see :func:`repro.artifacts.dataset_fingerprint`),
        so equal fingerprints mean "same trainer, same arithmetic, same
        data": the artifact of one run can stand in for the other.  This is
        the cache key of the :mod:`repro.sweep` orchestrator.

        Fields that provably cannot change results are *excluded*, so a
        cached artifact stays valid across execution strategies:

        * the whole ``engine`` section — every scheduler, payload format
          and shard size is bit-identical on a fixed seed (the PR 2/PR 7
          contract, asserted by ``tests/test_scale_identity.py``),
        * ``evaluation.batch_size`` — chunked and per-user ranking return
          equal metrics (``tests/test_eval_batched.py``),
        * ``evaluation.verbose`` — pure logging.

        Everything else participates: a changed knob (seed, any protocol /
        privacy / dispersal / scenario field, evaluation depth or cadence,
        backend) changes the fingerprint and invalidates exactly the runs
        it touches.

        >>> a = ExperimentSpec(trainer="ptf")
        >>> b = a.replace(alpha=50)
        >>> a.fingerprint() == a.replace(scheduler="batched").fingerprint()
        True
        >>> a.fingerprint() == b.fingerprint()
        False
        """
        data = self.to_dict()
        data.pop("engine", None)
        evaluation = data.get("evaluation", {})
        evaluation.pop("batch_size", None)
        evaluation.pop("verbose", None)
        payload = {
            "spec": data,
            "backend": self.backend,
            "dataset": dataset_fingerprint,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

"""The uniform result object every registered trainer returns.

Whatever the paradigm, ``repro.run`` answers the same questions with the
same shapes: how did training progress round by round (:attr:`RunResult.history`),
how good is the final model (:attr:`RunResult.final`), what did it cost on
the wire (:attr:`RunResult.communication`), and — when the trainer exposes
uploads to audit — how much did they leak (:attr:`RunResult.privacy`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.eval.ranking import RankingResult
from repro.experiments.spec import ExperimentSpec
from repro.scenario.telemetry import ParticipationSummary


@dataclass(frozen=True)
class RoundRecord:
    """Scalar metrics logged for one global round (or centralized epoch).

    The key ``"round"`` is reserved for :attr:`round_index` in the
    serialized form, so a metric may not use it.
    """

    round_index: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "round" in self.metrics:
            raise ValueError(
                'metric name "round" is reserved for the round index; '
                "rename the metric (e.g. to 'round_metric')"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"round": self.round_index, **self.metrics}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundRecord":
        """Inverse of :meth:`to_dict`."""
        metrics = {key: value for key, value in data.items() if key != "round"}
        return cls(round_index=int(data["round"]), metrics=metrics)


@dataclass(frozen=True)
class CommunicationSummary:
    """Ledger totals; all zeros for paradigms that move no bytes."""

    total_bytes: int = 0
    num_transfers: int = 0
    average_client_round_kilobytes: float = 0.0

    @classmethod
    def from_ledger(cls, ledger) -> "CommunicationSummary":
        if ledger is None:
            return cls()
        return cls(
            total_bytes=ledger.total_bytes(),
            num_transfers=len(ledger),
            average_client_round_kilobytes=ledger.average_client_round_kilobytes(),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_bytes": self.total_bytes,
            "num_transfers": self.num_transfers,
            "average_client_round_kilobytes": self.average_client_round_kilobytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CommunicationSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total_bytes=int(data["total_bytes"]),
            num_transfers=int(data["num_transfers"]),
            average_client_round_kilobytes=float(data["average_client_round_kilobytes"]),
        )


@dataclass(frozen=True)
class PrivacySummary:
    """Top Guess Attack audit of the final round's uploads (Table V)."""

    mean_f1: float
    guess_ratio: float
    num_clients: int

    @classmethod
    def from_report(cls, report) -> "PrivacySummary":
        return cls(
            mean_f1=report.mean_f1,
            guess_ratio=report.guess_ratio,
            num_clients=report.num_clients,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mean_f1": self.mean_f1,
            "guess_ratio": self.guess_ratio,
            "num_clients": self.num_clients,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PrivacySummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            mean_f1=float(data["mean_f1"]),
            guess_ratio=float(data["guess_ratio"]),
            num_clients=int(data["num_clients"]),
        )


@dataclass(frozen=True)
class RunResult:
    """Everything one experiment produced, identically shaped per trainer."""

    trainer: str
    spec: ExperimentSpec
    rounds_completed: int
    history: List[RoundRecord]
    final: RankingResult
    communication: CommunicationSummary
    privacy: Optional[PrivacySummary]
    duration_seconds: float
    participation: Optional[ParticipationSummary] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe nested dict (the schema is identical for all trainers)."""
        data = {
            "trainer": self.trainer,
            "spec": self.spec.to_dict(),
            "rounds_completed": self.rounds_completed,
            "history": [record.to_dict() for record in self.history],
            "final": {
                **self.final.as_dict(),
                "k": self.final.k,
                "num_users_evaluated": self.final.num_users_evaluated,
            },
            "communication": self.communication.to_dict(),
            "privacy": self.privacy.to_dict() if self.privacy is not None else None,
            "duration_seconds": self.duration_seconds,
        }
        if self.participation is not None:
            data["participation"] = self.participation.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (the schema every trainer shares).

        Tolerates — and ignores — the ``provenance`` block :meth:`save`
        adds, and its absence: artifacts written before provenance was
        recorded load unchanged.
        """
        privacy = data.get("privacy")
        participation = data.get("participation")
        return cls(
            trainer=str(data["trainer"]),
            spec=ExperimentSpec.from_dict(data["spec"]),
            rounds_completed=int(data["rounds_completed"]),
            history=[RoundRecord.from_dict(entry) for entry in data["history"]],
            final=RankingResult.from_dict(data["final"]),
            communication=CommunicationSummary.from_dict(data["communication"]),
            privacy=PrivacySummary.from_dict(privacy) if privacy is not None else None,
            duration_seconds=float(data["duration_seconds"]),
            participation=(
                ParticipationSummary.from_dict(participation)
                if participation is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def provenance(self) -> Dict[str, Any]:
        """Audit fields describing where this result came from.

        Recorded by :meth:`save` so a cached artifact answers "which spec
        produced you, under which backend and repro build, and what did it
        cost" without loading anything else.  Purely observational — the
        block is ignored by :meth:`from_dict`, and artifacts written before
        it existed still load.
        """
        import repro

        return {
            "spec_fingerprint": self.spec.fingerprint(),
            "backend": self.spec.backend,
            "wall_time_seconds": self.duration_seconds,
            "repro_version": repro.__version__,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the result as a JSON document (parent dirs are created).

        The document is :meth:`to_dict` plus a :meth:`provenance` block
        (spec fingerprint, backend, wall time, repro package version) so
        saved artifacts are auditable; :meth:`from_dict` tolerates its
        absence, so pre-provenance artifacts still load.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = {**self.to_dict(), "provenance": self.provenance()}
        path.write_text(json.dumps(data, indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunResult":
        """Read a result written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def metric_series(self, name: str) -> List[float]:
        """The per-round values of one logged metric (rounds that have it)."""
        return [
            record.metrics[name] for record in self.history if name in record.metrics
        ]

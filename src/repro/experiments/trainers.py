"""Adapters that put every training paradigm behind one interface.

Each adapter builds its underlying system from an
:class:`~repro.experiments.spec.ExperimentSpec`, drives it through the
shared callback-aware ``fit`` loop, and exposes the uniform accessors
``repro.run`` needs to assemble a :class:`~repro.experiments.result.RunResult`.

Spec-to-paradigm field mapping:

==================  =====================================================
trainer             reads
==================  =====================================================
``ptf``             every section (the full protocol), including
                    ``engine`` (execution scheduler)
``fcf`` / ``fedmf`` ``protocol.rounds``, ``client_local_epochs`` (local
/ ``metamf``        epochs), ``local_learning_rate``, ``client_batch_size``,
                    ``client_fraction``, ``negative_ratio``,
                    ``model.embedding_dim``, ``seed``, ``engine``
``centralized``     ``model.server_model`` (the trained architecture),
                    ``protocol.rounds`` (epochs), ``server_batch_size``,
                    ``learning_rate``, ``negative_ratio``, ``l2_weight``,
                    ``seed`` (no per-client work, so ``engine`` is unused)
==================  =====================================================
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.centralized.trainer import CentralizedConfig, CentralizedTrainer
from repro.core.protocol import PTFFedRec
from repro.data.dataset import InteractionDataset
from repro.eval.ranking import RankingResult
from repro.experiments.registry import register_trainer
from repro.experiments.result import CommunicationSummary, PrivacySummary
from repro.experiments.spec import ExperimentSpec
from repro.federated.base import FederatedConfig
from repro.federated.fcf import FCF
from repro.federated.fedmf import FedMF
from repro.federated.metamf import MetaMF
from repro.models.factory import create_model
from repro.tensor.backend import get_backend, use_backend
from repro.utils.rng import RngFactory

#: Sentinel distinguishing "not given — use the spec's evaluation section"
#: from an explicit ``batch_size=None`` (the per-user reference path).
_UNSET = object()


class TrainerAdapter:
    """Uniform facade over one training paradigm.

    Subclasses implement :meth:`_build` (spec + dataset -> system) and
    :meth:`rounds_completed`; the rest of the interface is shared.

    The adapter owns the spec's *backend policy*: model construction,
    training and evaluation all run under ``use_backend(spec.backend)``,
    so a ``backend="numpy32"`` spec builds float32 parameters and steps
    with the fused kernels without any caller involvement.  State
    restoration (:meth:`load_state_dict`) happens under the same policy,
    which is how checkpoint restore rebuilds the original precision.
    """

    name: str = ""

    def __init__(self, spec: ExperimentSpec, dataset: InteractionDataset):
        self.spec = spec
        self.dataset = dataset
        self.backend = get_backend(spec.backend)
        with use_backend(self.backend):
            self.system = self._build()

    def _build(self):
        raise NotImplementedError

    def fit(self, callbacks: Sequence = (), rounds: Optional[int] = None) -> "TrainerAdapter":
        """Run the paradigm's training loop with the shared hooks.

        ``rounds`` limits how many *additional* rounds to run (``None``
        runs the spec's configured count); the resume path uses it to
        finish an interrupted run instead of training past the target.
        """
        with use_backend(self.backend):
            self.system.fit(rounds=rounds, callbacks=callbacks)
        return self

    def evaluate(
        self,
        k: Optional[int] = None,
        max_users: Optional[int] = None,
        batch_size=_UNSET,
    ) -> RankingResult:
        """Ranking metrics with the spec's evaluation settings as defaults.

        ``batch_size`` defaults to ``spec.evaluation.batch_size`` (chunked
        cohort scoring); pass ``None`` explicitly for the per-user
        reference loop — both paths return equal results.
        """
        evaluation = self.spec.evaluation
        with use_backend(self.backend):
            return self.system.evaluate(
                k=k if k is not None else evaluation.k,
                max_users=max_users if max_users is not None else evaluation.max_users,
                batch_size=evaluation.batch_size if batch_size is _UNSET else batch_size,
            )

    def rounds_completed(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Artifacts (checkpointing + serving)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The underlying system's full training state (checkpoint payload)."""
        return self.system.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into the underlying system."""
        with use_backend(self.backend):
            self.system.load_state_dict(state)

    def serving_model(self):
        """The trained global :class:`~repro.models.base.Recommender`.

        This is the model a deployment would answer queries with —
        ``repro.serve.Recommender`` wraps it.  PTF-FedRec serves the
        *server* model (the provider's hidden IP); the parameter-transmission
        baselines and centralized training serve their global model.
        """
        return self.system.model

    @property
    def ledger(self):
        """The communication ledger, or None for ledger-free paradigms."""
        return getattr(self.system, "ledger", None)

    def scenario_engine(self):
        """The system's :class:`~repro.scenario.ScenarioEngine`, if any.

        ``None`` for paradigms without dynamic-federation support (e.g.
        centralized training); the serving layer uses it to gate the item
        catalogue and pick cold-start fallbacks for streamed-in users.
        """
        return getattr(self.system, "scenario", None)

    def communication_summary(self) -> CommunicationSummary:
        return CommunicationSummary.from_ledger(self.ledger)

    def privacy_summary(self) -> Optional[PrivacySummary]:
        """Privacy audit of the final uploads; None when not applicable."""
        return None


@register_trainer("ptf")
class PTFTrainer(TrainerAdapter):
    """PTF-FedRec itself: the paper's parameter transmission-free protocol."""

    name = "ptf"

    def _build(self) -> PTFFedRec:
        return PTFFedRec(self.dataset, self.spec)

    def rounds_completed(self) -> int:
        return len(self.system.round_summaries)

    def serving_model(self):
        return self.system.server.model

    def privacy_summary(self) -> Optional[PrivacySummary]:
        if not self.spec.evaluation.audit_privacy:
            return None
        report = self.system.audit_privacy(guess_ratio=self.spec.privacy.audit_guess_ratio)
        return PrivacySummary.from_report(report)


class _ParameterTransmissionTrainer(TrainerAdapter):
    """Shared adapter for the FedAvg-style baselines (FCF/FedMF/MetaMF)."""

    system_cls = None

    def _build(self):
        spec = self.spec
        config = FederatedConfig(
            rounds=spec.protocol.rounds,
            local_epochs=spec.protocol.client_local_epochs,
            local_learning_rate=spec.protocol.local_learning_rate,
            embedding_dim=spec.model.embedding_dim,
            negative_ratio=spec.protocol.negative_ratio,
            batch_size=spec.protocol.client_batch_size,
            client_fraction=spec.protocol.client_fraction,
            seed=spec.seed,
            engine=spec.engine,
            backend=spec.backend,
            scenario=spec.scenario,
        )
        return self.system_cls(self.dataset, config)

    def rounds_completed(self) -> int:
        return self.system.rounds_completed


@register_trainer("fcf")
class FCFTrainer(_ParameterTransmissionTrainer):
    name = "fcf"
    system_cls = FCF


@register_trainer("fedmf")
class FedMFTrainer(_ParameterTransmissionTrainer):
    name = "fedmf"
    system_cls = FedMF


@register_trainer("metamf")
class MetaMFTrainer(_ParameterTransmissionTrainer):
    name = "metamf"
    system_cls = MetaMF


@register_trainer("centralized")
class CentralizedTrainerAdapter(TrainerAdapter):
    """Centralized training of ``model.server_model`` on the full dataset.

    One "round" is one training epoch, so per-round histories line up with
    the federated paradigms.
    """

    name = "centralized"

    def _build(self) -> CentralizedTrainer:
        spec = self.spec
        kwargs = spec.model.server_model_kwargs()
        model = create_model(
            spec.model.server_model,
            num_users=self.dataset.num_users,
            num_items=self.dataset.num_items,
            embedding_dim=spec.model.embedding_dim,
            rng=RngFactory(spec.seed).spawn("centralized-model"),
            **kwargs,
        )
        config = CentralizedConfig(
            epochs=spec.protocol.rounds,
            batch_size=spec.protocol.server_batch_size,
            learning_rate=spec.protocol.learning_rate,
            negative_ratio=spec.protocol.negative_ratio,
            l2_weight=spec.protocol.l2_weight,
            seed=spec.seed,
        )
        return CentralizedTrainer(model, self.dataset, config)

    def fit(self, callbacks: Sequence = (), rounds: Optional[int] = None) -> "TrainerAdapter":
        with use_backend(self.backend):
            self.system.fit(epochs=rounds, callbacks=callbacks)
        return self

    def rounds_completed(self) -> int:
        return len(self.system.loss_history)

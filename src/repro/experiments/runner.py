"""The single entry point: ``repro.run(spec)`` for any training paradigm."""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import debug_dataset
from repro.experiments.callbacks import Callback, EvalEveryK, ProgressLogger
from repro.experiments.registry import get_trainer
from repro.experiments.result import RoundRecord, RunResult
from repro.experiments.spec import ExperimentSpec
from repro.utils.rng import RngFactory


class _HistoryRecorder(Callback):
    """Internal callback that snapshots every round's logs for the result."""

    def __init__(self):
        self.records = []

    def on_fit_start(self, trainer) -> None:
        self.records = []

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        self.records.append(RoundRecord(round_index, dict(logs)))


def run(
    spec: Union[ExperimentSpec, Mapping],
    dataset: Optional[InteractionDataset] = None,
    callbacks: Sequence[Callback] = (),
) -> RunResult:
    """Run one experiment end-to-end and return its :class:`RunResult`.

    ``spec`` may be an :class:`ExperimentSpec` or an equivalent nested
    mapping (as produced by ``ExperimentSpec.to_dict``).  ``dataset``
    defaults to a small synthetic debug dataset seeded from ``spec.seed``,
    so a bare ``repro.run(ExperimentSpec(trainer="ptf"))`` is a complete,
    reproducible smoke experiment.

    The runner wires the spec-driven built-in callbacks (evaluation every
    ``spec.evaluation.every`` rounds, progress logging when
    ``spec.evaluation.verbose``), then the caller's ``callbacks``, and
    finally the history recorder — so user callbacks observe any metrics
    the evaluation callback logged, and the recorded history includes
    everything.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.from_dict(spec)
    factory = get_trainer(spec.trainer)
    if dataset is None:
        dataset = debug_dataset(RngFactory(spec.seed).spawn("experiment-data"))

    adapter = factory(spec, dataset)

    recorder = _HistoryRecorder()
    wired = []
    auto_eval = None
    if spec.evaluation.every > 0:
        auto_eval = EvalEveryK(
            every=spec.evaluation.every,
            k=spec.evaluation.k,
            max_users=spec.evaluation.max_users,
        )
        wired.append(auto_eval)
    wired.extend(callbacks)
    if spec.evaluation.verbose:
        wired.append(ProgressLogger(prefix=f"[{spec.trainer}] "))
    wired.append(recorder)

    start = time.perf_counter()
    adapter.fit(callbacks=wired)
    duration = time.perf_counter() - start

    rounds_completed = adapter.rounds_completed()
    # Reuse the in-training evaluation when it already covered the last
    # round — the full-ranking pass is the most expensive step of a run.
    final = None
    if auto_eval is not None and auto_eval.history:
        last_round, last_result = auto_eval.history[-1]
        if last_round == rounds_completed - 1:
            final = last_result
    if final is None:
        final = adapter.evaluate()

    return RunResult(
        trainer=spec.trainer,
        spec=spec,
        rounds_completed=rounds_completed,
        history=recorder.records,
        final=final,
        communication=adapter.communication_summary(),
        privacy=adapter.privacy_summary(),
        duration_seconds=duration,
    )

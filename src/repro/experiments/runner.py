"""The single entry point: ``repro.run(spec)`` for any training paradigm."""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import debug_dataset
from repro.experiments.callbacks import Callback, EvalEveryK, ProgressLogger
from repro.experiments.registry import get_trainer
from repro.experiments.result import RoundRecord, RunResult
from repro.experiments.spec import ExperimentSpec
from repro.utils.rng import RngFactory


class _HistoryRecorder(Callback):
    """Internal callback that snapshots every round's logs for the result."""

    def __init__(self, initial: Sequence[RoundRecord] = ()):
        self.initial = list(initial)
        self.records = list(self.initial)

    def on_fit_start(self, trainer) -> None:
        self.records = list(self.initial)

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        self.records.append(RoundRecord(round_index, dict(logs)))


def _check_resume_spec(spec: ExperimentSpec, stored: ExperimentSpec) -> None:
    """Reject resume specs that would change the checkpointed arithmetic.

    ``protocol.rounds`` may grow (resume-and-extend is the point), and the
    ``evaluation`` / ``engine`` sections are observational or purely about
    execution speed — every scheduler is bit-identical — but any other
    difference means the resumed rounds would not belong to the same run.
    The ``scenario`` section stays compared: changing the fault injection
    mid-run would change the event stream the checkpoint promised to replay.
    """
    ours, theirs = spec.to_dict(), stored.to_dict()
    for data in (ours, theirs):
        data["protocol"] = {
            key: value for key, value in data["protocol"].items() if key != "rounds"
        }
        data.pop("evaluation", None)
        data.pop("engine", None)
    if ours != theirs:
        raise ValueError(
            "resume spec does not match the checkpoint's spec (only "
            "protocol.rounds, evaluation and engine may differ); pass "
            "spec=None to resume with the stored spec"
        )


def run(
    spec: Union[ExperimentSpec, Mapping, None] = None,
    dataset: Optional[InteractionDataset] = None,
    callbacks: Sequence[Callback] = (),
    resume_from: Union[str, Path, None] = None,
) -> RunResult:
    """Run one experiment end-to-end and return its :class:`RunResult`.

    ``spec`` may be an :class:`ExperimentSpec` or an equivalent nested
    mapping (as produced by ``ExperimentSpec.to_dict``).  ``dataset``
    defaults to a small synthetic debug dataset seeded from ``spec.seed``,
    so a bare ``repro.run(ExperimentSpec(trainer="ptf"))`` is a complete,
    reproducible smoke experiment.

    ``resume_from`` continues a checkpointed run (see
    :mod:`repro.artifacts`): the trainer is rebuilt from the stored spec
    (or ``spec``, which may raise ``protocol.rounds`` to extend the run),
    its state restored, and only the remaining rounds execute.  On a fixed
    seed the resumed result is **bit-identical** to an uninterrupted run —
    history, final metrics, communication totals and model parameters all
    compare equal.  ``dataset`` defaults to the one embedded in the
    artifact, and a mismatching dataset is rejected by fingerprint.

    The runner wires the spec-driven built-in callbacks (evaluation every
    ``spec.evaluation.every`` rounds, progress logging when
    ``spec.evaluation.verbose``), then the caller's ``callbacks``, and
    finally the history recorder — so user callbacks observe any metrics
    the evaluation callback logged, and the recorded history includes
    everything.  Checkpoint callbacks (anything with ``seed_history``, like
    :class:`repro.artifacts.CheckpointEveryK`) are handed the spec and the
    resumed history prefix automatically.
    """
    checkpoint = None
    if resume_from is not None:
        from repro.artifacts import load_checkpoint

        checkpoint = load_checkpoint(resume_from)

    if spec is None:
        if checkpoint is None:
            raise ValueError("run() needs a spec (or resume_from=...)")
        spec = checkpoint.spec
    elif not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.from_dict(spec)

    if checkpoint is not None:
        _check_resume_spec(spec, checkpoint.spec)
        if dataset is None:
            dataset = checkpoint.dataset()
        adapter = checkpoint.restore(dataset, spec=spec)
        prior_history = checkpoint.history
        remaining: Optional[int] = max(
            spec.protocol.rounds - adapter.rounds_completed(), 0
        )
    else:
        factory = get_trainer(spec.trainer)
        if dataset is None:
            dataset = debug_dataset(RngFactory(spec.seed).spawn("experiment-data"))
        adapter = factory(spec, dataset)
        prior_history = []
        remaining = None

    recorder = _HistoryRecorder(initial=prior_history)
    wired = []
    auto_eval = None
    if spec.evaluation.every > 0:
        auto_eval = EvalEveryK(
            every=spec.evaluation.every,
            k=spec.evaluation.k,
            max_users=spec.evaluation.max_users,
            batch_size=spec.evaluation.batch_size,
        )
        wired.append(auto_eval)
    for callback in callbacks:
        if hasattr(callback, "seed_history"):
            if getattr(callback, "spec", None) is None:
                callback.spec = spec
            callback.seed_history(prior_history)
        wired.append(callback)
    if spec.evaluation.verbose:
        wired.append(ProgressLogger(prefix=f"[{spec.trainer}] "))
    wired.append(recorder)

    start = time.perf_counter()
    adapter.fit(callbacks=wired, rounds=remaining)
    duration = time.perf_counter() - start

    rounds_completed = adapter.rounds_completed()
    # Reuse the in-training evaluation when it already covered the last
    # round — the full-ranking pass is the most expensive step of a run.
    final = None
    if auto_eval is not None and auto_eval.history:
        last_round, last_result = auto_eval.history[-1]
        if last_round == rounds_completed - 1:
            final = last_result
    if final is None:
        final = adapter.evaluate()

    participation = None
    if spec.scenario.enabled:
        from repro.scenario.telemetry import ParticipationSummary

        participation = ParticipationSummary.from_history(recorder.records)

    return RunResult(
        trainer=spec.trainer,
        spec=spec,
        rounds_completed=rounds_completed,
        history=recorder.records,
        final=final,
        communication=adapter.communication_summary(),
        privacy=adapter.privacy_summary(),
        duration_seconds=duration,
        participation=participation,
    )

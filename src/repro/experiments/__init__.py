"""Unified experiment API: one entry point for every training paradigm.

The pieces compose bottom-up:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec` and its sections
  (:class:`ModelSpec`, :class:`ProtocolSpec`, :class:`PrivacySpec`,
  :class:`DispersalSpec`, :class:`EvalSpec`) with dict/JSON round-trips,
* :mod:`repro.experiments.registry` — ``@register_trainer`` dispatch for
  ``"ptf"``, ``"fcf"``, ``"fedmf"``, ``"metamf"`` and ``"centralized"``,
* :mod:`repro.experiments.callbacks` — the shared training hooks
  (``on_round_start/end``, ``on_fit_end``) and built-ins,
* :mod:`repro.experiments.runner` — :func:`run`, which returns the uniform
  :class:`~repro.experiments.result.RunResult` for any trainer.

Quickstart::

    import repro
    from repro.experiments import ExperimentSpec

    spec = ExperimentSpec(trainer="ptf", protocol={"rounds": 10})
    result = repro.run(spec)          # small synthetic dataset by default
    print(result.final.as_dict(), result.communication.to_dict())
"""

from repro.experiments.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    EvalEveryK,
    ProgressLogger,
)
from repro.experiments.registry import (
    available_trainers,
    create_trainer,
    get_trainer,
    is_registered,
    register_trainer,
)
from repro.experiments.result import (
    CommunicationSummary,
    PrivacySummary,
    RoundRecord,
    RunResult,
)
from repro.experiments.spec import (
    DispersalSpec,
    EngineSpec,
    EvalSpec,
    ExperimentSpec,
    ModelSpec,
    PrivacySpec,
    ProtocolSpec,
)
from repro.experiments import trainers  # noqa: F401  (registers the built-in trainers)
from repro.experiments.trainers import TrainerAdapter
from repro.experiments.runner import run

__all__ = [
    "Callback",
    "CallbackList",
    "EarlyStopping",
    "EvalEveryK",
    "ProgressLogger",
    "available_trainers",
    "create_trainer",
    "get_trainer",
    "is_registered",
    "register_trainer",
    "CommunicationSummary",
    "PrivacySummary",
    "RoundRecord",
    "RunResult",
    "DispersalSpec",
    "EngineSpec",
    "EvalSpec",
    "ExperimentSpec",
    "ModelSpec",
    "PrivacySpec",
    "ProtocolSpec",
    "TrainerAdapter",
    "run",
]

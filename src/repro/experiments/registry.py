"""Trainer registry: name -> factory dispatch for every training paradigm.

The registry is the seam that lets one entry point —
``repro.run(ExperimentSpec(trainer="..."))`` — drive PTF-FedRec, the
parameter-transmission baselines and centralized training uniformly, and
lets downstream code add new paradigms without touching the runner::

    from repro.experiments import register_trainer

    @register_trainer("my-protocol")
    class MyAdapter(TrainerAdapter):
        ...

Factories receive ``(spec, dataset)`` and must return an object with the
:class:`~repro.experiments.trainers.TrainerAdapter` interface (``fit``,
``evaluate``, ``rounds_completed``, ``communication_summary``,
``privacy_summary``).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

#: name -> factory(spec, dataset) -> trainer adapter
_TRAINER_REGISTRY: Dict[str, Callable] = {}


def register_trainer(name: str, *, replace: bool = False) -> Callable:
    """Class/function decorator that registers a trainer factory under ``name``."""

    key = name.strip().lower()
    if not key:
        raise ValueError("trainer name must be a non-empty string")

    def decorator(factory: Callable) -> Callable:
        if key in _TRAINER_REGISTRY and not replace:
            raise ValueError(
                f"trainer {key!r} is already registered; pass replace=True to override"
            )
        _TRAINER_REGISTRY[key] = factory
        return factory

    return decorator


def get_trainer(name: str) -> Callable:
    """Look up a trainer factory, raising KeyError with the available names."""
    key = name.strip().lower()
    if key not in _TRAINER_REGISTRY:
        raise KeyError(
            f"unknown trainer {name!r}; registered trainers: {available_trainers()}"
        )
    return _TRAINER_REGISTRY[key]


def is_registered(name: str) -> bool:
    """True when ``name`` resolves to a registered trainer."""
    return name.strip().lower() in _TRAINER_REGISTRY


def available_trainers() -> Tuple[str, ...]:
    """Sorted names of every registered trainer."""
    return tuple(sorted(_TRAINER_REGISTRY))


def create_trainer(spec, dataset):
    """Instantiate the trainer adapter named by ``spec.trainer``."""
    return get_trainer(spec.trainer)(spec, dataset)

"""Training callbacks shared by every trainer paradigm.

All five registered trainers drive their fit loops through the same hook
protocol: ``on_fit_start``, ``on_round_start``, ``on_round_end`` (which
receives a mutable ``logs`` dict of that round's scalar metrics) and
``on_fit_end``.  A callback may set ``stop_training = True`` to end the
run early; the loops check :attr:`CallbackList.should_stop` after every
round.

Built-ins:

* :class:`EvalEveryK` — run ranking evaluation every ``every`` rounds and
  merge the metrics into the round's logs,
* :class:`EarlyStopping` — stop when a logged metric (NDCG by default)
  plateaus,
* :class:`ProgressLogger` — print one line per round.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.eval.scoring import DEFAULT_CHUNK_SIZE


class Callback:
    """Base class; override any subset of the hooks."""

    #: Set to True to request the fit loop to stop after the current round.
    stop_training: bool = False

    def on_fit_start(self, trainer) -> None:
        """Called once before the first round."""

    def on_round_start(self, trainer, round_index: int) -> None:
        """Called before each round/epoch."""

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        """Called after each round/epoch with that round's scalar metrics."""

    def on_fit_end(self, trainer) -> None:
        """Called once after the last round (early-stopped or not)."""


class CallbackList(Callback):
    """Dispatches every hook to an ordered collection of callbacks."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None):
        self.callbacks: List[Callback] = list(callbacks) if callbacks is not None else []

    @property
    def should_stop(self) -> bool:
        return any(getattr(callback, "stop_training", False) for callback in self.callbacks)

    def on_fit_start(self, trainer) -> None:
        for callback in self.callbacks:
            callback.on_fit_start(trainer)

    def on_round_start(self, trainer, round_index: int) -> None:
        for callback in self.callbacks:
            callback.on_round_start(trainer, round_index)

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        for callback in self.callbacks:
            callback.on_round_end(trainer, round_index, logs)

    def on_fit_end(self, trainer) -> None:
        for callback in self.callbacks:
            callback.on_fit_end(trainer)


class EvalEveryK(Callback):
    """Evaluate ranking quality every ``every`` rounds during training.

    The metrics are merged into the round's ``logs`` (keys ``recall``,
    ``ndcg``, ``precision``, ``hit_rate``) so downstream callbacks such as
    :class:`EarlyStopping` and the run-history recorder see them, and the
    ``(round_index, RankingResult)`` pairs accumulate in :attr:`history`.

    ``batch_size`` is forwarded to the trainer's full-ranking evaluation
    (chunked cohort scoring by default; ``None`` selects the per-user
    reference loop — equal results either way).
    """

    def __init__(
        self,
        every: int = 1,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive or None, got {batch_size}")
        self.every = every
        self.k = k
        self.max_users = max_users
        self.batch_size = batch_size
        self.history: List[Tuple[int, object]] = []

    def on_fit_start(self, trainer) -> None:
        self.history = []

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        if (round_index + 1) % self.every != 0:
            return
        result = trainer.evaluate(
            k=self.k, max_users=self.max_users, batch_size=self.batch_size
        )
        logs["recall"] = result.recall
        logs["ndcg"] = result.ndcg
        logs["precision"] = result.precision
        logs["hit_rate"] = result.hit_rate
        self.history.append((round_index, result))


class EarlyStopping(Callback):
    """Stop training when a logged metric stops improving.

    Rounds whose logs do not carry ``metric`` (e.g. rounds between two
    :class:`EvalEveryK` evaluations) are ignored, so patience counts
    *observations*, not rounds.
    """

    def __init__(
        self,
        metric: str = "ndcg",
        patience: int = 3,
        min_delta: float = 0.0,
        mode: str = "max",
    ):
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.metric = metric
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_round: Optional[int] = None

    def on_fit_start(self, trainer) -> None:
        self.best = None
        self.wait = 0
        self.stopped_round = None
        self.stop_training = False

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        value = logs.get(self.metric)
        if value is None:
            return
        if self._improved(float(value)):
            self.best = float(value)
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            self.stop_training = True
            self.stopped_round = round_index


class ProgressLogger(Callback):
    """Print one line per round with that round's logged metrics."""

    def __init__(self, print_fn: Callable[[str], None] = print, prefix: str = ""):
        self.print_fn = print_fn
        self.prefix = prefix

    def on_round_end(self, trainer, round_index: int, logs: Dict[str, float]) -> None:
        parts = []
        for key, value in logs.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.4f}")
            else:
                parts.append(f"{key}={value}")
        self.print_fn(f"{self.prefix}round {round_index:3d}: " + " ".join(parts))

    def on_fit_end(self, trainer) -> None:
        name = getattr(trainer, "name", type(trainer).__name__)
        self.print_fn(f"{self.prefix}{name}: training finished")

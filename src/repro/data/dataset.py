"""Implicit-feedback interaction dataset with train/test splits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics matching the paper's Table II columns."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    average_profile_length: float
    density: float

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as a flat dict (used by the Table II bench)."""
        return {
            "dataset": self.name,
            "#Users": self.num_users,
            "#Items": self.num_items,
            "#Interactions": self.num_interactions,
            "Average Length": round(self.average_profile_length, 1),
            "Density": f"{100.0 * self.density:.2f}%",
        }


class InteractionDataset:
    """Implicit user-item interactions split into train and test sets.

    All interactions are positive (``r = 1``); negatives are sampled from
    non-interacted items at training and evaluation time, following the
    paper's protocol (1:4 negative sampling, 8:2 train/test split).
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        train_pairs: Sequence[Tuple[int, int]],
        test_pairs: Sequence[Tuple[int, int]] = (),
        name: str = "dataset",
    ):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.name = name
        self._train_by_user = self._group_by_user(train_pairs, "train")
        self._test_by_user = self._group_by_user(test_pairs, "test")
        self._train_pairs = np.asarray(
            sorted((u, i) for u, items in self._train_by_user.items() for i in items),
            dtype=np.int64,
        ).reshape(-1, 2)
        self._test_pairs = np.asarray(
            sorted((u, i) for u, items in self._test_by_user.items() for i in items),
            dtype=np.int64,
        ).reshape(-1, 2)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _group_by_user(
        self, pairs: Sequence[Tuple[int, int]], label: str
    ) -> Dict[int, np.ndarray]:
        grouped: Dict[int, set] = {}
        for user, item in pairs:
            user = int(user)
            item = int(item)
            if not 0 <= user < self.num_users:
                raise ValueError(f"{label} pair has user {user} outside [0, {self.num_users})")
            if not 0 <= item < self.num_items:
                raise ValueError(f"{label} pair has item {item} outside [0, {self.num_items})")
            grouped.setdefault(user, set()).add(item)
        return {user: np.array(sorted(items), dtype=np.int64) for user, items in grouped.items()}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def users(self) -> List[int]:
        """Users that have at least one training interaction."""
        return sorted(self._train_by_user)

    @property
    def num_train_interactions(self) -> int:
        return int(self._train_pairs.shape[0])

    @property
    def num_test_interactions(self) -> int:
        return int(self._test_pairs.shape[0])

    @property
    def train_pairs(self) -> np.ndarray:
        """All training ``(user, item)`` pairs as an ``(N, 2)`` array."""
        return self._train_pairs

    @property
    def test_pairs(self) -> np.ndarray:
        """All test ``(user, item)`` pairs as an ``(N, 2)`` array."""
        return self._test_pairs

    def train_items(self, user: int) -> np.ndarray:
        """Items the user interacted with in the training split."""
        return self._train_by_user.get(int(user), np.empty(0, dtype=np.int64))

    def test_items(self, user: int) -> np.ndarray:
        """Items held out for the user in the test split."""
        return self._test_by_user.get(int(user), np.empty(0, dtype=np.int64))

    def train_matrix(self) -> sp.csr_matrix:
        """Binary user-item training matrix in CSR format."""
        if self._train_pairs.size == 0:
            return sp.csr_matrix((self.num_users, self.num_items))
        rows = self._train_pairs[:, 0]
        cols = self._train_pairs[:, 1]
        values = np.ones(len(rows))
        return sp.csr_matrix((values, (rows, cols)), shape=(self.num_users, self.num_items))

    def stats(self) -> DatasetStats:
        """Statistics over the full dataset (train + test)."""
        total = self.num_train_interactions + self.num_test_interactions
        per_user = total / max(self.num_users, 1)
        density = total / float(self.num_users * self.num_items)
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_interactions=total,
            average_profile_length=per_user,
            density=density,
        )

    def item_popularity(self) -> np.ndarray:
        """Training interaction count per item (used by popularity baselines)."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        if self._train_pairs.size:
            np.add.at(counts, self._train_pairs[:, 1], 1)
        return counts

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    @staticmethod
    def from_pairs(
        num_users: int,
        num_items: int,
        pairs: Sequence[Tuple[int, int]],
        train_ratio: float = 0.8,
        rng: Optional[np.random.Generator] = None,
        name: str = "dataset",
    ) -> "InteractionDataset":
        """Split raw pairs per user into train/test with ``train_ratio``.

        Each user keeps at least one training interaction; users with a
        single interaction contribute no test item (they cannot be ranked).
        """
        if not 0.0 < train_ratio < 1.0:
            raise ValueError(f"train_ratio must be in (0, 1), got {train_ratio}")
        rng = rng if rng is not None else seeded_rng()
        by_user: Dict[int, List[int]] = {}
        for user, item in pairs:
            by_user.setdefault(int(user), []).append(int(item))
        train_pairs: List[Tuple[int, int]] = []
        test_pairs: List[Tuple[int, int]] = []
        for user, items in by_user.items():
            items = np.array(sorted(set(items)), dtype=np.int64)
            rng.shuffle(items)
            cutoff = max(1, int(round(train_ratio * len(items))))
            cutoff = min(cutoff, len(items))
            train_pairs.extend((user, item) for item in items[:cutoff])
            test_pairs.extend((user, item) for item in items[cutoff:])
        return InteractionDataset(num_users, num_items, train_pairs, test_pairs, name=name)

    def subset_users(self, users: Iterable[int], name: Optional[str] = None) -> "InteractionDataset":
        """Restrict the dataset to a subset of users (item space unchanged)."""
        keep = set(int(u) for u in users)
        train = [(u, i) for u, i in self._train_pairs if u in keep]
        test = [(u, i) for u, i in self._test_pairs if u in keep]
        return InteractionDataset(
            self.num_users, self.num_items, train, test, name=name or f"{self.name}-subset"
        )

    def __repr__(self) -> str:
        return (
            f"InteractionDataset(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, train={self.num_train_interactions}, "
            f"test={self.num_test_interactions})"
        )

"""Batch iteration and on-disk dataset loading."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.utils.rng import seeded_rng


class BatchIterator:
    """Shuffled mini-batch iterator over parallel arrays.

    Used by the centralized trainers and the PTF-FedRec server (batch size
    1024 in the paper) to iterate ``(users, items, labels)`` triples.
    """

    def __init__(
        self,
        *arrays: np.ndarray,
        batch_size: int = 256,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if not arrays:
            raise ValueError("BatchIterator needs at least one array")
        lengths = {len(array) for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays must share a length, got {sorted(lengths)}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.arrays = tuple(np.asarray(array) for array in arrays)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = rng if rng is not None else seeded_rng()

    def __len__(self) -> int:
        total = len(self.arrays[0])
        return (total + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        total = len(self.arrays[0])
        order = self._rng.permutation(total) if self.shuffle else np.arange(total)
        for start in range(0, total, self.batch_size):
            index = order[start: start + self.batch_size]
            yield tuple(array[index] for array in self.arrays)


def load_movielens_file(
    path: Union[str, Path],
    train_ratio: float = 0.8,
    rng: Optional[np.random.Generator] = None,
    positive_threshold: float = 1.0,
) -> InteractionDataset:
    """Load a MovieLens ``u.data``-style file (user, item, rating, timestamp).

    Ratings at or above ``positive_threshold`` are converted to implicit
    positives, matching the paper's preprocessing ("transform all positive
    ratings to r=1").  User and item ids are remapped to a dense 0-based
    index space.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"MovieLens file not found: {path}")
    users_raw = []
    items_raw = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            fields = line.replace(",", "\t").split("\t")
            if len(fields) < 3:
                raise ValueError(f"malformed MovieLens line: {line!r}")
            rating = float(fields[2])
            if rating < positive_threshold:
                continue
            users_raw.append(fields[0])
            items_raw.append(fields[1])
    user_index = {raw: index for index, raw in enumerate(sorted(set(users_raw)))}
    item_index = {raw: index for index, raw in enumerate(sorted(set(items_raw)))}
    pairs = [(user_index[u], item_index[i]) for u, i in zip(users_raw, items_raw)]
    return InteractionDataset.from_pairs(
        num_users=len(user_index),
        num_items=len(item_index),
        pairs=pairs,
        train_ratio=train_ratio,
        rng=rng,
        name=path.stem,
    )

"""Datasets, synthetic workload generators, splits and samplers.

The paper evaluates on MovieLens-100K, Steam-200K and Gowalla.  Those
archives cannot be downloaded in this offline environment, so
:mod:`repro.data.synthetic` generates interaction datasets that match the
published statistics (Table II): number of users, items, interactions,
average profile length and density, with a long-tailed item popularity
distribution.  A loader for the on-disk MovieLens ``u.data`` format is
included for users who do have the real files.
"""

from repro.data.dataset import DatasetStats, InteractionDataset
from repro.data.synthetic import (
    SyntheticSpec,
    generate_dataset,
    movielens_100k,
    steam_200k,
    gowalla,
    debug_dataset,
    PAPER_SPECS,
    MINI_SPECS,
)
from repro.data.sampling import (
    sample_negative_items,
    build_pointwise_samples,
    UserBatchSampler,
)
from repro.data.loaders import BatchIterator, load_movielens_file

__all__ = [
    "DatasetStats",
    "InteractionDataset",
    "SyntheticSpec",
    "generate_dataset",
    "movielens_100k",
    "steam_200k",
    "gowalla",
    "debug_dataset",
    "PAPER_SPECS",
    "MINI_SPECS",
    "sample_negative_items",
    "build_pointwise_samples",
    "UserBatchSampler",
    "BatchIterator",
    "load_movielens_file",
]

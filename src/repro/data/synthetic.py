"""Synthetic interaction generators matched to the paper's datasets.

The paper evaluates on MovieLens-100K, Steam-200K and Gowalla (Table II).
Those files cannot be downloaded here, so this module synthesizes datasets
with the same first-order statistics:

* number of users / items / interactions (and therefore density and
  average profile length),
* a long-tailed (Zipf-like) item popularity distribution, which is the
  property that drives the behaviour of negative sampling, the Top Guess
  Attack and the confidence-based dispersal,
* heterogeneous per-user activity (some heavy users, many light users).

Every preset accepts a ``scale`` factor so that the full-size statistical
twins and laptop-sized miniatures come from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class SyntheticSpec:
    """Target statistics for a synthetic dataset.

    ``popularity_exponent`` shapes the item long tail (larger = more skew)
    and ``activity_concentration`` shapes per-user profile lengths (the
    lognormal sigma; larger = heavier-tailed users).
    """

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    popularity_exponent: float = 1.0
    activity_concentration: float = 0.8

    def scaled(self, scale: float) -> "SyntheticSpec":
        """Return a smaller (or larger) version of the spec with the same density.

        Users and items scale linearly with ``scale``; interactions scale
        quadratically so that the density — the statistic the paper links
        to the federated/centralized performance gap — is preserved.  A
        floor of four interactions per user keeps tiny presets trainable.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        num_users = max(8, int(round(self.num_users * scale)))
        num_items = max(16, int(round(self.num_items * scale)))
        num_interactions = max(
            4 * num_users, int(round(self.num_interactions * scale * scale))
        )
        num_interactions = min(num_interactions, num_users * num_items)
        return replace(
            self,
            name=f"{self.name}" if scale == 1.0 else f"{self.name}-x{scale:g}",
            num_users=num_users,
            num_items=num_items,
            num_interactions=num_interactions,
        )


#: Specifications matching Table II of the paper.
PAPER_SPECS: Dict[str, SyntheticSpec] = {
    "movielens-100k": SyntheticSpec(
        name="movielens-100k",
        num_users=943,
        num_items=1682,
        num_interactions=100_000,
        popularity_exponent=1.05,
        activity_concentration=0.9,
    ),
    "steam-200k": SyntheticSpec(
        name="steam-200k",
        num_users=3753,
        num_items=5134,
        num_interactions=114_713,
        popularity_exponent=1.15,
        activity_concentration=1.0,
    ),
    "gowalla": SyntheticSpec(
        name="gowalla",
        num_users=8392,
        num_items=10_068,
        num_interactions=391_238,
        popularity_exponent=1.1,
        activity_concentration=0.9,
    ),
}


#: Miniature presets used by the benchmark harness.  Full statistical twins
#: are too slow for a single-core benchmark run, so these keep the *ordering*
#: of the paper's datasets (MovieLens densest and smallest, Gowalla sparsest
#: and largest) at a size where every table/figure regenerates in minutes.
MINI_SPECS: Dict[str, SyntheticSpec] = {
    "movielens-mini": SyntheticSpec(
        name="movielens-mini",
        num_users=100,
        num_items=150,
        num_interactions=2000,
        popularity_exponent=1.05,
        activity_concentration=0.9,
    ),
    "steam-mini": SyntheticSpec(
        name="steam-mini",
        num_users=150,
        num_items=400,
        num_interactions=1800,
        popularity_exponent=1.15,
        activity_concentration=1.0,
    ),
    "gowalla-mini": SyntheticSpec(
        name="gowalla-mini",
        num_users=200,
        num_items=600,
        num_interactions=2000,
        popularity_exponent=1.1,
        activity_concentration=0.9,
    ),
}


def generate_dataset(
    spec: SyntheticSpec,
    rng: Optional[np.random.Generator] = None,
    train_ratio: float = 0.8,
) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` matching ``spec``.

    The generator draws per-user profile sizes from a lognormal
    distribution rescaled to hit the target interaction count, then fills
    each profile by sampling items without replacement from a Zipf
    popularity distribution.  The result is split 8:2 per user, matching
    the paper's protocol.
    """
    rng = rng if rng is not None else seeded_rng()

    profile_sizes = _draw_profile_sizes(spec, rng)
    popularity = _item_popularity_weights(spec)

    pairs = []
    for user in range(spec.num_users):
        size = int(profile_sizes[user])
        if size <= 0:
            continue
        size = min(size, spec.num_items)
        items = rng.choice(spec.num_items, size=size, replace=False, p=popularity)
        pairs.extend((user, int(item)) for item in items)

    return InteractionDataset.from_pairs(
        num_users=spec.num_users,
        num_items=spec.num_items,
        pairs=pairs,
        train_ratio=train_ratio,
        rng=rng,
        name=spec.name,
    )


def movielens_100k(
    rng: Optional[np.random.Generator] = None, scale: float = 1.0
) -> InteractionDataset:
    """MovieLens-100K statistical twin (943 users, 1682 items, 100k ratings)."""
    return generate_dataset(PAPER_SPECS["movielens-100k"].scaled(scale), rng=rng)


def steam_200k(
    rng: Optional[np.random.Generator] = None, scale: float = 1.0
) -> InteractionDataset:
    """Steam-200K statistical twin (3753 users, 5134 games, 114k interactions)."""
    return generate_dataset(PAPER_SPECS["steam-200k"].scaled(scale), rng=rng)


def gowalla(
    rng: Optional[np.random.Generator] = None, scale: float = 1.0
) -> InteractionDataset:
    """Gowalla (20-core) statistical twin (8392 users, 10k locations, 391k check-ins)."""
    return generate_dataset(PAPER_SPECS["gowalla"].scaled(scale), rng=rng)


def debug_dataset(
    rng: Optional[np.random.Generator] = None,
    num_users: int = 30,
    num_items: int = 60,
    num_interactions: int = 600,
) -> InteractionDataset:
    """A tiny dataset for unit tests and smoke benches."""
    spec = SyntheticSpec(
        name="debug",
        num_users=num_users,
        num_items=num_items,
        num_interactions=num_interactions,
        popularity_exponent=1.0,
        activity_concentration=0.6,
    )
    return generate_dataset(spec, rng=rng)


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _draw_profile_sizes(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-user interaction counts that sum (approximately) to the target."""
    raw = rng.lognormal(mean=0.0, sigma=spec.activity_concentration, size=spec.num_users)
    raw = raw / raw.sum() * spec.num_interactions
    sizes = np.maximum(2, np.round(raw)).astype(np.int64)
    sizes = np.minimum(sizes, spec.num_items)
    # Adjust the largest users so the total lands close to the target
    # without exceeding the per-user item limit.
    deficit = spec.num_interactions - int(sizes.sum())
    if deficit > 0:
        order = np.argsort(-sizes)
        for user in order:
            if deficit <= 0:
                break
            headroom = spec.num_items - sizes[user]
            add = min(headroom, deficit)
            sizes[user] += add
            deficit -= add
    return sizes


def _item_popularity_weights(spec: SyntheticSpec) -> np.ndarray:
    """Zipf-like item sampling weights, normalized to a distribution."""
    ranks = np.arange(1, spec.num_items + 1, dtype=np.float64)
    weights = ranks ** (-spec.popularity_exponent)
    return weights / weights.sum()

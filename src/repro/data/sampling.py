"""Negative sampling and pointwise training-set construction.

The paper's protocol (Section IV-A): positive ratings become ``r = 1`` and
negatives are drawn from non-interacted items at a 1:4 ratio.  Both the
centralized trainers and the per-client local training in the federated
frameworks use these helpers, so every method sees the same sampling
distribution.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.utils.rng import seeded_rng


def sample_negative_items(
    num_items: int,
    positive_items: np.ndarray,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_samples`` items not present in ``positive_items``.

    Sampling is with replacement across draws but never returns a positive
    item.  When the user has interacted with nearly the whole catalogue the
    returned array may contain repeats, mirroring standard recommender
    practice.
    """
    if num_samples <= 0:
        return np.empty(0, dtype=np.int64)
    positives = np.asarray(positive_items, dtype=np.int64).ravel()
    # Boolean lookup table over the catalogue: exact membership, O(1) per
    # draw (the former per-item Python loop dominated sampling time).
    is_positive = np.zeros(num_items, dtype=bool)
    is_positive[positives] = True
    available = num_items - int(np.count_nonzero(is_positive))
    if available <= 0:
        raise ValueError("user has interacted with every item; cannot sample negatives")
    samples = np.empty(num_samples, dtype=np.int64)
    filled = 0
    while filled < num_samples:
        draw = rng.integers(0, num_items, size=2 * (num_samples - filled))
        accepted = draw[~is_positive[draw]][: num_samples - filled]
        samples[filled: filled + len(accepted)] = accepted
        filled += len(accepted)
    return samples


def build_pointwise_samples(
    dataset: InteractionDataset,
    negative_ratio: int = 4,
    rng: Optional[np.random.Generator] = None,
    users: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(users, items, labels)`` arrays for pointwise BCE training.

    For every training positive of every user, ``negative_ratio`` fresh
    negatives are drawn.  The centralized baselines call this once per
    epoch; each federated client calls it on its own rows only.
    """
    rng = rng if rng is not None else seeded_rng()
    users = list(users) if users is not None else dataset.users
    user_column: List[int] = []
    item_column: List[int] = []
    label_column: List[float] = []
    for user in users:
        positives = dataset.train_items(user)
        if positives.size == 0:
            continue
        negatives = sample_negative_items(
            dataset.num_items, positives, negative_ratio * positives.size, rng
        )
        user_column.extend([user] * (positives.size + negatives.size))
        item_column.extend(positives.tolist())
        item_column.extend(negatives.tolist())
        label_column.extend([1.0] * positives.size)
        label_column.extend([0.0] * negatives.size)
    return (
        np.asarray(user_column, dtype=np.int64),
        np.asarray(item_column, dtype=np.int64),
        np.asarray(label_column, dtype=np.float64),
    )


class UserBatchSampler:
    """Yields shuffled per-user pointwise batches for local (on-device) training.

    Each federated client owns a single user's data, so its batches come
    from this sampler with ``batch_size`` 64 (the paper's client batch
    size).
    """

    def __init__(
        self,
        num_items: int,
        positive_items: np.ndarray,
        negative_ratio: int = 4,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.num_items = num_items
        self.positive_items = np.asarray(positive_items, dtype=np.int64)
        self.negative_ratio = negative_ratio
        self.batch_size = batch_size
        self._rng = rng if rng is not None else seeded_rng()

    def epoch(
        self,
        extra_items: Optional[np.ndarray] = None,
        extra_labels: Optional[np.ndarray] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(items, labels)`` batches for one local epoch.

        ``extra_items``/``extra_labels`` carry the server-provided soft
        labels ``D̃_i`` so they are mixed into the same shuffled stream as
        the private data (Eq. 3 of the paper trains on ``D_i ∪ D̃_i``).
        """
        negatives = sample_negative_items(
            self.num_items,
            self.positive_items,
            self.negative_ratio * self.positive_items.size,
            self._rng,
        )
        items = np.concatenate([self.positive_items, negatives])
        labels = np.concatenate([
            np.ones(self.positive_items.size),
            np.zeros(negatives.size),
        ])
        if extra_items is not None and len(extra_items):
            items = np.concatenate([items, np.asarray(extra_items, dtype=np.int64)])
            labels = np.concatenate([labels, np.asarray(extra_labels, dtype=np.float64)])
        order = self._rng.permutation(len(items))
        items = items[order]
        labels = labels[order]
        for start in range(0, len(items), self.batch_size):
            stop = start + self.batch_size
            yield items[start:stop], labels[start:stop]

    def sampled_training_items(self) -> Dict[str, np.ndarray]:
        """Return one epoch's trained item pool split into positives/negatives.

        This is the pool ``V_i^t`` from which the client selects its upload
        set ``V̂_i^t`` (Section III-B2).
        """
        negatives = sample_negative_items(
            self.num_items,
            self.positive_items,
            self.negative_ratio * self.positive_items.size,
            self._rng,
        )
        return {"positives": self.positive_items.copy(), "negatives": np.unique(negatives)}

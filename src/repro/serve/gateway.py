"""The traffic-facing request gateway: micro-batching, hot swap, SLOs.

:class:`repro.serve.Recommender` answers a *pre-batched* cohort fast —
one cohort score pass instead of ``U`` per-user round-trips — but live
traffic arrives as concurrent single-user requests.  ``ServingGateway``
is the layer in between: client threads call :meth:`recommend` /
:meth:`scores` (or enqueue :class:`GatewayTicket`\\ s via :meth:`submit`),
a single dispatcher thread coalesces whatever is waiting into one cohort
per *tick* (bounded by ``max_batch`` and ``max_wait_ms``), answers the
whole tick through the facade's batched paths, and fans the rows back out
to the individual callers.

**Identity contract.**  Every tick is answered by exactly the direct
``Recommender`` call a caller holding the coalesced cohort would have
made — one :meth:`Recommender.scores` pass per tick for score requests
and one :meth:`Recommender.recommend` per ``(k, exclude_seen)`` group —
so the fanned-out results are bit-identical (``==``) to that direct
batched call, and each request's ranked top-k equals its own direct
per-user query (``tests/test_serve_gateway.py`` asserts both for every
servable architecture, under both tensor backends).

**Hot swap.**  :meth:`swap` restores a schema-v2 checkpoint into a fresh
``Recommender`` on a background loader thread while the old model keeps
serving, then the dispatcher flips the service reference atomically
*between* ticks.  A tick is answered entirely by one service snapshot, so
a request sees only-old or only-new scores — never a torn mix — and the
flip retires the old LRU cache, popularity fallback and item mask in one
step (in-place single-threaded deployments can use
:meth:`Recommender.reload` instead).

**SLOs.**  The queue is bounded (``max_queue``; overflow is answered
immediately with a 503-style :class:`Rejected`) and each request carries
a deadline (``deadline_ms``); requests whose deadline has passed when
their tick is dispatched are shed deterministically instead of consuming
a score pass.  The shedding clock is injectable (``clock=``), so overload
behaviour is replayable under a seeded fake clock.

**Telemetry.**  :meth:`stats` snapshots a :class:`GatewayStats` —
p50/p99/max latency, QPS, the batch-size histogram, cache/cold/shed
counters and the swap count — with a ``to_dict`` ready for the JSON
benchmark artifacts the CI jobs upload.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Union

# repro: disable=backend-purity -- the serving boundary speaks ndarray rows; scoring goes through the facade
import numpy as np

from repro.serve.recommender import Recommender

#: Batching-window wait slice: if no request arrives for one slice the
#: dispatcher stops holding the tick open (every in-flight client is
#: already queued) instead of sleeping out the rest of ``max_wait_ms``.
_QUIET_SLICE_S = 0.0005

__all__ = ["ServingGateway", "GatewayTicket", "GatewayStats", "Rejected"]


@dataclass(frozen=True)
class Rejected:
    """A 503-style shed decision, returned *as the result* of a request.

    Overload is an expected operating mode, not an exception: callers
    pattern-match on the result (``isinstance(result, Rejected)``) the way
    an HTTP client branches on a status code.

    ``reason`` is one of ``"deadline"`` (the request's latency SLO expired
    before its tick was dispatched), ``"queue_full"`` (the bounded queue
    was at ``max_queue`` on arrival) or ``"shutdown"`` (the gateway
    stopped while the request was queued).
    """

    reason: str
    status: int = 503

    def __bool__(self) -> bool:  # a shed request is a falsy result
        return False


class GatewayTicket:
    """One in-flight request: resolves to rows/ids or a :class:`Rejected`.

    Returned by :meth:`ServingGateway.submit`; :meth:`result` blocks until
    the dispatcher resolves the ticket (scored, shed, or failed — a
    scoring error re-raises here, in the caller's thread).
    """

    __slots__ = (
        "user", "k", "kind", "exclude_seen", "submitted_at", "deadline",
        "_arrived_real", "_event", "_outcome", "_error",
    )

    def __init__(self, user: int, k: int, kind: str, exclude_seen: bool,
                 submitted_at: float, deadline: Optional[float]):
        self.user = user
        self.k = k
        self.kind = kind
        self.exclude_seen = exclude_seen
        self.submitted_at = submitted_at
        self.deadline = deadline
        self._arrived_real = time.monotonic()
        self._event = threading.Event()
        self._outcome: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """The request's outcome: ndarray rows/ids, or :class:`Rejected`."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"gateway request for user {self.user} still pending after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._outcome

    def _resolve(self, outcome: Any) -> None:
        self._outcome = outcome
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass(frozen=True)
class GatewayStats:
    """One telemetry snapshot of a running gateway (see ``to_dict``)."""

    completed: int
    failed: int
    shed_deadline: int
    shed_queue_full: int
    shed_shutdown: int
    ticks: int
    swaps: int
    qps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_max_ms: float
    mean_batch: float
    #: tick batch size -> number of ticks dispatched at that size.
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cold_hits: int = 0
    window_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (histogram keys become strings in json)."""
        return {
            "completed": self.completed,
            "failed": self.failed,
            "shed": {
                "deadline": self.shed_deadline,
                "queue_full": self.shed_queue_full,
                "shutdown": self.shed_shutdown,
            },
            "ticks": self.ticks,
            "swaps": self.swaps,
            "qps": round(self.qps, 1),
            "latency_ms": {
                "p50": round(self.latency_p50_ms, 3),
                "p99": round(self.latency_p99_ms, 3),
                "max": round(self.latency_max_ms, 3),
            },
            "mean_batch": round(self.mean_batch, 2),
            "batch_histogram": dict(sorted(self.batch_histogram.items())),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "cold": self.cold_hits,
            },
            "window_seconds": round(self.window_seconds, 3),
        }


class ServingGateway:
    """Async micro-batching front door over a :class:`Recommender`.

    >>> # doctest illustration only — see examples/serving_gateway.py
    >>> # gateway = ServingGateway(service, max_batch=64, max_wait_ms=2.0)
    >>> # with gateway:                      # starts the dispatcher thread
    >>> #     ids = gateway.recommend(user=3, k=10)

    Knobs:

    ``max_batch``
        Upper bound on requests coalesced into one tick.
    ``max_wait_ms``
        How long a tick may hold its *oldest* waiting request to let a
        batch fill; under load ticks dispatch full and never wait.
    ``deadline_ms``
        Per-request latency SLO.  ``None`` disables shedding.
    ``max_queue``
        Bound on the waiting-request queue; arrivals beyond it are
        answered ``Rejected("queue_full")`` immediately — overload sheds
        instead of queueing without bound.
    ``clock``
        Time source for deadlines/latency accounting (default
        ``time.perf_counter``).  Injectable so shedding is reproducible
        under a fake clock; the batching cadence itself always uses real
        time, it is an execution detail that never changes results.

    Deterministic (single-threaded) operation: never call :meth:`start`,
    enqueue with :meth:`submit`, and drive ticks explicitly with
    :meth:`run_tick` — the concurrency suite and the seeded-clock shed
    tests run the gateway exactly this way.
    """

    def __init__(
        self,
        service: Recommender,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        deadline_ms: Optional[float] = None,
        max_queue: int = 10_000,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.deadline_s = None if deadline_ms is None else float(deadline_ms) / 1000.0
        self.max_queue = int(max_queue)
        self._clock = clock
        self._service = service
        self._queue: Deque[GatewayTicket] = deque()  # guarded-by: _cond
        self._cond = threading.Condition()
        self._running = False
        self._thread: Optional[threading.Thread] = None
        # (new_service, flipped_event, outcome_holder) staged by the
        # loader thread, applied by the dispatcher between ticks.
        # guarded-by: _cond
        self._pending_swap: Optional[Tuple[Recommender, threading.Event, dict]] = None
        self._stats_lock = threading.Lock()
        self._latencies: List[float] = []  # guarded-by: _stats_lock
        self._batch_histogram: Dict[int, int] = {}  # guarded-by: _stats_lock
        self._completed = 0  # guarded-by: _stats_lock
        self._failed = 0  # guarded-by: _stats_lock
        # guarded-by: _stats_lock
        self._shed = {"deadline": 0, "queue_full": 0, "shutdown": 0}
        self._ticks = 0  # guarded-by: _stats_lock
        self._swaps = 0  # guarded-by: _stats_lock
        # hits/misses/cold retired from replaced services.  guarded-by: _stats_lock
        self._retired_cache = (0, 0, 0)
        self._window_start: Optional[float] = None  # guarded-by: _stats_lock

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        dataset=None,
        cache_size: int = 256,
        **knobs,
    ) -> "ServingGateway":
        """Stand the gateway up straight from a checkpoint artifact."""
        service = Recommender.from_checkpoint(path, dataset=dataset, cache_size=cache_size)
        return cls(service, **knobs)

    @property
    def service(self) -> Recommender:
        """The live service snapshot (replaced atomically by swaps)."""
        return self._service

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def start(self) -> "ServingGateway":
        """Start the background dispatcher thread (idempotent)."""
        with self._cond:
            if self._running:
                return self
            self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="serving-gateway", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop dispatching; queued requests resolve ``Rejected("shutdown")``."""
        with self._cond:
            if not self._running and self._thread is None:
                self._drain_shutdown_locked()
                return
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        with self._cond:
            self._drain_shutdown_locked()

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _drain_shutdown_locked(self) -> None:  # holds-lock: _cond
        while self._queue:
            ticket = self._queue.popleft()
            with self._stats_lock:
                self._shed["shutdown"] += 1
            ticket._resolve(Rejected("shutdown"))

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(
        self,
        user: int,
        k: int = 20,
        exclude_seen: bool = True,
        kind: str = "recommend",
        deadline_ms: Optional[float] = None,
    ) -> GatewayTicket:
        """Enqueue one request; returns immediately with its ticket.

        ``deadline_ms`` overrides the gateway-level SLO for this request.
        Invalid arguments raise here, in the caller's thread; overload is
        reported through the ticket as :class:`Rejected`.
        """
        if kind not in ("recommend", "scores"):
            raise ValueError(f"kind must be 'recommend' or 'scores', got {kind!r}")
        if kind == "recommend" and k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        now = self._clock()
        budget = self.deadline_s if deadline_ms is None else deadline_ms / 1000.0
        ticket = GatewayTicket(
            user=int(user), k=int(k), kind=kind, exclude_seen=bool(exclude_seen),
            submitted_at=now, deadline=None if budget is None else now + budget,
        )
        with self._stats_lock:
            if self._window_start is None:
                self._window_start = now
        with self._cond:
            if len(self._queue) >= self.max_queue:
                with self._stats_lock:
                    self._shed["queue_full"] += 1
                ticket._resolve(Rejected("queue_full"))
                return ticket
            self._queue.append(ticket)
            self._cond.notify_all()
        return ticket

    def recommend(
        self,
        user: int,
        k: int = 20,
        exclude_seen: bool = True,
        timeout: Optional[float] = 60.0,
    ):
        """Blocking top-k query: ranked item ids, or :class:`Rejected`."""
        self._require_dispatcher()
        return self.submit(user, k=k, exclude_seen=exclude_seen).result(timeout)

    def scores(self, user: int, timeout: Optional[float] = 60.0):
        """Blocking raw-score query: a ``(num_items,)`` row, or :class:`Rejected`."""
        self._require_dispatcher()
        return self.submit(user, kind="scores").result(timeout)

    def _require_dispatcher(self) -> None:
        if not self._running:
            raise RuntimeError(
                "gateway is not running — call start() (or use the gateway as a "
                "context manager); for single-threaded deterministic operation "
                "use submit() + run_tick() instead of the blocking helpers"
            )

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap(
        self,
        source: Union[str, Path, Recommender],
        dataset=None,
        cache_size: Optional[int] = None,
        block: bool = True,
        timeout: Optional[float] = 300.0,
    ) -> threading.Event:
        """Zero-downtime model swap.

        ``source`` is a checkpoint directory (loaded on a background
        thread through :meth:`Recommender.from_checkpoint`, so the torn-
        read-safe artifact reader applies) or an already-built
        :class:`Recommender`.  The old model keeps answering every tick
        until the replacement is fully constructed; the dispatcher then
        flips the service reference *between* ticks, so no request ever
        mixes old and new scores.  The flip retires the old score cache,
        popularity fallback and item mask wholesale — the new service
        carries its own, built from the new artifact.

        With ``block=True`` (default) the call returns once the flip is
        live (re-raising any loader error); ``block=False`` returns the
        flip event immediately.  Concurrent swaps race benignly: each
        staged service replaces any not-yet-flipped predecessor (last
        writer wins) and the superseded swap's event is set with
        ``"superseded"`` recorded in no result — it simply never serves.
        """
        flipped = threading.Event()
        holder: dict = {}

        def _load() -> None:
            try:
                if isinstance(source, Recommender):
                    service = source
                else:
                    size = cache_size if cache_size is not None else self._service.cache_size
                    service = Recommender.from_checkpoint(
                        source, dataset=dataset, cache_size=size
                    )
            except BaseException as error:  # surface through the waiter
                holder["error"] = error
                flipped.set()
                return
            with self._cond:
                if self._pending_swap is not None:
                    superseded = self._pending_swap
                    superseded[2]["superseded"] = True
                    superseded[1].set()
                self._pending_swap = (service, flipped, holder)
                self._cond.notify_all()
            if not self._running:
                # No dispatcher to flip between ticks — apply directly so
                # manual-tick (and stopped) gateways still complete swaps.
                self._apply_pending_swap()

        loader = threading.Thread(target=_load, name="gateway-swap-loader", daemon=True)
        loader.start()
        if block:
            if not flipped.wait(timeout):
                raise TimeoutError(f"model swap did not complete within {timeout}s")
            if "error" in holder:
                raise holder["error"]
        return flipped

    def _apply_pending_swap(self) -> None:
        with self._cond:
            pending = self._pending_swap
            self._pending_swap = None
        if pending is None:
            return
        service, flipped, holder = pending
        old = self._service
        with self._stats_lock:
            retired = self._retired_cache
            self._retired_cache = (
                retired[0] + old.cache_hits,
                retired[1] + old.cache_misses,
                retired[2] + old.cold_hits,
            )
            self._swaps += 1
        self._service = service  # atomic reference flip
        holder["applied"] = True
        flipped.set()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue and self._pending_swap is None:
                    self._cond.wait(timeout=0.05)
                if not self._running:
                    break
            self._apply_pending_swap()
            self._dispatch_tick(wait_for_batch=True)

    def run_tick(self) -> int:
        """Dispatch one tick synchronously; returns requests resolved.

        The deterministic drive mode: applies any completed pending swap,
        coalesces everything currently queued (up to ``max_batch``) into
        one cohort without waiting, scores it, and fans results out.  Not
        for use while the background dispatcher is running.
        """
        if self._running:
            raise RuntimeError("run_tick() is for gateways without a dispatcher thread")
        self._apply_pending_swap()
        return self._dispatch_tick(wait_for_batch=False)

    def _dispatch_tick(self, wait_for_batch: bool) -> int:
        with self._cond:
            if not self._queue:
                return 0
            if wait_for_batch and self.max_wait_s > 0:
                # Hold the tick briefly to let a batch form, anchored at
                # the *oldest* waiting request's real arrival time so the
                # wait bounds added latency, not inter-arrival gaps.  The
                # wait runs in short slices: a slice that passes with no
                # new arrivals means every in-flight client is already
                # queued, so waiting out the rest of the window would add
                # latency without growing the batch — dispatch early.
                window_end = self._queue[0]._arrived_real + self.max_wait_s
                while self._running and len(self._queue) < self.max_batch:
                    remaining = window_end - time.monotonic()
                    if remaining <= 0:
                        break
                    before = len(self._queue)
                    self._cond.wait(min(remaining, _QUIET_SLICE_S))
                    if len(self._queue) == before:
                        break
            count = min(len(self._queue), self.max_batch)
            batch = [self._queue.popleft() for _ in range(count)]
        if not batch:
            return 0

        # One service snapshot answers the whole tick: swaps flip the
        # reference only between ticks, so no request sees a torn mix.
        service = self._service
        now = self._clock()
        live: List[GatewayTicket] = []
        for ticket in batch:
            if ticket.deadline is not None and now >= ticket.deadline:
                with self._stats_lock:
                    self._shed["deadline"] += 1
                ticket._resolve(Rejected("deadline"))
            else:
                live.append(ticket)
        if live:
            self._answer(service, live)
        with self._stats_lock:
            self._ticks += 1
            self._batch_histogram[len(batch)] = (
                self._batch_histogram.get(len(batch), 0) + 1
            )
        return len(batch)

    def _answer(self, service: Recommender, tickets: List[GatewayTicket]) -> None:
        """Answer one tick's live requests with the facade's batched calls."""
        score_tickets = [t for t in tickets if t.kind == "scores"]
        if score_tickets:
            self._answer_group(
                score_tickets,
                lambda users: service.scores(users),
            )
        groups: Dict[Tuple[int, bool], List[GatewayTicket]] = {}
        for ticket in tickets:
            if ticket.kind == "recommend":
                groups.setdefault((ticket.k, ticket.exclude_seen), []).append(ticket)
        for (k, exclude_seen), group in groups.items():
            self._answer_group(
                group,
                lambda users, k=k, exclude_seen=exclude_seen: service.recommend(
                    users, k=k, exclude_seen=exclude_seen
                ),
            )

    def _answer_group(self, tickets: List[GatewayTicket], call) -> None:
        users = np.asarray([t.user for t in tickets], dtype=np.int64)
        try:
            results = call(users)
        except BaseException as error:
            with self._stats_lock:
                self._failed += len(tickets)
            for ticket in tickets:
                ticket._fail(error)
            return
        finish = self._clock()
        with self._stats_lock:
            self._completed += len(tickets)
            self._latencies.extend(finish - t.submitted_at for t in tickets)
        # ``recommend`` returns a matrix, or a list of ragged rows when
        # seen-item exclusion truncated some user below k.
        for ticket, row in zip(tickets, results):
            ticket._resolve(row)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> GatewayStats:
        """Snapshot the serving telemetry accumulated since start/reset."""
        service = self._service
        with self._stats_lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            histogram = dict(self._batch_histogram)
            completed = self._completed
            failed = self._failed
            shed = dict(self._shed)
            ticks = self._ticks
            swaps = self._swaps
            retired = self._retired_cache
            window_start = self._window_start
        window = 0.0 if window_start is None else max(self._clock() - window_start, 1e-9)
        if latencies.size:
            p50, p99 = np.percentile(latencies, [50, 99]) * 1000.0
            worst = float(latencies.max() * 1000.0)
        else:
            p50 = p99 = worst = 0.0
        # repro: disable=float-determinism -- integer batch-size tallies; order-free
        dispatched = sum(size * count for size, count in histogram.items())
        return GatewayStats(
            completed=completed,
            failed=failed,
            shed_deadline=shed["deadline"],
            shed_queue_full=shed["queue_full"],
            shed_shutdown=shed["shutdown"],
            ticks=ticks,
            swaps=swaps,
            qps=completed / window if window else 0.0,
            latency_p50_ms=float(p50),
            latency_p99_ms=float(p99),
            latency_max_ms=worst,
            mean_batch=dispatched / ticks if ticks else 0.0,
            batch_histogram=histogram,
            cache_hits=retired[0] + service.cache_hits,
            cache_misses=retired[1] + service.cache_misses,
            cold_hits=retired[2] + service.cold_hits,
            window_seconds=window,
        )

    def reset_stats(self) -> None:
        """Zero every counter and start a fresh QPS/latency window."""
        with self._stats_lock:
            self._latencies.clear()
            self._batch_histogram.clear()
            self._completed = 0
            self._failed = 0
            self._shed = {"deadline": 0, "queue_full": 0, "shutdown": 0}
            self._ticks = 0
            self._swaps = 0
            self._retired_cache = (
                -self._service.cache_hits,
                -self._service.cache_misses,
                -self._service.cold_hits,
            )
            self._window_start = None

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        # repro: disable=guarded-by -- repr must never block: len() of a deque
        # is atomic under the GIL and a stale snapshot is fine in a diagnostic
        depth = len(self._queue)
        return (
            f"ServingGateway({self._service!r}, {state}, "
            f"max_batch={self.max_batch}, queue={depth})"
        )

"""Query-time serving: batched top-k recommendations from artifacts.

The deployment half of the lifecycle: :mod:`repro.artifacts` makes a
trained run durable, and this package answers recommendation queries from
it.

* :class:`Recommender` — a service facade over any trained
  :class:`repro.models.base.Recommender`: ``recommend(users, k,
  exclude_seen=True)`` ranks whole user cohorts through the batched
  scoring paths of :mod:`repro.eval.scoring` (one matmul per cohort for
  the embedding dot-product architectures, chunked flattened tensor
  passes otherwise — the very same cohort scorer the training-time
  evaluator uses), with an LRU score cache for hot users and a popularity
  fallback for cold-start users;
* ``Recommender.from_checkpoint(path)`` — stand up the service straight
  from a saved artifact (PTF-FedRec artifacts serve the provider's hidden
  server model, exactly what the paper's deployment story implies);
* :class:`ServingGateway` — the traffic-facing layer over the facade:
  concurrent single-user ``recommend``/``scores`` requests are coalesced
  into one cohort score pass per tick (micro-batching, knobs ``max_batch``
  / ``max_wait_ms``), models hot-swap from checkpoints with zero downtime
  (:meth:`ServingGateway.swap`), latency SLOs shed deterministically under
  overload (:class:`Rejected`), and :class:`GatewayStats` snapshots
  p50/p99/QPS/batch-histogram telemetry for the benchmark JSON artifacts.

Quickstart::

    import repro
    from repro.serve import Recommender

    spec = repro.ExperimentSpec(trainer="ptf", protocol={"rounds": 5})
    result = repro.run(spec, callbacks=[
        repro.artifacts.CheckpointEveryK("ckpts", every=5)
    ])

    service = Recommender.from_checkpoint("ckpts/latest")
    top10 = service.recommend([0, 1, 2], k=10)   # (3, 10) ranked item ids
"""

from repro.serve.gateway import GatewayStats, GatewayTicket, Rejected, ServingGateway
from repro.serve.recommender import Recommender
from repro.serve.scoring import batch_scores

__all__ = [
    "Recommender",
    "batch_scores",
    "ServingGateway",
    "GatewayTicket",
    "GatewayStats",
    "Rejected",
]

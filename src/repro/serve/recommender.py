"""The query-time ``Recommender`` service facade.

Wraps a trained :class:`repro.models.base.Recommender` (typically restored
from a :mod:`repro.artifacts` checkpoint) behind the API a serving tier
needs: batched top-k queries, seen-item exclusion, an LRU score cache for
hot users, and a popularity fallback for cold-start users the model has
never trained on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Union

# repro: disable=backend-purity -- serving boundary: ndarray score rows in, ranked id arrays out
import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.scoring import batch_scores
from repro.models.base import Recommender as RecommenderModel
from repro.models.base import top_k_ranked
from repro.models.popularity import PopularityRecommender

_EMPTY_ITEMS = np.empty(0, dtype=np.int64)

#: Sentinel for :meth:`Recommender.reload` keyword arguments: "keep the
#: current value" — distinct from ``None``, which is a meaningful value
#: (no mask / no fallback).
_KEEP = object()


class _ServingState(NamedTuple):
    """One immutable snapshot of everything a query consults.

    :meth:`Recommender.reload` *replaces* these objects wholesale (it
    never mutates them in place), so a query that captured a snapshot
    under the lock can keep using it lock-free: the snapshot stays
    internally consistent even while a concurrent reload flips the live
    service to a new model/mask/fallback generation.  ``epoch`` stamps
    the model generation so the LRU cache can refuse rows computed by a
    retired snapshot.
    """

    model: RecommenderModel
    num_items: int
    seen: Dict[int, np.ndarray]
    known_users: Optional[set]
    popularity: Optional[np.ndarray]
    item_mask: Optional[np.ndarray]
    epoch: int


class Recommender:
    """Batched top-k recommendation service over a trained model.

    ``seen_items`` maps user id -> the items that user already interacted
    with; ``recommend(..., exclude_seen=True)`` masks them out, matching
    the training-time full-ranking protocol.  Users absent from
    ``seen_items`` (and ids beyond the model's user table) are treated as
    *cold* and answered from ``popularity`` (per-item interaction counts)
    instead of the personalized model.

    Score rows are cached per user in an LRU of ``cache_size`` entries, so
    hot users cost one ``argpartition`` per query instead of a model pass.
    The facade treats the model as an immutable snapshot — call
    :meth:`clear_cache` if the underlying model is trained further.

    ``item_mask`` (boolean, catalogue-length) restricts the servable
    catalogue: masked-out items are never recommended, for any user.
    Dynamic-federation runs pass the set of items that had streamed in by
    the last trained round (see :meth:`from_trainer`).
    """

    def __init__(
        self,
        model: RecommenderModel,
        seen_items: Optional[Mapping[int, np.ndarray]] = None,
        popularity: Optional[np.ndarray] = None,
        cache_size: int = 256,
        item_mask: Optional[np.ndarray] = None,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        # The LRU cache and its counters are shared mutable state; the
        # threaded gateway queries one facade from several client threads,
        # so every cache/counter touch happens under this lock.  (Scoring
        # itself is read-only over the model snapshot.)
        self._lock = threading.RLock()
        self.cache_size = cache_size
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()  # guarded-by: _lock
        self.cache_hits = 0  # guarded-by: _lock
        self.cache_misses = 0  # guarded-by: _lock
        self.cold_hits = 0  # guarded-by: _lock
        # The serving-state six-tuple below (model/num_items/seen/known/
        # popularity/mask) is only ever *replaced* under the lock, never
        # mutated in place; queries capture all of it atomically through
        # :meth:`_snapshot` and then run lock-free on the snapshot.
        self._epoch = 0  # guarded-by: _lock
        self._seen: Dict[int, np.ndarray] = {}  # guarded-by: _lock
        self._known_users = None  # guarded-by: _lock
        self._popularity = None  # guarded-by: _lock
        self._item_mask = None  # guarded-by: _lock
        self.reload(
            model,
            seen_items=seen_items if seen_items is not None else _KEEP,
            popularity=popularity,
            item_mask=item_mask,
        )

    def reload(
        self,
        model: Optional[RecommenderModel] = None,
        seen_items=_KEEP,
        popularity=_KEEP,
        item_mask=_KEEP,
    ) -> "Recommender":
        """Swap in new serving state, invalidating exactly what changed.

        ``clear_cache()`` alone is not enough after a model swap: the
        popularity fallback row and the servable-item mask are memoised
        against the *old* catalogue, and a stale fallback would keep
        answering cold users from the retired model's world.  ``reload``
        is the one mutation path — pass only what changed:

        * ``model`` — replaces the served model and drops every cached
          score row (they were computed by the old model);
        * ``seen_items`` — replaces the seen/known-user tables (pass when
          the interaction log advanced alongside the model);
        * ``popularity`` — raw per-item counts; the cold-start fallback
          row is rebuilt against the *current* catalogue size (``None``
          removes the fallback);
        * ``item_mask`` — replaces the servable-catalogue mask (``None``
          unmasks everything).

        Arguments left at their defaults keep the current value.  All
        mutations happen atomically under the service lock, and the method
        returns ``self`` so construction helpers can chain it.
        """
        with self._lock:
            num_items = int(model.num_items) if model is not None else self.num_items
            if item_mask is not _KEEP and item_mask is not None:
                item_mask = np.asarray(item_mask, dtype=bool)
            if popularity is not _KEEP and popularity is not None:
                # The cold-start path *is* the popularity baseline model;
                # its normalized score vector doubles as the fallback row.
                fallback = PopularityRecommender(num_users=1, num_items=num_items)
                popularity = fallback.fit(popularity).score_all_items(0)
            # Cross-validate against the (new) catalogue *before* mutating
            # anything: a fallback row or mask sized for the old model must
            # be replaced in the same reload, never silently kept — and a
            # rejected reload must leave the live service untouched.
            new_mask = self._item_mask if item_mask is _KEEP else item_mask
            if new_mask is not None and new_mask.shape != (num_items,):
                raise ValueError(
                    f"item_mask must have shape ({num_items},), got {new_mask.shape}"
                )
            new_popularity = self._popularity if popularity is _KEEP else popularity
            if new_popularity is not None and new_popularity.shape != (num_items,):
                raise ValueError(
                    f"popularity fallback covers {new_popularity.shape[0]} items "
                    f"but the served model has {num_items}; pass popularity= "
                    "to reload alongside the model"
                )
            if model is not None:
                self.model = model  # guarded-by: _lock
                self.num_items = num_items  # guarded-by: _lock
                # Every cached row came from the retired model snapshot —
                # and the epoch bump makes in-flight queries that captured
                # the old snapshot drop their rows instead of re-poisoning
                # the fresh cache after this clear.
                self._epoch += 1
                self._cache.clear()
            if seen_items is not _KEEP:
                self._seen = {
                    int(user): np.asarray(items, dtype=np.int64)
                    for user, items in (seen_items or {}).items()
                }
                self._known_users = set(self._seen) if seen_items is not None else None
            self._popularity = new_popularity
            self._item_mask = new_mask
        return self

    # ------------------------------------------------------------------
    # Construction from artifacts
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        dataset: Optional[InteractionDataset] = None,
        cache_size: int = 256,
        into: Optional["Recommender"] = None,
    ) -> "Recommender":
        """Build the service from a :func:`repro.artifacts.save_checkpoint` artifact.

        The artifact is self-contained: the model is restored through the
        trainer registry (PTF-FedRec serves its hidden server model) and
        the embedded dataset supplies seen items and item popularity.

        ``into`` reloads an *existing* service in place (via
        :meth:`reload`) instead of constructing a new one — the
        swap-after-further-training path: the model, seen items,
        popularity fallback and item mask are all replaced together, and
        only the invalidated state (the score cache) is dropped.
        """
        from repro.artifacts import load_checkpoint

        checkpoint = load_checkpoint(path)
        if dataset is None:
            dataset = checkpoint.dataset()
        adapter = checkpoint.restore(dataset)
        return cls.from_trainer(adapter, dataset, cache_size=cache_size, into=into)

    @classmethod
    def from_trainer(
        cls,
        trainer,
        dataset: InteractionDataset,
        cache_size: int = 256,
        into: Optional["Recommender"] = None,
    ) -> "Recommender":
        """Build the service from a (trained) trainer adapter in memory.

        Dynamic-federation runs are handled automatically: users that had
        not streamed into the federation by the last trained round are
        served from the popularity fallback (they become warm the moment a
        later round trains past their arrival), and items that had not
        arrived are excluded from every recommendation list.

        The engine spec a trainer ran under is irrelevant here: sparse
        payloads and cohort sharding are bit-identical executions, so a
        model trained at 10k-client scale serves exactly the recommendations
        of its dense reference run.
        """
        seen_items = {user: dataset.train_items(user) for user in dataset.users}
        item_mask = None
        engine = getattr(trainer, "scenario_engine", lambda: None)()
        if engine is not None and engine.enabled:
            horizon = trainer.rounds_completed() - 1
            arrived = engine.arrived_user_set(horizon)
            # Unarrived users are unknown to the service — dropping them
            # from seen_items routes them to the cold-start fallback, so a
            # user is servable the round it appears.
            seen_items = {
                user: items for user, items in seen_items.items() if user in arrived
            }
            item_mask = engine.arrived_item_mask(horizon)
        if into is not None:
            return into.reload(
                trainer.serving_model(),
                seen_items=seen_items,
                popularity=dataset.item_popularity(),
                item_mask=item_mask,
            )
        return cls(
            model=trainer.serving_model(),
            seen_items=seen_items,
            popularity=dataset.item_popularity(),
            cache_size=cache_size,
            item_mask=item_mask,
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _snapshot(self) -> _ServingState:
        """Capture the whole serving state atomically (see _ServingState)."""
        with self._lock:
            return _ServingState(
                model=self.model,
                num_items=self.num_items,
                seen=self._seen,
                known_users=self._known_users,
                popularity=self._popularity,
                item_mask=self._item_mask,
                epoch=self._epoch,
            )

    @staticmethod
    def _is_cold(state: _ServingState, user: int) -> bool:
        if user < 0 or user >= state.model.num_users:
            return True
        return state.known_users is not None and user not in state.known_users

    def scores(self, users: Union[int, Sequence[int], np.ndarray]) -> np.ndarray:
        """Raw score rows for a cohort; shape ``(len(users), num_items)``.

        Cache hits are served from the LRU; the remaining warm users are
        scored as **one** batched cohort (see
        :mod:`repro.eval.scoring`); cold users get the popularity row.
        Cold lookups are counted in :attr:`cold_hits`, never as cache
        misses — cold rows are not cacheable, so they would permanently
        skew the LRU hit-rate statistics.

        The whole call is answered from **one** serving-state snapshot:
        a :meth:`reload` racing with it flips the service between calls,
        never inside one, so concurrent queries get only-old or only-new
        rows — never a torn mix of retired model and fresh fallback.
        """
        return self._scores_from(self._snapshot(), users)

    def _scores_from(
        self, state: _ServingState, users: Union[int, Sequence[int], np.ndarray]
    ) -> np.ndarray:
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if users.size == 0:
            return np.empty((0, state.num_items), dtype=np.float64)
        rows: Dict[int, np.ndarray] = {}
        fresh: list = []
        for user in dict.fromkeys(map(int, users)):  # unique, order-preserving
            if self._is_cold(state, user):
                if state.popularity is None:
                    raise IndexError(
                        f"user {user} is unknown to the served model and no "
                        "popularity fallback was configured"
                    )
                with self._lock:
                    self.cold_hits += 1
                rows[user] = state.popularity
                continue
            cached = self._cache_get(user, state.epoch)
            if cached is not None:
                rows[user] = cached
            else:
                fresh.append(user)
        if fresh:
            cohort = np.asarray(fresh, dtype=np.int64)
            for user, row in zip(fresh, batch_scores(state.model, cohort)):
                rows[user] = row
                self._cache_put(user, row, state.epoch)
        return np.stack([rows[int(user)] for user in users])

    def _cache_get(self, user: int, epoch: int) -> Optional[np.ndarray]:
        # OrderedDict mutation (move_to_end, eviction) is not atomic;
        # unsynchronized concurrent readers can corrupt the linked list or
        # double-evict, so every touch serializes on the service lock.
        with self._lock:
            if epoch != self._epoch:
                # The caller's snapshot predates a model swap: every row in
                # the live cache belongs to the *new* model, so serving one
                # would tear the caller's otherwise-consistent snapshot.
                self.cache_misses += 1
                return None
            row = self._cache.get(user)
            if row is None:
                self.cache_misses += 1
                return None
            self._cache.move_to_end(user)
            self.cache_hits += 1
            return row

    def _cache_put(self, user: int, row: np.ndarray, epoch: int) -> None:
        if self.cache_size == 0:
            return
        with self._lock:
            if epoch != self._epoch:
                return  # stale row from a retired model; never poison the cache
            # Copy: ``row`` is a view into the cohort's full score matrix,
            # and caching the view would pin the whole matrix in memory.
            self._cache[user] = row.copy()
            self._cache.move_to_end(user)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached score row (after further training, say).

        Score rows only — a *model swap* also leaves the popularity
        fallback and the item mask stale; use :meth:`reload` for that.
        """
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def recommend(
        self,
        users: Union[int, Sequence[int], np.ndarray],
        k: int = 20,
        exclude_seen: bool = True,
    ) -> Union[np.ndarray, List[np.ndarray]]:
        """Top-``k`` item ids per user, best first; shape ``(len(users), k)``.

        A scalar ``users`` returns a 1-D ``(k,)`` array.  With
        ``exclude_seen`` each user's known interactions are masked before
        the cut — the serving twin of the paper's "rank all items the user
        has not interacted with".  The whole cohort is ranked with one
        vectorized partition/sort, no per-user Python loop.

        Excluded items are never returned: when a user has fewer than
        ``k`` unseen candidates, that user's list is truncated to the
        valid candidates — a scalar query then returns fewer than ``k``
        ids, and a cohort query returns a list of per-user arrays instead
        of the usual rectangular matrix.
        """
        scalar = np.isscalar(users) or (
            isinstance(users, np.ndarray) and users.ndim == 0
        )
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        # One snapshot answers the whole query: the scores, the servable-
        # item mask and the seen-item exclusion all come from the same
        # model generation even if a reload() lands mid-call.
        state = self._snapshot()
        k = min(int(k), state.num_items)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self._scores_from(state, users).copy()
        if state.item_mask is not None:
            scores[:, ~state.item_mask] = -np.inf
        if exclude_seen:
            seen_rows = [
                state.seen.get(int(user), _EMPTY_ITEMS) for user in users
            ]
            sizes = np.fromiter((row.size for row in seen_rows), dtype=np.int64,
                                count=len(seen_rows))
            if sizes.any():
                # One fancy-indexed assignment for the whole cohort instead
                # of a Python masking loop per user.
                scores[np.repeat(np.arange(users.size), sizes),
                       np.concatenate(seen_rows)] = -np.inf
        ranked, valid = top_k_ranked(scores, k)
        if int(valid.min(initial=k)) >= k:
            return ranked[0] if scalar else ranked
        if scalar:
            return ranked[0][: int(valid[0])]
        return [row[: int(count)] for row, count in zip(ranked, valid)]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"serve.Recommender(model={type(self.model).__name__}, "
                f"items={self.num_items}, cache={len(self._cache)}/{self.cache_size})"
            )

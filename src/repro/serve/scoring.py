"""Batched score-matrix computation for serving.

The training-time evaluator asks a model for one user's scores at a time;
at query time that per-user Python loop is the bottleneck, not the math.
:func:`batch_scores` computes a whole cohort's ``(users, num_items)``
score matrix at once, the same way the execution engine stacks client
work (:mod:`repro.engine.batch`): architecture-specific closed forms where
the model is a (transformed) embedding dot product — one matmul per
cohort — and a single flattened all-pairs tensor pass as the universal
fallback.  Either way, scoring ``U`` users costs a handful of NumPy calls
instead of ``U`` Python round-trips.
"""

from __future__ import annotations

import numpy as np

from repro.engine.batch import StackedMF, StackedMetaMF
from repro.models.base import Recommender
from repro.tensor import no_grad


def _sigmoid(logits: np.ndarray) -> np.ndarray:
    """The substrate's sigmoid (same clipping as ``Tensor.sigmoid``)."""
    return 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))


def _relu(values: np.ndarray) -> np.ndarray:
    return values * (values > 0)


# ----------------------------------------------------------------------
# Closed-form cohort scorers (one matmul per cohort)
# ----------------------------------------------------------------------
def _mf_scores(model, users: np.ndarray):
    """Matrix factorization: ``sigmoid(U @ I.T (+ biases))``."""
    user_vectors = model.user_embedding.weight.data[users]
    item_table = model.item_embedding.weight.data
    logits = user_vectors @ item_table.T
    if model.use_bias:
        logits = logits + model.user_bias.data[users][:, None]
        logits = logits + model.item_bias.data[None, :]
    return _sigmoid(logits)


def _metamf_scores(model, users: np.ndarray):
    """MetaMF: run the meta network once over the full base table."""
    base = model.item_base_embedding.weight.data
    hidden = _relu(base @ model.meta_hidden.weight.data.T + model.meta_hidden.bias.data)
    item_vectors = hidden @ model.meta_output.weight.data.T + model.meta_output.bias.data + base
    user_vectors = model.user_embedding.weight.data[users]
    return _sigmoid(user_vectors @ item_vectors.T)


def _graph_scores(model, users: np.ndarray):
    """NGCF / LightGCN: propagate once, then one user-by-item matmul."""
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            final = model.propagate().numpy()
    finally:
        model.train(was_training)
    user_vectors = final[users]
    item_vectors = final[model.num_users:]
    return _sigmoid(user_vectors @ item_vectors.T)


def _closed_form(model):
    """Pick the architecture's cohort scorer, or ``None`` for the fallback.

    Dispatch reuses the engine's own ``supports`` predicates
    (:mod:`repro.engine.batch`) so the two stacked paths recognize the
    same architectures; the graph models have no training-side stacking
    and are matched on their propagation interface.  Unrecognized
    architectures degrade gracefully to the flat all-pairs pass.
    """
    if StackedMF.supports(model):
        return _mf_scores
    if StackedMetaMF.supports(model):
        return _metamf_scores
    if hasattr(model, "propagate") and hasattr(model, "node_embedding"):
        return _graph_scores
    return None


def batch_scores(model: Recommender, users: np.ndarray) -> np.ndarray:
    """Score every item for a cohort of users; returns ``(U, num_items)``.

    Models without a closed form (e.g. NeuMF's MLP tower) run one flat
    all-pairs forward — still a single vectorized tensor pass for the
    whole cohort rather than ``U`` per-user calls.
    """
    users = np.asarray(users, dtype=np.int64).reshape(-1)
    if users.size == 0:
        return np.empty((0, model.num_items), dtype=np.float64)
    if np.any((users < 0) | (users >= model.num_users)):
        raise IndexError("user id out of range for the served model")
    scorer = _closed_form(model)
    if scorer is not None:
        scores = scorer(model, users)
        return np.asarray(scores, dtype=np.float64)
    items = np.arange(model.num_items, dtype=np.int64)
    flat_users = np.repeat(users, model.num_items)
    flat_items = np.tile(items, users.size)
    scores = model.score_pairs(flat_users, flat_items)
    return scores.reshape(users.size, model.num_items)

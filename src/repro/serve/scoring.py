"""Compatibility re-export: the cohort scorer moved to :mod:`repro.eval.scoring`.

The batched score-matrix computation started life here as a serving-only
concern; the training-time evaluator now drives the same cohort paths, so
the implementation lives with the evaluation code (``repro.eval`` must not
depend on ``repro.serve``).  Importing from this module keeps working.
"""

from repro.eval.scoring import DEFAULT_CHUNK_SIZE, batch_scores

__all__ = ["DEFAULT_CHUNK_SIZE", "batch_scores"]

"""Configuration for dynamic-federation fault injection.

A :class:`ScenarioSpec` is the ``scenario={...}`` section of an
:class:`~repro.experiments.spec.ExperimentSpec` (and the ``scenario``
field of :class:`~repro.federated.base.FederatedConfig`).  It describes
*which* dynamic-participation events a simulated deployment injects:

* **churn** — each selected client independently drops out mid-round with
  probability ``dropout`` and contributes nothing,
* **stragglers** — each surviving client draws a latency from
  ``latency_range``; clients slower than ``deadline`` miss the round's
  aggregation.  Under ``aggregation="sync"`` their payload is discarded;
  under ``aggregation="async"`` it is buffered and folded into the round
  it arrives in, weighted ``staleness_alpha / (staleness + 1)`` and
  bounded by ``max_staleness``,
* **streaming arrivals** — a ``user_arrival_fraction`` of users (and an
  ``item_arrival_fraction`` of catalogue items) is held back at round 0
  and arrives over the first ``*_arrival_rounds`` rounds.

The default spec injects nothing: every trainer and every execution
scheduler is bit-identical to a scenario-free run (the drivers do not
even enter the scenario code path).  With faults enabled, all events are
drawn from dedicated RNG streams (``"scenario-dropout"``,
``"scenario-latency"``, ``"scenario-arrivals"``) keyed by ``(seed,
stream, client, round)``, so the injected event stream is reproducible,
independent of the execution scheduler, and never perturbs client
selection, batch sampling or model initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: How late payloads relate to the round they missed.  ``"sync"`` discards
#: them (partial aggregation over the on-time cohort); ``"async"`` buffers
#: them and folds them into a later round with staleness-decayed weight.
AGGREGATION_MODES: Tuple[str, ...] = ("sync", "async")


def _as_float_pair(value) -> Tuple[float, float]:
    pair = tuple(float(v) for v in value)
    if len(pair) != 2:
        raise ValueError(f"expected a (low, high) pair, got {value!r}")
    return pair


@dataclass
class ScenarioSpec:
    """Knobs for churn, stragglers, async aggregation and arrivals.

    ``dropout``
        Per-round probability that a selected client churns mid-round.
    ``latency_range``
        ``(low, high)`` of the uniform per-client round latency draw, in
        the same (arbitrary) time unit as ``deadline``.
    ``deadline``
        Round deadline; ``0`` disables straggler simulation entirely.  A
        client whose drawn latency exceeds the deadline straggles with
        staleness ``ceil(latency / deadline) - 1`` rounds.
    ``aggregation``
        One of :data:`AGGREGATION_MODES`.  ``"sync"`` drops straggler
        payloads; ``"async"`` folds them into the round they arrive in.
    ``staleness_alpha``
        Numerator of the async staleness weight ``alpha / (staleness + 1)``
        applied to buffered payloads when they fold in (on-time payloads
        always carry weight 1).
    ``max_staleness``
        Bounded staleness: a payload that would arrive more than this many
        rounds late is discarded instead of buffered.
    ``user_arrival_fraction`` / ``user_arrival_rounds``
        Fraction of users held back at round 0, streaming in uniformly over
        rounds ``1..user_arrival_rounds``.  Unarrived users are filtered
        out of every round's cohort *after* client selection, so the
        selection RNG stream is untouched.
    ``item_arrival_fraction`` / ``item_arrival_rounds``
        Same for catalogue items.  Unarrived items are excluded from the
        PTF server's dispersal candidates and from the serving catalogue
        (client-side interaction data is static and is not gated).
    """

    dropout: float = 0.0
    latency_range: Tuple[float, float] = (0.0, 0.0)
    deadline: float = 0.0
    aggregation: str = "sync"
    staleness_alpha: float = 0.5
    max_staleness: int = 2
    user_arrival_fraction: float = 0.0
    user_arrival_rounds: int = 1
    item_arrival_fraction: float = 0.0
    item_arrival_rounds: int = 1

    def __post_init__(self) -> None:
        self.latency_range = _as_float_pair(self.latency_range)
        if not 0.0 <= self.dropout <= 1.0:
            raise ValueError(f"dropout must be in [0, 1], got {self.dropout}")
        low, high = self.latency_range
        if not 0.0 <= low <= high:
            raise ValueError(
                f"latency_range must satisfy 0 <= low <= high, got {self.latency_range}"
            )
        if self.deadline < 0.0:
            raise ValueError(f"deadline must be non-negative, got {self.deadline}")
        if self.aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, got {self.aggregation!r}"
            )
        if self.staleness_alpha <= 0.0:
            raise ValueError(
                f"staleness_alpha must be positive, got {self.staleness_alpha}"
            )
        if self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be non-negative, got {self.max_staleness}"
            )
        for name in ("user_arrival_fraction", "item_arrival_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        for name in ("user_arrival_rounds", "item_arrival_rounds"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def enabled(self) -> bool:
        """Whether this spec injects any event at all.

        Disabled specs guarantee bit-identical behavior to a scenario-free
        run: the drivers never enter the scenario code path.
        """
        return (
            self.dropout > 0.0
            or self.deadline > 0.0
            or self.user_arrival_fraction > 0.0
            or self.item_arrival_fraction > 0.0
        )

    @property
    def asynchronous(self) -> bool:
        """Whether late payloads are buffered instead of discarded."""
        return self.aggregation == "async"

    def staleness_weight(self, staleness: int) -> float:
        """The aggregation weight of a payload ``staleness`` rounds late."""
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        if staleness == 0:
            return 1.0
        return self.staleness_alpha / (staleness + 1.0)

"""Deterministic fault-event planning for dynamic-federation rounds.

The :class:`ScenarioEngine` turns a :class:`~repro.scenario.spec.ScenarioSpec`
into concrete per-round events: which selected clients have arrived yet,
which churn out mid-round, which miss the deadline and with how much
staleness.  The protocol drivers ask it for a :class:`RoundPlan` at the
top of every round and execute the plan through whatever execution
scheduler the run configured — the engine itself never trains anything.

Determinism contract
--------------------

* Every event is drawn from a dedicated :class:`~repro.utils.rng.RngFactory`
  stream — ``"scenario-dropout"``, ``"scenario-latency"``,
  ``"scenario-arrivals"`` — keyed by ``(seed, stream, client, round)``.
  Client selection, batch sampling, upload privacy and model
  initialization keep their existing streams untouched, so enabling a
  fault never perturbs any other randomness.
* Events depend only on ``(seed, spec, client id, round index)``, never on
  execution order: all three schedulers see the same event stream, and a
  checkpoint resume replays the remaining rounds' events bit-identically
  (the stream is re-derived, not stored).
* With the default (disabled) spec the drivers skip the scenario path
  entirely and remain bit-identical to a scenario-free build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# repro: disable=backend-purity -- fault-event draws and arrival masks are ndarray bookkeeping
import numpy as np

from repro.scenario.spec import ScenarioSpec
from repro.utils.rng import RngFactory

#: Stride mixing the client id into per-(client, round) stream keys; the
#: same convention the protocol's upload/training streams use.
_KEY_STRIDE = 1_000_003


@dataclass(frozen=True)
class RoundPlan:
    """One round's participation events, in cohort (selection) order.

    ``selected`` is the arrived cohort (what the round's ``selected``
    telemetry counts); ``pending`` are selected users that have not
    streamed in yet.  ``on_time + dropped + lost + stale`` partitions
    ``selected``: ``lost`` are stragglers whose payload is discarded
    (sync mode, or staleness beyond the bound), ``stale`` maps async
    stragglers to their staleness in rounds.
    """

    round_index: int
    selected: Tuple[int, ...]
    pending: Tuple[int, ...]
    on_time: Tuple[int, ...]
    dropped: Tuple[int, ...]
    lost: Tuple[int, ...]
    stale: Dict[int, int]

    @property
    def trained(self) -> Tuple[int, ...]:
        """Clients that run local training this round, in cohort order.

        Dropped (churned) clients do no work; stragglers *do* train —
        their device finished the local epochs, only the upload missed
        the deadline.
        """
        skip = set(self.dropped)
        return tuple(user for user in self.selected if user not in skip)

    @property
    def straggled(self) -> Tuple[int, ...]:
        """Every client that missed the deadline (buffered or lost)."""
        kept = set(self.stale)
        return tuple(
            user for user in self.selected if user in kept or user in set(self.lost)
        )

    def stale_groups(self) -> List[Tuple[int, List[int]]]:
        """Async stragglers grouped by staleness, ``(staleness, users)``.

        Groups are ordered by staleness and users stay in cohort order, so
        the drivers' buffer-append order is deterministic.
        """
        groups: Dict[int, List[int]] = {}
        for user in self.selected:
            staleness = self.stale.get(user)
            if staleness is not None:
                groups.setdefault(staleness, []).append(user)
        return sorted(groups.items())


class ScenarioEngine:
    """Plans one run's dynamic-participation events deterministically.

    Stateless across rounds: arrival schedules are derived once from the
    ``"scenario-arrivals"`` stream at construction, and per-round events
    are re-derived from ``(seed, stream, client, round)`` on demand — so a
    restored checkpoint rebuilds the identical engine from the spec alone.
    (The *payload* buffers async aggregation needs are state, and live in
    the protocol drivers' ``state_dict``.)
    """

    def __init__(
        self,
        spec: Optional[ScenarioSpec],
        rngs: RngFactory,
        users: Sequence[int],
        num_items: int,
    ):
        self.spec = spec if spec is not None else ScenarioSpec()
        self._rngs = rngs
        self.users = [int(user) for user in users]
        self.num_items = int(num_items)

        # Arrival schedules: one draw order (late users, their rounds, late
        # items, their rounds) so the whole schedule is a pure function of
        # (seed, spec).  Users/items not in the map arrived at round 0.
        self._user_arrivals: Dict[int, int] = {}
        self._item_arrivals: Optional[np.ndarray] = None
        if self.spec.user_arrival_fraction > 0.0 or self.spec.item_arrival_fraction > 0.0:
            rng = rngs.spawn("scenario-arrivals")
            if self.spec.user_arrival_fraction > 0.0:
                pool = np.asarray(sorted(self.users), dtype=np.int64)
                count = int(round(self.spec.user_arrival_fraction * pool.size))
                count = min(count, pool.size)
                if count:
                    late = np.sort(rng.choice(pool, size=count, replace=False))
                    rounds = rng.integers(
                        1, self.spec.user_arrival_rounds + 1, size=count
                    )
                    self._user_arrivals = {
                        int(user): int(round_index)
                        for user, round_index in zip(late, rounds)
                    }
            if self.spec.item_arrival_fraction > 0.0:
                count = int(round(self.spec.item_arrival_fraction * self.num_items))
                count = min(count, self.num_items)
                if count:
                    arrivals = np.zeros(self.num_items, dtype=np.int64)
                    late = np.sort(
                        rng.choice(self.num_items, size=count, replace=False)
                    )
                    arrivals[late] = rng.integers(
                        1, self.spec.item_arrival_rounds + 1, size=count
                    )
                    self._item_arrivals = arrivals

    @property
    def enabled(self) -> bool:
        """Whether any fault is configured (see :attr:`ScenarioSpec.enabled`)."""
        return self.spec.enabled

    def staleness_weight(self, staleness: int) -> float:
        """Aggregation weight of a payload ``staleness`` rounds late."""
        return self.spec.staleness_weight(staleness)

    # ------------------------------------------------------------------
    # Streaming arrivals
    # ------------------------------------------------------------------
    def user_arrival_round(self, user: int) -> int:
        """The round index from which ``user`` participates (0 = always)."""
        return self._user_arrivals.get(int(user), 0)

    def arrived_user_set(self, round_index: int) -> set:
        """Users that have arrived by the end of round ``round_index``.

        ``round_index=-1`` (before any round) returns the round-0 cohort.
        """
        horizon = max(int(round_index), 0)
        return {
            user for user in self.users if self.user_arrival_round(user) <= horizon
        }

    def arrived_item_mask(self, round_index: int) -> Optional[np.ndarray]:
        """Boolean catalogue mask of items arrived by ``round_index``.

        ``None`` when item streaming is disabled, so callers on the
        hot path can skip masking entirely (and stay bit-identical).
        """
        if self._item_arrivals is None:
            return None
        return self._item_arrivals <= max(int(round_index), 0)

    def arrivals_in_round(self, round_index: int) -> Tuple[List[int], int]:
        """``(users, num_items)`` that stream in exactly at ``round_index``."""
        users = sorted(
            user for user, r in self._user_arrivals.items() if r == int(round_index)
        )
        items = 0
        if self._item_arrivals is not None:
            items = int(np.count_nonzero(self._item_arrivals == int(round_index)))
        return users, items

    # ------------------------------------------------------------------
    # Round planning
    # ------------------------------------------------------------------
    def plan_round(self, selected: Sequence[int], round_index: int) -> RoundPlan:
        """Draw this round's events for an already-selected cohort.

        ``selected`` must be the *unfiltered* output of the driver's client
        selection — the engine filters unarrived users here, after the
        selection stream already advanced, so arrivals never perturb which
        clients the selection RNG picks.
        """
        spec = self.spec
        arrived: List[int] = []
        pending: List[int] = []
        for user in selected:
            (arrived if self.user_arrival_round(user) <= round_index else pending).append(
                int(user)
            )

        on_time: List[int] = []
        dropped: List[int] = []
        lost: List[int] = []
        stale: Dict[int, int] = {}
        for user in arrived:
            key = user * _KEY_STRIDE + round_index
            if spec.dropout > 0.0:
                draw = self._rngs.spawn_indexed("scenario-dropout", key).random()
                if draw < spec.dropout:
                    dropped.append(user)
                    continue
            staleness = 0
            if spec.deadline > 0.0:
                latency = self._rngs.spawn_indexed("scenario-latency", key).uniform(
                    *spec.latency_range
                )
                if latency > spec.deadline:
                    staleness = int(math.ceil(latency / spec.deadline)) - 1
            if staleness == 0:
                on_time.append(user)
            elif spec.asynchronous and staleness <= spec.max_staleness:
                stale[user] = staleness
            else:
                lost.append(user)

        return RoundPlan(
            round_index=int(round_index),
            selected=tuple(arrived),
            pending=tuple(pending),
            on_time=tuple(on_time),
            dropped=tuple(dropped),
            lost=tuple(lost),
            stale=stale,
        )

"""Per-round and per-run participation telemetry for scenario runs.

Every scenario-enabled round reports how its cohort actually behaved —
who was selected, who finished on time, who churned, who straggled, and
how many buffered stale payloads folded in.  The counts ride along in the
round's ``logs`` (and therefore in each
:class:`~repro.experiments.result.RoundRecord`), and
:class:`ParticipationSummary` totals them for the
:class:`~repro.experiments.result.RunResult`, so scenario runs are
observable, serializable and chartable without re-deriving anything from
the event streams.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Mapping

#: The metric keys a scenario round adds to its ``logs``; also the columns
#: of :class:`ParticipationSummary`.
PARTICIPATION_KEYS = ("selected", "completed", "dropped", "straggled", "stale_applied")


@dataclass(frozen=True)
class RoundParticipation:
    """How one round's cohort behaved.

    ``selected``
        Cohort size after client selection and arrival filtering — the
        clients that were actually asked to work this round.
    ``completed``
        Clients whose payload made this round's aggregation on time.
    ``dropped``
        Clients that contributed nothing: churned mid-round, failed
        permanently in a worker process, or exceeded ``max_staleness``.
    ``straggled``
        Clients that missed the round deadline (whether their payload was
        buffered for a later round or discarded).
    ``stale_applied``
        Buffered payloads from *earlier* rounds folded into this round's
        aggregation with staleness-decayed weight.
    """

    selected: int = 0
    completed: int = 0
    dropped: int = 0
    straggled: int = 0
    stale_applied: int = 0

    def as_logs(self) -> Dict[str, int]:
        """The counts as round-``logs`` entries (keys in
        :data:`PARTICIPATION_KEYS`)."""
        return {key: int(getattr(self, key)) for key in PARTICIPATION_KEYS}

    @classmethod
    def from_logs(cls, logs: Mapping[str, Any]) -> "RoundParticipation":
        """Inverse of :meth:`as_logs` (missing keys count zero)."""
        return cls(**{key: int(logs.get(key, 0)) for key in PARTICIPATION_KEYS})


@dataclass(frozen=True)
class ParticipationSummary:
    """Whole-run participation totals (the sum of every round's counts)."""

    rounds: int = 0
    selected: int = 0
    completed: int = 0
    dropped: int = 0
    straggled: int = 0
    stale_applied: int = 0

    @classmethod
    def from_history(cls, records: Iterable) -> "ParticipationSummary":
        """Total the participation counts over a run's round records.

        ``records`` is the :attr:`RunResult.history` list; rounds that
        carry no participation counts (e.g. the history prefix of a run
        that enabled the scenario only after a resume) contribute nothing.
        """
        totals = {key: 0 for key in PARTICIPATION_KEYS}
        rounds = 0
        for record in records:
            metrics = getattr(record, "metrics", record)
            if not any(key in metrics for key in PARTICIPATION_KEYS):
                continue
            rounds += 1
            for key in PARTICIPATION_KEYS:
                totals[key] += int(metrics.get(key, 0))
        return cls(rounds=rounds, **totals)

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe dict representation."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ParticipationSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(**{f.name: int(data[f.name]) for f in fields(cls)})

    @property
    def completion_rate(self) -> float:
        """On-time completions as a fraction of selections (0 when idle)."""
        if self.selected == 0:
            return 0.0
        return self.completed / self.selected

"""Deterministic dynamic-federation fault injection.

See :mod:`repro.scenario.spec` for the configuration surface,
:mod:`repro.scenario.engine` for event planning, and
:mod:`repro.scenario.telemetry` for participation accounting.
"""

from repro.scenario.engine import RoundPlan, ScenarioEngine
from repro.scenario.spec import AGGREGATION_MODES, ScenarioSpec
from repro.scenario.telemetry import (
    PARTICIPATION_KEYS,
    ParticipationSummary,
    RoundParticipation,
)

__all__ = [
    "AGGREGATION_MODES",
    "PARTICIPATION_KEYS",
    "ParticipationSummary",
    "RoundParticipation",
    "RoundPlan",
    "ScenarioEngine",
    "ScenarioSpec",
]

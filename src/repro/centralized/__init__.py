"""Centralized training of recommendation models.

These are the paper's "Centralized Recs" baselines in Table III: the same
NeuMF/NGCF/LightGCN models trained directly on all interaction data by a
single party, providing the performance ceiling that the federated methods
approach.
"""

from repro.centralized.trainer import CentralizedTrainer, CentralizedConfig

__all__ = ["CentralizedTrainer", "CentralizedConfig"]

"""Centralized trainer for any :class:`~repro.models.base.Recommender`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

# repro: disable=backend-purity -- epoch shuffling indices and detached eval matrices only
import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.callbacks import Callback

from repro.data.dataset import InteractionDataset
from repro.data.loaders import BatchIterator
from repro.data.sampling import build_pointwise_samples
from repro.eval.ranking import RankingEvaluator, RankingResult
from repro.eval.scoring import DEFAULT_CHUNK_SIZE
from repro.models.base import Recommender
from repro.nn.losses import PointwiseBCELoss
from repro.optim import Adam
from repro.utils.rng import RngFactory


@dataclass
class CentralizedConfig:
    """Hyper-parameters for centralized training (paper Section IV-D)."""

    epochs: int = 20
    batch_size: int = 1024
    learning_rate: float = 0.001
    negative_ratio: int = 4
    l2_weight: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.negative_ratio < 1:
            raise ValueError(f"negative_ratio must be >= 1, got {self.negative_ratio}")


class CentralizedTrainer:
    """Trains a recommender on the full dataset with pointwise BCE.

    Graph models (NGCF/LightGCN) automatically receive the training
    interaction graph before the first epoch, matching how they are used
    in centralized deployments.
    """

    def __init__(
        self,
        model: Recommender,
        dataset: InteractionDataset,
        config: Optional[CentralizedConfig] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else CentralizedConfig()
        self._rngs = RngFactory(self.config.seed)
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self.loss_fn = PointwiseBCELoss(l2_weight=self.config.l2_weight)
        self.loss_history: List[float] = []
        if hasattr(model, "set_interaction_graph"):
            model.set_interaction_graph(dataset.train_pairs)

    def train_epoch(self, epoch: int) -> float:
        """Run one epoch of pointwise training; returns the mean batch loss."""
        sample_rng = self._rngs.spawn_indexed("centralized-sampling", epoch)
        batch_rng = self._rngs.spawn_indexed("centralized-batching", epoch)
        users, items, labels = build_pointwise_samples(
            self.dataset, negative_ratio=self.config.negative_ratio, rng=sample_rng
        )
        iterator = BatchIterator(
            users, items, labels, batch_size=self.config.batch_size, rng=batch_rng
        )
        self.model.train()
        regularized = list(self.model.parameters()) if self.config.l2_weight > 0 else []
        total_loss = 0.0
        batches = 0
        for batch_users, batch_items, batch_labels in iterator:
            predictions = self.model.score(batch_users, batch_items)
            loss = self.loss_fn(predictions, batch_labels, regularized=regularized)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item()
            batches += 1
        mean_loss = total_loss / max(batches, 1)
        self.loss_history.append(mean_loss)
        return mean_loss

    def fit(
        self,
        epochs: Optional[int] = None,
        callbacks: Optional[Sequence["Callback"]] = None,
    ) -> "CentralizedTrainer":
        """Train for ``epochs`` (defaults to the configured number).

        Each epoch counts as one "round" for the shared training hooks, so
        callbacks (eval-every-k, early stopping, progress logging) behave
        identically across the centralized and federated paradigms.
        """
        from repro.experiments.callbacks import CallbackList

        hooks = CallbackList(callbacks)
        start = len(self.loss_history)
        total = epochs if epochs is not None else self.config.epochs
        hooks.on_fit_start(self)
        for epoch in range(start, start + total):
            hooks.on_round_start(self, epoch)
            mean_loss = self.train_epoch(epoch)
            hooks.on_round_end(self, epoch, {"loss": mean_loss})
            if hooks.should_stop:
                break
        hooks.on_fit_end(self)
        return self

    def evaluate(
        self,
        k: int = 20,
        max_users: Optional[int] = None,
        batch_size: Optional[int] = DEFAULT_CHUNK_SIZE,
    ) -> RankingResult:
        """Evaluate the trained model on the dataset's test split.

        ``batch_size`` chooses the evaluator's execution path (chunked
        cohort scoring by default, the per-user reference loop with
        ``None``); both return equal results.
        """
        evaluator = RankingEvaluator(self.dataset, k=k)
        return evaluator.evaluate(self.model, max_users=max_users, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Serialization (used by repro.artifacts checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Model, Adam optimizer and per-epoch loss history."""
        return {
            "rounds_completed": len(self.loss_history),
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "loss_history": [float(loss) for loss in self.loss_history],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot; the next epoch continues
        bit-identically to a run that was never interrupted."""
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.loss_history = [float(loss) for loss in state["loss_history"]]

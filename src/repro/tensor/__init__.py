"""Reverse-mode automatic differentiation on NumPy arrays.

This package is the lowest substrate of the reproduction.  The paper's
models are ordinarily implemented in PyTorch; because PyTorch is not
available in this environment, ``repro.tensor`` provides the minimal dense
and sparse tensor operations the recommendation models need, together with
reverse-mode autodiff so the models can be trained with gradient descent.

The public surface intentionally mirrors a small slice of the PyTorch API
(``Tensor``, ``no_grad``, functional ops) so that the model code in
:mod:`repro.models` reads like conventional deep-learning code.
"""

from repro.tensor.backend import (
    Backend,
    Numpy32Backend,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.tensor.sharedmem import (
    SharedEmbeddingStore,
    SharedTableHandle,
    shared_memory_available,
)
from repro.tensor.sparse import SparseDelta
from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.gradcheck import check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "check_gradients",
    "SharedEmbeddingStore",
    "SharedTableHandle",
    "SparseDelta",
    "shared_memory_available",
    "Backend",
    "NumpyBackend",
    "Numpy32Backend",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

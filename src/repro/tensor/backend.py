"""Pluggable array backends: the precision/execution policy of the substrate.

Every raw array decision the tensor engine makes — which floating dtype new
tensors carry, and which kernel applies an optimizer update — is owned by a
:class:`Backend`.  Two backends ship with the repository:

``"numpy"`` (the default)
    Float64 compute with the original out-of-place update arithmetic.  This
    backend is the *reference*: results are bit-identical to the pre-backend
    substrate, and every equality guarantee in the repository (scheduler
    bit-identity, checkpoint resume, batched-evaluation equality) is stated
    against it.

``"numpy32"``
    Float32 compute with fused, in-place optimizer kernels.  Parameters,
    activations and gradients all carry float32, halving memory traffic
    through every hot loop (local training, stacked cohorts, full-ranking
    evaluation), and the SGD/momentum/Adam updates run in place over
    caller-provided scratch so no step allocates parameter-sized
    temporaries.  Results are *numerically close* to the reference, not
    bit-equal — the protocol payloads (uploads, dispersals, metrics) remain
    float64 at the boundaries, so only model-internal arithmetic changes
    precision.

The active backend is tracked in a :class:`contextvars.ContextVar`, so
``use_backend("numpy32")`` in one thread never changes what another thread
computes (the threaded serving tier and the multiprocess scheduler rely on
this).  The policy is threaded through the stack by
:class:`~repro.experiments.spec.ExperimentSpec.backend`: the trainer
adapters activate the spec's backend around model construction, training
and evaluation, and checkpoints record it in their manifest so artifacts
stay self-describing.

Registering a custom backend follows the trainer-registry idiom:

>>> import numpy as np
>>> class MyBackend(NumpyBackend):
...     name = "numpy64-fused"
...     inplace = True
>>> _ = register_backend(MyBackend())
>>> get_backend("numpy64-fused").dtype == np.float64
True
>>> _ = _REGISTRY.pop("numpy64-fused")  # keep the doctest idempotent
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Optional, Tuple, Union

import numpy as np


class Backend:
    """One array-compute policy: a floating dtype plus optimizer kernels.

    Subclasses set :attr:`name`, :attr:`dtype` and :attr:`inplace` and may
    override the update kernels.  Kernels receive and return raw ndarrays
    (never :class:`~repro.tensor.tensor.Tensor` objects) so they compose
    with both the per-parameter optimizers in :mod:`repro.optim` and the
    stacked cohort optimizers in :mod:`repro.engine.batch`.

    ``inplace`` declares the aliasing contract of the kernels: an in-place
    backend mutates and returns the ``data`` argument (callers may rely on
    object identity), while the reference backend returns fresh arrays and
    never touches its inputs.
    """

    #: Registry key; also what ``ExperimentSpec.backend`` names.
    name: str = ""
    #: The floating dtype every new tensor is normalized to.
    dtype: np.dtype = np.dtype(np.float64)
    #: Whether the optimizer kernels mutate parameters in place.
    inplace: bool = False

    # ------------------------------------------------------------------
    # Array construction
    # ------------------------------------------------------------------
    def asarray(self, data) -> np.ndarray:
        """Normalize ``data`` to this backend's dtype (zero-copy on match).

        Mirrors the tensor constructor's aliasing contract: an ndarray
        already carrying :attr:`dtype` is returned *uncopied*.
        """
        if isinstance(data, np.ndarray):
            if data.dtype != self.dtype:
                return data.astype(self.dtype)
            return data
        return np.asarray(data, dtype=self.dtype)

    # ------------------------------------------------------------------
    # Optimizer kernels
    # ------------------------------------------------------------------
    def sgd_update(
        self,
        data: np.ndarray,
        grad: np.ndarray,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        velocity: Optional[np.ndarray] = None,
        scratch: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One SGD step; returns ``(new_data, new_velocity)``.

        The reference implementation reproduces the historical per-parameter
        arithmetic exactly (same operations, same order, out of place), so
        the default backend is bit-identical to the pre-backend optimizer.
        """
        if weight_decay:
            grad = grad + weight_decay * data
        if momentum:
            if velocity is None:
                velocity = np.zeros_like(data)
            velocity = momentum * velocity + grad
            grad = velocity
        return data - lr * grad, velocity

    # ------------------------------------------------------------------
    # Shared embedding storage (multiprocess training)
    # ------------------------------------------------------------------
    def create_shared_store(self, arrays: Dict[str, np.ndarray]):
        """Map ``arrays`` into a store worker processes can attach.

        Returns a :class:`repro.tensor.sharedmem.SharedEmbeddingStore`
        (workers receive picklable handles and open read-only views of the
        global tables — one physical copy regardless of worker count), or
        ``None`` when the platform provides no usable shared memory, in
        which case callers fall back to pickling the tables inline.  Part
        of the backend seam because the right sharing mechanism is a
        property of the substrate (an accelerator backend would expose
        device memory here instead of POSIX segments).
        """
        from repro.tensor.sharedmem import SharedEmbeddingStore, shared_memory_available

        if not shared_memory_available():  # pragma: no cover - exotic platforms
            return None
        try:
            return SharedEmbeddingStore(
                {name: self.asarray(array) for name, array in arrays.items()}
            )
        except (OSError, ValueError):
            # No /dev/shm, quota exceeded, sandboxed — the dense pickling
            # path still produces identical results, just costs more memory.
            return None

    def adam_update(
        self,
        data: np.ndarray,
        grad: np.ndarray,
        step: int,
        first: np.ndarray,
        second: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        weight_decay: float = 0.0,
        scratch: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One Adam step; returns ``(new_data, new_first, new_second)``.

        Bias corrections use Python-float ``beta ** step`` — the exact
        expression the serial optimizer has always evaluated, which the
        stacked cohort optimizer also matches term by term.
        """
        if weight_decay:
            grad = grad + weight_decay * data
        first = beta1 * first + (1.0 - beta1) * grad
        second = beta2 * second + (1.0 - beta2) * (grad * grad)
        first_hat = first / (1.0 - beta1 ** step)
        second_hat = second / (1.0 - beta2 ** step)
        return data - lr * first_hat / (np.sqrt(second_hat) + eps), first, second

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(name={self.name!r}, dtype={np.dtype(self.dtype).name})"


class NumpyBackend(Backend):
    """The reference backend: float64, out-of-place updates, bit-stable."""

    name = "numpy"
    dtype = np.dtype(np.float64)
    inplace = False


class Numpy32Backend(Backend):
    """Fast backend: float32 compute plus fused in-place optimizer kernels.

    The update kernels run entirely over the parameter's own storage and a
    caller-provided pair of scratch buffers, so a training step performs
    zero parameter-sized allocations (the optimizers hand the same pair
    back every step; a kernel called without scratch allocates its own).
    The arithmetic mirrors the reference kernels term by term
    (multiplication reordered only where IEEE-754 guarantees
    commutativity), which keeps the serial and stacked execution paths
    bit-identical *to each other* under this backend as well.
    """

    name = "numpy32"
    dtype = np.dtype(np.float32)
    inplace = True

    def sgd_update(self, data, grad, lr, momentum=0.0, weight_decay=0.0,
                   velocity=None, scratch=None):
        if scratch is None:
            scratch = (np.empty_like(data), np.empty_like(data))
        scratch_a, scratch_b = scratch
        if weight_decay:
            # weight_decay * data + grad (addition commutes bitwise with
            # the reference's grad + weight_decay * data); grad itself is
            # borrowed from the autograd graph and must not be mutated.
            np.multiply(data, weight_decay, out=scratch_b)
            scratch_b += grad
            grad = scratch_b
        if momentum:
            if velocity is None:
                velocity = np.zeros_like(data)
            velocity *= momentum
            velocity += grad
            grad = velocity
        np.multiply(grad, lr, out=scratch_a)
        data -= scratch_a
        return data, velocity

    def adam_update(self, data, grad, step, first, second, lr, beta1, beta2,
                    eps, weight_decay=0.0, scratch=None):
        if scratch is None:
            scratch = (np.empty_like(data), np.empty_like(data))
        scratch_a, scratch_b = scratch
        if weight_decay:
            np.multiply(data, weight_decay, out=scratch_b)
            scratch_b += grad
            grad = scratch_b  # holds the effective gradient until reused below
        # first = beta1 * first + (1 - beta1) * grad
        np.multiply(first, beta1, out=first)
        np.multiply(grad, 1.0 - beta1, out=scratch_a)
        first += scratch_a
        # second = beta2 * second + (1 - beta2) * grad^2
        np.multiply(second, beta2, out=second)
        np.multiply(grad, grad, out=scratch_a)
        scratch_a *= 1.0 - beta2
        second += scratch_a
        # data -= lr * (first / c1) / (sqrt(second / c2) + eps)
        np.divide(second, 1.0 - beta2 ** step, out=scratch_b)
        np.sqrt(scratch_b, out=scratch_b)
        scratch_b += eps
        np.divide(first, 1.0 - beta1 ** step, out=scratch_a)
        scratch_a *= lr
        scratch_a /= scratch_b
        data -= scratch_a
        return data, first, second


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Backend] = {}

DEFAULT_BACKEND = "numpy"


def register_backend(backend: Backend, overwrite: bool = False) -> Backend:
    """Register ``backend`` under its :attr:`~Backend.name`."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: Union[str, Backend, None]) -> Backend:
    """Resolve a backend by name (``None`` means the currently active one)."""
    if name is None:
        return active_backend()
    if isinstance(name, Backend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown tensor backend {name!r}; registered backends: {available_backends()}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(name: Optional[str]) -> str:
    """Resolve a config-level backend field to a concrete registry name.

    ``None`` adopts the session's active backend; anything else must name
    a registered backend (validated eagerly so a typo fails at config
    construction, not mid-run).  The one policy shared by every config
    type that carries a ``backend`` field (:class:`ExperimentSpec`,
    ``FederatedConfig``).
    """
    if name is None:
        return active_backend().name
    return get_backend(name).name


register_backend(NumpyBackend())
register_backend(Numpy32Backend())


# Two-level policy: a process-wide *session default* (what new threads and
# fresh contexts see) plus a context-local override stack managed by
# ``use_backend``.  Scoped overrides are context-local for the same reason
# the grad-recording flag is — threads must not leak temporary policy into
# each other — while ``set_backend`` deliberately changes the default for
# the whole process (e.g. a CI leg exporting REPRO_BACKEND=numpy32).
_SESSION_DEFAULT: Backend = _REGISTRY[DEFAULT_BACKEND]
_ACTIVE_BACKEND: contextvars.ContextVar[Optional[Backend]] = contextvars.ContextVar(
    "repro_tensor_backend", default=None
)


def active_backend() -> Backend:
    """The backend new tensors and optimizer steps currently use."""
    backend = _ACTIVE_BACKEND.get()
    return backend if backend is not None else _SESSION_DEFAULT


def set_backend(name: Union[str, Backend]) -> Backend:
    """Set the process-wide session default backend.

    Affects every context and thread that has no scoped
    :func:`use_backend` override active.
    """
    global _SESSION_DEFAULT
    _SESSION_DEFAULT = get_backend(name)
    return _SESSION_DEFAULT


@contextlib.contextmanager
def use_backend(name: Union[str, Backend, None]):
    """Context manager activating a backend for the enclosed block.

    ``None`` is a no-op pass-through (callers can thread an optional policy
    without branching).  Nesting restores the previous backend on exit.
    """
    if name is None:
        yield active_backend()
        return
    backend = get_backend(name)
    token = _ACTIVE_BACKEND.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE_BACKEND.reset(token)

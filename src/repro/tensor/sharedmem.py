"""Shared-memory embedding stores for multiprocess training.

The multiprocess scheduler historically shipped the whole global model to
every worker through pickle — ``workers`` full copies of the public
item-embedding table per round, which is exactly the memory wall the
sparse/sharded execution path removes.  A :class:`SharedEmbeddingStore`
maps the global tables into POSIX shared memory once; workers receive only
tiny picklable :class:`SharedTableHandle` descriptors and attach read-only
views, so the table exists in physical memory a single time regardless of
worker count.

Availability is platform-dependent (``/dev/shm`` may be missing or
restricted in sandboxes), so creation is routed through
:meth:`repro.tensor.backend.Backend.create_shared_store`, which returns
``None`` on failure — callers fall back to pickling the tables inline.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms only
    _shm = None

__all__ = ["SharedEmbeddingStore", "SharedTableHandle", "shared_memory_available"]


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments at all."""
    return _shm is not None


def _attach_untracked(segment_name: str):
    # A process that merely *attaches* a segment still registers it with
    # its resource tracker (Python 3.13 grew ``track=False`` for exactly
    # this); ownership here is explicit — the creating store unlinks — so
    # an attachment must not be tracked: worker exit would try to unlink
    # segments the parent still owns, and with a fork-shared tracker,
    # several workers attaching the same segment underflow its per-name
    # set.  Suppress registration at attach time on older interpreters.
    try:
        return _shm.SharedMemory(name=segment_name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(path, rtype):
        if rtype != "shared_memory":
            original(path, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _shm.SharedMemory(name=segment_name)
    finally:
        resource_tracker.register = original


class SharedTableHandle:
    """Picklable descriptor of one shared table.

    Ships (segment name, shape, dtype) to a worker process; :meth:`open`
    attaches the segment and returns a read-only ndarray view over it.
    The handle keeps the attachment alive until :meth:`close`.
    """

    def __init__(self, name: str, segment_name: str, shape, dtype):
        self.name = name
        self.segment_name = segment_name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype).str
        self._segment = None

    def open(self) -> np.ndarray:
        """Attach the segment and return a read-only view of the table."""
        if _shm is None:  # pragma: no cover - exotic platforms only
            raise RuntimeError("shared memory is unavailable on this platform")
        if self._segment is None:
            self._segment = _attach_untracked(self.segment_name)
        view = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=self._segment.buf
        )
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Detach from the segment (the owner unlinks; this never does)."""
        if self._segment is not None:
            try:
                self._segment.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            self._segment = None

    # Attachments are per-process state; a pickled handle arrives closed.
    def __getstate__(self):
        return {
            "name": self.name,
            "segment_name": self.segment_name,
            "shape": self.shape,
            "dtype": self.dtype,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._segment = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SharedTableHandle(name={self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )


class SharedEmbeddingStore:
    """Owns shared-memory copies of a set of named tables.

    The creating process writes each array into its own segment and hands
    out :class:`SharedTableHandle` descriptors via :attr:`handles`.  The
    store owns the segments: :meth:`close` detaches *and unlinks* them, so
    it must outlive every worker that attached.  Use as a context manager
    around the worker pool.
    """

    def __init__(self, arrays: Dict[str, np.ndarray]):
        if _shm is None:  # pragma: no cover - exotic platforms only
            raise OSError("shared memory is unavailable on this platform")
        self._segments = []
        self.handles: Dict[str, SharedTableHandle] = {}
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = _shm.SharedMemory(create=True, size=max(1, array.nbytes))
                self._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self.handles[name] = SharedTableHandle(
                    name, segment.name, array.shape, array.dtype
                )
        except Exception:
            self.close()
            raise

    @property
    def total_bytes(self) -> int:
        """Bytes of shared memory the store holds across all segments."""
        return sum(segment.size for segment in self._segments)

    def close(self) -> None:
        """Detach and unlink every segment (idempotent)."""
        for segment in self._segments:
            for method in (segment.close, segment.unlink):
                try:
                    method()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
        self._segments = []
        self.handles = {}

    def __enter__(self) -> "SharedEmbeddingStore":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None

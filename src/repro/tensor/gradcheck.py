"""Finite-difference gradient checking for the autodiff engine.

The recommendation models in this repository stand on a from-scratch
autograd implementation, so correctness of the backward passes is verified
both here (as a reusable utility) and in dedicated unit tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d func() / d parameter`` by central finite differences.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor`; it is re-evaluated with perturbed parameter values.
    """
    grad = np.zeros_like(parameter.data)
    flat_param = parameter.data.ravel()
    flat_grad = grad.ravel()
    for index in range(flat_param.size):
        original = flat_param[index]
        flat_param[index] = original + epsilon
        upper = func().item()
        flat_param[index] = original - epsilon
        lower = func().item()
        flat_param[index] = original
        flat_grad[index] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare autodiff gradients with finite differences.

    Returns ``True`` when every parameter's analytic gradient matches the
    numerical estimate within ``atol``/``rtol``; raises ``AssertionError``
    with a diagnostic otherwise.
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = func()
    loss.backward()
    for position, parameter in enumerate(parameters):
        analytic = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
        numeric = numerical_gradient(func, parameter, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for parameter #{position}: max abs diff {worst:.3e}"
            )
    return True

"""Finite-difference gradient checking for the autodiff engine.

The recommendation models in this repository stand on a from-scratch
autograd implementation, so correctness of the backward passes is verified
both here (as a reusable utility) and in dedicated unit tests.

The checker is backend-aware: perturbation size and tolerances default per
parameter dtype.  Float64 keeps the historical tight settings; float32
needs a larger epsilon (the optimal central-difference step scales with
the cube root of the machine epsilon) and looser tolerances, because the
function itself is only evaluated to ~1e-7 relative precision.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

#: Per-dtype defaults: ``(epsilon, atol, rtol)``.
_TOLERANCES = {
    np.dtype(np.float64): (1e-6, 1e-4, 1e-3),
    np.dtype(np.float32): (5e-3, 2e-2, 5e-2),
}


def tolerances_for(dtype) -> tuple:
    """Return ``(epsilon, atol, rtol)`` appropriate for ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype in _TOLERANCES:
        return _TOLERANCES[dtype]
    # Unknown float widths: derive from the machine epsilon.
    machine = float(np.finfo(dtype).eps)
    epsilon = machine ** (1.0 / 3.0)
    return epsilon, 100.0 * machine, 1000.0 * machine


def numerical_gradient(
    func: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: Optional[float] = None,
    indices: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Estimate ``d func() / d parameter`` by central finite differences.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor`; it is re-evaluated with perturbed parameter values.
    ``epsilon`` defaults to the dtype-appropriate step from
    :func:`tolerances_for`.  ``indices`` restricts the estimate to the
    given flat indices (other entries stay zero) — the kink-refinement
    pass uses this to re-probe only the disagreeing entries instead of
    paying two forward evaluations for every element again.

    Perturbations are written through multi-dimensional indexing into the
    parameter's own storage, so the check is valid for non-contiguous
    arrays too (``ravel()`` would silently perturb a private copy there —
    reachable now that the zero-copy constructor can wrap views).
    """
    if epsilon is None:
        epsilon = tolerances_for(parameter.data.dtype)[0]
    data = parameter.data
    grad = np.zeros(data.shape, dtype=np.float64)
    flat_grad = grad.ravel()
    flat_indices = range(data.size) if indices is None else indices
    for index in flat_indices:
        position = np.unravel_index(int(index), data.shape)
        original = data[position]
        data[position] = original + epsilon
        upper = func().item()
        data[position] = original - epsilon
        lower = func().item()
        data[position] = original
        # The perturbation actually applied is the *rounded* step (what the
        # dtype could represent), so divide by it rather than by 2*epsilon
        # — this alone removes most float32 finite-difference error.
        applied = float(original + epsilon) - float(original - epsilon)
        if applied == 0.0:
            applied = 2.0 * epsilon
        flat_grad[index] = (upper - lower) / applied
    return grad.astype(data.dtype, copy=False)


def check_gradients(
    func: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: Optional[float] = None,
    atol: Optional[float] = None,
    rtol: Optional[float] = None,
) -> bool:
    """Compare autodiff gradients with finite differences.

    Returns ``True`` when every parameter's analytic gradient matches the
    numerical estimate within ``atol``/``rtol``; raises ``AssertionError``
    with a diagnostic otherwise.  Unset settings default per parameter
    dtype (see :func:`tolerances_for`), so the same check runs under both
    the float64 reference backend and the float32 fast backend.

    Float64 parameters get the strict verdict: any mismatch raises.  For
    narrower dtypes, whose usable finite-difference step is wide enough to
    straddle relu/clip kinks, mismatching entries are re-probed at half
    the step and excluded when the estimate itself is unstable (with a
    ``RuntimeWarning`` if *every* mismatch was excluded that way).
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = func()
    loss.backward()
    for position, parameter in enumerate(parameters):
        default_eps, default_atol, default_rtol = tolerances_for(parameter.data.dtype)
        eps_ = epsilon if epsilon is not None else default_eps
        atol_ = atol if atol is not None else default_atol
        rtol_ = rtol if rtol is not None else default_rtol
        analytic = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
        numeric = numerical_gradient(func, parameter, epsilon=eps_)
        mismatch = ~np.isclose(analytic, numeric, atol=atol_, rtol=rtol_)
        if mismatch.any() and np.dtype(parameter.data.dtype).itemsize >= 8:
            # Float64 keeps the historical strict verdict: with a 1e-6 step
            # a kink inside the perturbation is vanishingly unlikely, and
            # excusing step-sensitive entries would let a genuinely wrong
            # backward slip through the reference check.
            worst = np.max(np.abs(np.asarray(analytic, dtype=np.float64)
                                  - np.asarray(numeric, dtype=np.float64))[mismatch])
            raise AssertionError(
                f"gradient mismatch for parameter #{position} "
                f"(dtype {parameter.data.dtype}): max abs diff {worst:.3e}"
            )
        if mismatch.any():
            # A piecewise-linear function (ReLU, clip) whose kink lies
            # within the perturbation makes the finite difference itself
            # meaningless for that entry — the float32 step is wide enough
            # to hit this in practice.  Re-estimate *only the disagreeing
            # entries* with half the step: entries where the two estimates
            # disagree are unstable (a kink, not a backward bug) and are
            # excluded from the verdict.
            suspects = np.flatnonzero(mismatch.ravel())
            refined = numerical_gradient(
                func, parameter, epsilon=eps_ / 2.0, indices=suspects
            )
            unstable = np.zeros(mismatch.shape, dtype=bool)
            unstable.ravel()[suspects] = ~np.isclose(
                refined.ravel()[suspects], numeric.ravel()[suspects],
                atol=atol_, rtol=rtol_,
            )
            genuine = mismatch & ~unstable
            if mismatch.any() and not genuine.any():
                # Every disagreeing entry sat on a kink: the check passes,
                # but say so — a pervasively non-smooth point certifies
                # nothing, and the caller should pick smoother inputs.
                import warnings

                warnings.warn(
                    f"check_gradients: parameter #{position} passed only "
                    f"because all {int(mismatch.sum())} mismatching entries "
                    "were numerically unstable (kinks inside the "
                    "finite-difference step); choose inputs away from "
                    "relu/clip thresholds for a meaningful check",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if genuine.any():
                worst = np.max(np.abs(
                    np.asarray(analytic, dtype=np.float64)
                    - np.asarray(numeric, dtype=np.float64)
                )[genuine])
                raise AssertionError(
                    f"gradient mismatch for parameter #{position} "
                    f"(dtype {parameter.data.dtype}): max abs diff {worst:.3e}"
                )
    return True

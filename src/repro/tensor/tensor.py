"""A small reverse-mode autodiff engine over NumPy arrays.

The engine records a dynamic computation graph: every operation returns a
new :class:`Tensor` that remembers its parent tensors and a closure which
propagates the output gradient back to them.  Calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph
and accumulates gradients into every tensor created with
``requires_grad=True``.

Only the operations required by the recommendation models in this
repository are implemented, but each one supports full NumPy broadcasting
and is covered by finite-difference gradient checks in the test suite.

Precision policy
----------------
The floating dtype of new tensors is owned by the active
:class:`~repro.tensor.backend.Backend` (float64 under the default
``"numpy"`` backend, float32 under ``"numpy32"``).  Operations *preserve*
their operands' dtype — only construction from foreign data consults the
backend — so a float32 model keeps computing in float32 even when no
backend is explicitly activated around inference.

Gradient recording is context-local (:func:`no_grad` in one thread never
disables recording in another), and when recording is off each operation
skips graph bookkeeping entirely: no parent links, no backward closure,
just the raw NumPy computation.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.backend import active_backend
from repro.utils.rng import seeded_rng

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Context-local so that ``no_grad`` composes with threads: an inference
# thread in the serving tier must not switch off recording for a training
# thread sharing the process (a plain module global did exactly that).
_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (context-local)."""
    return _GRAD_ENABLED.get()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for inference passes (e.g. producing the prediction scores that
    clients upload in PTF-FedRec) where building a graph would waste time
    and memory.  Inside the context every operation takes the fast path:
    it computes its NumPy result and returns a bare tensor with no parents
    and no backward closure.

    The flag lives in a :class:`contextvars.ContextVar`, so the context
    only affects the current thread (and tasks spawned from it) —
    concurrent training in another thread keeps recording.
    """
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    """Normalize ``data`` to an ndarray of ``dtype`` (backend default).

    **Aliasing contract** (same as :meth:`Backend.asarray`, to which the
    default branch delegates): an ndarray already carrying the target
    dtype is returned *uncopied* — the caller's array and the tensor share
    storage, so in-place writes through either alias are visible through
    both.  The optimizers rely on this (they update ``Tensor.data`` that
    model code keeps referencing); callers that need isolation pass
    ``copy=True`` to the :class:`Tensor` constructor.  A dtype mismatch
    always allocates (``astype`` copies).
    """
    if dtype is None:
        # Delegate so a registered custom backend's asarray override (a
        # pinned-memory or device backend, say) governs construction too.
        return active_backend().asarray(data)
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce(other, like: np.ndarray) -> "Tensor":
    """Wrap a non-Tensor binary-op operand in the *tensor's own* dtype.

    Scalars and foreign arrays follow the tensor they combine with (the way
    NEP 50 treats weak scalars), not the ambient backend — so ``x * 2.0``
    on a float32 model stays float32 even outside ``use_backend``.  Under
    the default backend everything is float64 either way, so the reference
    path is unchanged bit for bit.
    """
    if isinstance(other, Tensor):
        return other
    return Tensor._wrap(_as_array(other, dtype=like.dtype))


def _recording(*parents: "Tensor") -> bool:
    """Whether an op over ``parents`` must record graph bookkeeping."""
    if not _GRAD_ENABLED.get():
        return False
    for parent in parents:
        if parent.requires_grad or parent._backward is not None:
            return True
    return False


class Tensor:
    """A NumPy array with an optional gradient and autodiff history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
        copy: bool = False,
    ):
        """Wrap ``data`` in a tensor of the active backend's dtype.

        By default an ndarray that already carries the backend dtype is
        **shared, not copied** (see :func:`_as_array`); ``copy=True``
        forces the tensor to own private storage regardless.
        """
        array = _as_array(data)
        if copy and array is data:
            array = array.copy()
        self.data = array
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED.get()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(data: np.ndarray) -> "Tensor":
        """Wrap an op result as-is: no dtype normalization, no copy.

        Internal fast constructor for operation outputs — their dtype is
        already determined by the operands (which is what keeps float32
        models in float32 without an active backend), so routing them
        through ``__init__`` would at best be a wasted check and at worst
        an unwanted upcast.
        """
        out = Tensor.__new__(Tensor)
        out.data = data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out.name = None
        return out

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else seeded_rng()
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor._wrap(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # First contribution: copy instead of zeros-then-add (saves a
            # full allocation + pass on every parameter every step).
            self.grad = np.array(grad)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad and self._backward is None:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]) -> "Tensor":
        """Attach graph bookkeeping to an op result.

        Callers guard with :func:`_recording` first — when recording is off
        they return ``Tensor._wrap(data)`` directly and never even build
        the backward closure.
        """
        out = Tensor._wrap(data)
        out._parents = parents
        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = _coerce(other, self.data)
        data = self.data + other.data
        if not _recording(self, other):
            return Tensor._wrap(data)

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = _coerce(other, self.data)
        data = self.data - other.data
        if not _recording(self, other):
            return Tensor._wrap(data)

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _coerce(other, self.data) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = _coerce(other, self.data)
        data = self.data * other.data
        if not _recording(self, other):
            return Tensor._wrap(data)

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = _coerce(other, self.data)
        data = self.data / other.data
        if not _recording(self, other):
            return Tensor._wrap(data)

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _coerce(other, self.data) / self

    def __neg__(self) -> "Tensor":
        data = -self.data
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (-grad,)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product, including stacked (batched) operands.

        Operands with ``ndim >= 3`` follow NumPy's ``matmul`` semantics: the
        product is computed per leading-axis slice, which is how
        :mod:`repro.engine` runs one cohort of per-client models as a single
        stacked operation.
        """
        other = _coerce(other, self.data)
        data = self.data @ other.data
        if not _recording(self, other):
            return Tensor._wrap(data)

        def backward(grad):
            if self.data.ndim >= 2 and other.data.ndim >= 2:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
            else:
                grad_self = grad @ other.data.T if other.data.ndim == 2 else np.outer(grad, other.data)
                grad_other = self.data.T @ grad if self.data.ndim == 2 else np.outer(self.data, grad)
            return (
                _unbroadcast(grad_self, self.shape),
                _unbroadcast(grad_other, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self) -> "Tensor":
        data = self.data.T
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad.T,)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors NumPy naming
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes (a view-level transpose for stacked tensors).

        The stacked execution engine uses ``weights.swapaxes(-1, -2)`` where
        2-D code would write ``weights.T``, so a cohort of per-client linear
        layers multiplies as one batched ``matmul``.
        """
        data = self.data.swapaxes(axis1, axis2)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad.swapaxes(axis1, axis2),)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            grad_arr = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis)
            return (np.broadcast_to(grad_arr, self.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (grad * np.where(mask, 1.0, negative_slope),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        if not _recording(self):
            return Tensor._wrap(data)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Indexing / gathering
    # ------------------------------------------------------------------
    def index_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index (embedding lookup).

        The backward pass scatter-adds the incoming gradient back to the
        selected rows, which is exactly the sparse update an embedding
        table receives.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape combinators
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_group(tensors: Iterable) -> List["Tensor"]:
        """Wrap a mixed tensor/array sequence for a shape combinator.

        Raw operands follow the dtype of the first actual tensor in the
        group (the same weak-operand rule as the binary ops); an all-raw
        group falls back to the active backend via the constructor.
        """
        tensors = list(tensors)
        reference = next((t.data for t in tensors if isinstance(t, Tensor)), None)
        if reference is None:
            return [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        return [t if isinstance(t, Tensor) else _coerce(t, reference) for t in tensors]

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        tensors = Tensor._coerce_group(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        if not _recording(*tensors):
            return Tensor._wrap(data)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad):
            splits = np.cumsum(sizes)[:-1]
            pieces = np.split(grad, splits, axis=axis)
            return tuple(pieces)

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = Tensor._coerce_group(tensors)
        data = np.stack([t.data for t in tensors], axis=axis)
        if not _recording(*tensors):
            return Tensor._wrap(data)

        def backward(grad):
            pieces = np.split(grad, len(tensors), axis=axis)
            return tuple(np.squeeze(p, axis=axis) for p in pieces)

        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Sparse support
    # ------------------------------------------------------------------
    def sparse_matmul(self, matrix: sp.spmatrix) -> "Tensor":
        """Compute ``matrix @ self`` for a constant sparse ``matrix``.

        Used by the graph models (NGCF, LightGCN) to propagate embeddings
        over the normalized bipartite adjacency.  The sparse matrix is a
        constant of the dataset, so only the dense operand receives a
        gradient: ``d(matrix @ X)/dX = matrix^T``.
        """
        csr = matrix.tocsr()
        data = csr @ self.data
        if not _recording(self):
            return Tensor._wrap(data)

        def backward(grad):
            return (csr.T @ grad,)

        return Tensor._make(data, (self,), backward)

"""Rows-touched sparse payloads for federated parameter exchange.

A federated client only ever updates a handful of rows of the global
embedding tables — the items it interacted with this round — yet the dense
exchange path ships and accumulates full ``(rows, dim)`` deltas per
client.  :class:`SparseDelta` is the wire/aggregation representation that
scales: the sorted row indices a client touched plus the value block for
exactly those rows.  Everything else about the payload (which floats, in
which order they are accumulated) is preserved, so the sparse execution
path stays ``==``-identical to the dense reference: skipping a row whose
delta is exactly ``0.0`` only ever skips adding ``+0.0`` to an
accumulator, which cannot change any value an equality test observes.

Payloads cover two parameter families:

* **row tables** (item-embedding matrices): ``indices`` holds the touched
  rows, ``values`` the ``(num_rows, dim)`` block;
* **dense blocks** (meta-network weights, biases — parameters every
  client updates in full): represented as an all-rows payload via
  :meth:`SparseDelta.dense_block`, so one type models the whole exchange.

>>> import numpy as np
>>> delta = SparseDelta.from_dense(np.array([[0.0, 0.0], [1.5, 0.0], [0.0, 2.0]]))
>>> delta.indices.tolist()
[1, 2]
>>> delta.num_rows, delta.row_width
(2, 2)
>>> out = np.zeros((3, 2))
>>> delta.add_into(out)
>>> bool(np.array_equal(out, delta.to_dense()))
True
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["SparseDelta"]


class SparseDelta:
    """A rows-touched view of a dense parameter delta.

    ``shape`` is the full dense shape, ``indices`` the sorted, duplicate-free
    axis-0 rows the payload carries, and ``values`` the corresponding value
    block of shape ``(len(indices), *shape[1:])``.  Instances are
    value-objects: construction validates, and all combining operations
    return new instances or write into caller-provided dense accumulators.
    """

    __slots__ = ("shape", "indices", "values")

    def __init__(
        self,
        shape: Sequence[int],
        indices: np.ndarray,
        values: np.ndarray,
    ):
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values)
        if not self.shape:
            raise ValueError("SparseDelta needs at least a 1-D dense shape")
        if self.indices.ndim != 1:
            raise ValueError(
                f"indices must be 1-D, got shape {self.indices.shape}"
            )
        if self.values.shape != (self.indices.size,) + self.shape[1:]:
            raise ValueError(
                f"values shape {self.values.shape} does not match "
                f"{(self.indices.size,) + self.shape[1:]} for dense shape {self.shape}"
            )
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.shape[0]:
                raise ValueError(
                    f"indices out of range for axis 0 of shape {self.shape}"
                )
            steps = np.diff(self.indices)
            if (steps == 0).any():
                raise ValueError("duplicate row indices in SparseDelta")
            if (steps < 0).any():
                raise ValueError("row indices must be sorted ascending")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> "SparseDelta":
        """Encode a dense delta, keeping ``rows`` (or every nonzero row).

        ``rows`` may carry duplicates and arbitrary order — it is sorted
        and deduplicated (a client's batch item lists repeat items freely).
        With ``rows=None`` the touched set is detected from the data: any
        row containing a nonzero entry.
        """
        dense = np.asarray(dense)
        if rows is None:
            flat = dense.reshape(dense.shape[0], -1) if dense.ndim > 1 else dense[:, None]
            rows = np.flatnonzero(np.any(flat != 0, axis=1))
        else:
            rows = np.unique(np.asarray(rows, dtype=np.int64))
        return cls(dense.shape, rows, dense[rows].copy())

    @classmethod
    def dense_block(cls, dense: np.ndarray) -> "SparseDelta":
        """An all-rows payload (parameters every client ships in full)."""
        dense = np.asarray(dense)
        return cls(dense.shape, np.arange(dense.shape[0], dtype=np.int64), dense.copy())

    @classmethod
    def between(
        cls, updated: np.ndarray, base: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> "SparseDelta":
        """The delta ``updated - base`` restricted to ``rows``.

        Subtraction happens *only* at the touched rows, so encoding a
        client's update costs ``O(touched × dim)`` — never a full-table
        temporary.  ``rows=None`` ships the whole difference as a dense
        block (used for meta-network weights).
        """
        updated = np.asarray(updated)
        base = np.asarray(base)
        if updated.shape != base.shape:
            raise ValueError(
                f"updated shape {updated.shape} != base shape {base.shape}"
            )
        if rows is None:
            return cls.dense_block(updated - base)
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        return cls(updated.shape, rows, updated[rows] - base[rows])

    # ------------------------------------------------------------------
    # Shape / size accounting
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """How many axis-0 rows the payload carries."""
        return int(self.indices.size)

    @property
    def row_width(self) -> int:
        """Float values per row (1 for vector parameters)."""
        return int(np.prod(self.shape[1:], dtype=np.int64)) if len(self.shape) > 1 else 1

    @property
    def num_values(self) -> int:
        """Total float values in the payload."""
        return self.num_rows * self.row_width

    @property
    def density(self) -> float:
        """Fraction of the dense table's rows this payload carries."""
        return self.num_rows / self.shape[0] if self.shape[0] else 0.0

    # ------------------------------------------------------------------
    # Dense interop
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The equivalent full-shape dense delta (zeros off the rows)."""
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        dense[self.indices] = self.values
        return dense

    def add_into(self, out: np.ndarray, weight: Optional[float] = None) -> None:
        """Accumulate into a dense array: ``out[rows] += weight * values``.

        Row indices are unique by construction, so fancy-index ``+=`` is an
        exact scatter-add.  With ``weight=None`` the values are added as-is
        (bitwise the same additions the dense path performs at these rows);
        a float weight reproduces the dense ``out += weight * delta``
        elementwise arithmetic at the touched rows.
        """
        if out.shape != self.shape:
            raise ValueError(f"accumulator shape {out.shape} != {self.shape}")
        if weight is None:
            out[self.indices] += self.values
        else:
            out[self.indices] += weight * self.values

    def count_into(self, out: np.ndarray, weight: Optional[float] = None) -> None:
        """Accumulate the nonzero mask: ``out[rows] += weight * (values != 0)``.

        This is the sparse twin of the dense update-count accumulation
        ``count += (delta != 0.0)`` — rows off the payload have an exactly
        zero delta and would contribute ``+0.0``.
        """
        if out.shape != self.shape:
            raise ValueError(f"accumulator shape {out.shape} != {self.shape}")
        mask = self.values != 0.0
        if weight is None:
            out[self.indices] += mask
        else:
            out[self.indices] += weight * mask

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merge(self, other: "SparseDelta") -> "SparseDelta":
        """Row-union sum of two payloads over the same dense shape.

        Overlapping rows add their value blocks (``self + other``, in that
        operand order); disjoint rows pass through.  Useful for folding a
        cohort's payloads into one buffered aggregate.
        """
        if other.shape != self.shape:
            raise ValueError(f"cannot merge shapes {self.shape} and {other.shape}")
        union = np.union1d(self.indices, other.indices)
        values = np.zeros((union.size,) + self.shape[1:],
                          dtype=np.result_type(self.values, other.values))
        values[np.searchsorted(union, self.indices)] += self.values
        values[np.searchsorted(union, other.indices)] += other.values
        return SparseDelta(self.shape, union, values)

    # ------------------------------------------------------------------
    # Serialization (checkpoint state trees)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint-safe encoding (plain ints + ndarrays)."""
        return {
            "kind": "sparse-delta",
            "shape": [int(s) for s in self.shape],
            "indices": self.indices.copy(),
            "values": self.values.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "SparseDelta":
        """Inverse of :meth:`state_dict`."""
        if state.get("kind") != "sparse-delta":
            raise ValueError(f"not a SparseDelta state dict: {state.get('kind')!r}")
        return cls(
            tuple(int(s) for s in state["shape"]),
            np.asarray(state["indices"], dtype=np.int64),
            np.asarray(state["values"]),
        )

    @staticmethod
    def is_state_dict(value: object) -> bool:
        """Whether ``value`` is a :meth:`state_dict` encoding."""
        return isinstance(value, dict) and value.get("kind") == "sparse-delta"

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseDelta):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    # Mutable-array value object: equality is by content, so unhashable.
    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"SparseDelta(shape={self.shape}, rows={self.num_rows}, "
            f"density={self.density:.3f})"
        )

"""Functional helpers built on top of :class:`repro.tensor.Tensor`.

These are thin, composable wrappers used by the model and loss code; they
keep the numerically delicate pieces (log-sigmoid, clipped BCE) in one
place so that every model shares the same stable implementations.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.tensor.tensor import Tensor

_EPS = 1e-12


def _as_targets(targets, like: Tensor) -> Tensor:
    """Wrap targets in the *predictions'* dtype, not the ambient backend's.

    Losses follow the same weak-operand rule as the tensor binary ops: a
    float32 model's loss stays float32 even when computed outside any
    ``use_backend`` context (a plain ``Tensor(targets)`` would adopt the
    ambient dtype and silently promote the whole loss graph).
    """
    if isinstance(targets, Tensor):
        return targets
    return Tensor._wrap(np.asarray(targets, dtype=like.data.dtype))


def _clip_eps(dtype) -> float:
    """Probability-clipping epsilon for ``dtype``.

    Float64 keeps the historical ``1e-12`` (bit-identical reference path).
    Narrower dtypes need a wider margin: in float32, ``1.0 - 1e-12`` rounds
    to exactly ``1.0`` and ``(1 - p).log()`` would produce ``-inf`` — so the
    epsilon becomes the dtype's ``epsneg`` (the gap below 1.0), the
    tightest clip that still keeps both logs finite.
    """
    if np.dtype(dtype).itemsize >= 8:
        return _EPS
    return float(np.finfo(dtype).epsneg)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    return x.sigmoid()


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return x.tanh()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Elementwise leaky ReLU (NGCF uses slope 0.2 as in the original)."""
    return x.leaky_relu(negative_slope)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    return Tensor.concat(tensors, axis=axis)


def binary_cross_entropy(probabilities: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean binary cross-entropy between probabilities and (soft) targets.

    Supports soft labels in ``[0, 1]``, which PTF-FedRec relies on: both
    the server (Eq. 5) and the clients (Eq. 3) train against prediction
    scores produced by the other side.
    """
    targets = _as_targets(targets, probabilities)
    eps = _clip_eps(probabilities.data.dtype)
    clipped = probabilities.clip(eps, 1.0 - eps)
    loss = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    return loss.mean()


def binary_cross_entropy_per_row(
    probabilities: Tensor, targets: Union[Tensor, np.ndarray]
) -> Tensor:
    """Per-row mean binary cross-entropy over the last axis.

    For a stacked cohort of shape ``(clients, batch)`` this returns one loss
    per client, each computed with exactly the same elementwise operations
    and the same ``1/batch`` scaling as :func:`binary_cross_entropy` applies
    to a single client's 1-D batch — the property that makes the batched
    execution engine bit-identical to the serial per-client loop.
    """
    targets = _as_targets(targets, probabilities)
    eps = _clip_eps(probabilities.data.dtype)
    clipped = probabilities.clip(eps, 1.0 - eps)
    loss = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    return loss.mean(axis=loss.ndim - 1)


def binary_cross_entropy_with_logits(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean BCE computed from raw logits (numerically stable path)."""
    return binary_cross_entropy(logits.sigmoid(), targets)


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss (Rendle et al., 2009).

    Provided for completeness: the centralized graph recommenders are
    commonly trained with BPR, and the test suite checks that both BCE and
    BPR training paths improve ranking quality.
    """
    difference = positive_scores - negative_scores
    eps = _clip_eps(difference.data.dtype)
    return -(difference.sigmoid().clip(eps, 1.0).log()).mean()


def l2_regularization(tensors: Iterable[Tensor], weight: float) -> Tensor:
    """Sum of squared values over ``tensors`` scaled by ``weight``."""
    total = None
    for tensor in tensors:
        term = (tensor * tensor).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight


def mse_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    targets = _as_targets(targets, predictions)
    diff = predictions - targets
    return (diff * diff).mean()

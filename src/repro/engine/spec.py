"""Configuration for the client-simulation execution engine.

An :class:`EngineSpec` is the ``engine={...}`` section of an
:class:`~repro.experiments.spec.ExperimentSpec`.  It chooses *how* the
per-round client work is executed — it never changes *what* is computed:
every scheduler is bit-identical to the serial reference path on a fixed
seed, because all client randomness is spawned from
``(seed, component, client, round)`` and never from execution order.

Example — select the vectorized scheduler and bound cohort memory:

>>> spec = EngineSpec(scheduler="batched", max_cohort=64)
>>> spec.scheduler
'batched'
>>> EngineSpec(scheduler="teleport")
Traceback (most recent call last):
    ...
ValueError: scheduler must be one of ('serial', 'batched', 'multiprocess'), got 'teleport'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: The available execution strategies.  ``"serial"`` is the reference
#: per-client Python loop; ``"batched"`` stacks the cohort's local training
#: into vectorized tensor ops (see :mod:`repro.engine.batch`);
#: ``"multiprocess"`` fans clients out to worker processes.
SCHEDULER_MODES: Tuple[str, ...] = ("serial", "batched", "multiprocess")

#: The available parameter-exchange formats for the FedAvg-style baselines.
#: ``"dense"`` ships and aggregates full public tables per client (the
#: original protocol simulation); ``"sparse"`` exchanges rows-touched
#: :class:`~repro.tensor.sparse.SparseDelta` payloads — bit-identical
#: results, bounded per-client memory and faithful communication metering.
PAYLOAD_FORMATS: Tuple[str, ...] = ("dense", "sparse")


@dataclass
class EngineSpec:
    """How one round's client work is scheduled and executed.

    ``scheduler``
        One of :data:`SCHEDULER_MODES`.  All schedulers produce bit-identical
        results on the same seed; they differ only in speed and footprint.
    ``max_cohort``
        Upper bound on how many clients the batched scheduler stacks into a
        single :class:`~repro.engine.batch.ClientBatch`.  Stacked state costs
        ``O(max_cohort × model size)`` memory, so lower it for large models
        and raise it for tiny ones.  Chunking never changes results — clients
        are independent.
    ``workers``
        Worker-process count for the multiprocess scheduler; ``0`` means
        "use all available cores".
    ``fallback``
        What the batched scheduler does with a client model it has no stacked
        implementation for: ``"serial"`` quietly trains those clients on the
        reference path, ``"error"`` raises.
    ``payload``
        One of :data:`PAYLOAD_FORMATS`.  ``"sparse"`` makes the FedAvg-style
        drivers exchange rows-touched :class:`~repro.tensor.sparse.SparseDelta`
        payloads instead of full public tables — bit-identical training
        results, but per-client intermediates shrink from ``O(table)`` to
        ``O(rows touched)`` and the communication ledger meters what is
        actually sent.  The PTF protocol's exchange (prediction triples) is
        natively sparse, so the knob is a no-op there.
    ``shard_size``
        Stream each round's cohort through the schedulers in contiguous
        shards of at most this many clients (``0`` = one shard).  Sharding
        bounds peak memory — per-shard plan and payload buffers never exceed
        ``O(shard_size)`` — and never changes results: shards are processed
        in cohort order, so aggregation performs the exact same additions.
    """

    scheduler: str = "serial"
    max_cohort: int = 128
    workers: int = 0
    fallback: str = "serial"
    payload: str = "dense"
    shard_size: int = 0

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_MODES:
            raise ValueError(
                f"scheduler must be one of {SCHEDULER_MODES}, got {self.scheduler!r}"
            )
        if self.max_cohort <= 0:
            raise ValueError(f"max_cohort must be positive, got {self.max_cohort}")
        if self.workers < 0:
            raise ValueError(f"workers must be non-negative, got {self.workers}")
        if self.fallback not in ("serial", "error"):
            raise ValueError(
                f"fallback must be 'serial' or 'error', got {self.fallback!r}"
            )
        if self.payload not in PAYLOAD_FORMATS:
            raise ValueError(
                f"payload must be one of {PAYLOAD_FORMATS}, got {self.payload!r}"
            )
        if self.shard_size < 0:
            raise ValueError(
                f"shard_size must be non-negative, got {self.shard_size}"
            )

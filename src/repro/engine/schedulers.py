"""Execution schedulers: serial, batched (vectorized) and multiprocess.

A :class:`Scheduler` owns *how* one round of client work runs.  The
protocol drivers (:class:`repro.core.protocol.PTFFedRec` and
:class:`repro.federated.base.ParameterTransmissionFedRec`) describe the
round — which clients, which round index, which global state — and the
scheduler decides execution: one client at a time (:class:`Scheduler`),
stacked into vectorized tensor ops (:class:`BatchedScheduler`), or fanned
out to worker processes (:class:`MultiprocessScheduler`).

Every scheduler is bit-identical to the serial reference on a fixed seed:
client randomness is keyed by ``(seed, component, client, round)`` — never
by execution order — and the stacked path replays the exact serial
arithmetic (see :mod:`repro.engine.batch`).

Two :class:`~repro.engine.spec.EngineSpec` knobs bound a round's memory so
cohorts of 10k–1M clients stream through a fixed envelope:

``shard_size``
    Every scheduler processes the cohort in contiguous shards
    (:meth:`Scheduler.iter_shards`): plans, stacked state, worker payloads
    and per-client deltas are materialized for at most one shard at a
    time.  Shards are processed — and aggregated — in cohort order, so the
    additions performed are exactly those of the unsharded round.

``payload="sparse"``
    The FedAvg baselines exchange rows-touched
    :class:`~repro.tensor.sparse.SparseDelta` payloads instead of full
    public tables.  Bit-identical by IEEE-754 arithmetic: a row outside a
    client's touched set receives exactly zero gradient, so its delta is
    ``+0.0`` and skipping its accumulation changes no aggregate.  The
    sparse multiprocess path additionally maps the global item tables into
    shared memory (:meth:`repro.tensor.backend.Backend.create_shared_store`)
    so workers attach one physical copy instead of unpickling their own.

Per-client touched-row statistics flow back to the drivers through the
:meth:`Scheduler.pop_touched` side-channel so the communication ledger can
meter sparse uploads faithfully.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

# repro: disable=backend-purity -- cohort index bookkeeping and worker payload marshalling
import numpy as np

from repro.engine.batch import (
    ClientBatch,
    ClientTrainingPlan,
    StackedSGD,
    stack_models,
)
from repro.engine.spec import EngineSpec
from repro.tensor.backend import get_backend, use_backend
from repro.tensor.sparse import SparseDelta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.client import ClientUpload, PTFClient
    from repro.core.server import DispersedDataset, PTFServer

#: user -> parameter name -> (rows shipped, values per row); what the
#: drivers meter sparse uploads from.
TouchedStats = Dict[int, Dict[str, Tuple[int, int]]]


def create_scheduler(spec: Optional[EngineSpec] = None) -> "Scheduler":
    """Build the scheduler an :class:`EngineSpec` names (default serial)."""
    spec = spec if spec is not None else EngineSpec()
    classes = {
        "serial": Scheduler,
        "batched": BatchedScheduler,
        "multiprocess": MultiprocessScheduler,
    }
    return classes[spec.scheduler](spec)


def _group_plans(
    plans: Sequence[Tuple[int, ClientTrainingPlan]], max_cohort: int
) -> List[List[Tuple[int, ClientTrainingPlan]]]:
    """Group (user, plan) pairs by batch signature, bounded by ``max_cohort``.

    Clients are independent, so grouping/chunking only changes how much
    work is stacked together — never any result.
    """
    buckets: Dict[tuple, List[Tuple[int, ClientTrainingPlan]]] = {}
    for user, plan in plans:
        buckets.setdefault(plan.signature, []).append((user, plan))
    groups: List[List[Tuple[int, ClientTrainingPlan]]] = []
    for members in buckets.values():
        for start in range(0, len(members), max_cohort):
            groups.append(members[start:start + max_cohort])
    return groups


def _payload_format(driver) -> str:
    """The parameter-exchange format a FedAvg driver is configured for."""
    return getattr(driver, "payload_format", "dense")


def _row_width(array: np.ndarray) -> int:
    """Values per axis-0 row (1 for vector parameters)."""
    return int(np.prod(array.shape[1:], dtype=np.int64)) if array.ndim > 1 else 1


def _zero_touched(global_state: Dict[str, np.ndarray]) -> Dict[str, Tuple[int, int]]:
    """Touched stats of a client that trained nothing (uploads nothing)."""
    return {name: (0, _row_width(value)) for name, value in global_state.items()}


def _client_sparse_payloads(
    named: Dict[str, object],
    global_state: Dict[str, np.ndarray],
    item_row_names: set,
    touched: np.ndarray,
) -> Dict[str, SparseDelta]:
    """Encode one client's public-parameter update as sparse payloads.

    Item-row tables are restricted to the client's plan-touched rows (a
    superset of the rows its gradients could have changed); every other
    public parameter ships as an all-rows dense block.
    """
    payloads: Dict[str, SparseDelta] = {}
    for name, base in global_state.items():
        data = named[name].data
        if name in item_row_names:
            payloads[name] = SparseDelta.between(data, base, rows=touched)
        else:
            payloads[name] = SparseDelta.dense_block(data - base)
    return payloads


def _touched_stats(payloads: Dict[str, SparseDelta]) -> Dict[str, Tuple[int, int]]:
    return {name: (p.num_rows, p.row_width) for name, p in payloads.items()}


def _accumulate_sparse(
    payloads: Dict[str, SparseDelta],
    delta_sum: Dict[str, np.ndarray],
    update_count: Dict[str, np.ndarray],
) -> None:
    """Fold one client's payloads into the round accumulators.

    Performs, at the touched rows, the same elementwise additions the dense
    path performs over the full table; the skipped rows would have added
    exactly ``+0.0``.
    """
    for name in delta_sum:
        payloads[name].add_into(delta_sum[name])
        payloads[name].count_into(update_count[name])


class Scheduler:
    """Serial reference scheduler: the original one-client-at-a-time loops."""

    name = "serial"

    def __init__(self, spec: Optional[EngineSpec] = None):
        self.spec = spec if spec is not None else EngineSpec()
        self._failed: List[int] = []
        self._touched: TouchedStats = {}

    def pop_failed(self) -> List[int]:
        """Drain the clients that failed permanently in the last phase.

        Only the multiprocess scheduler ever reports failures (a worker
        exception is caught, the client retried once on the driver, and
        unrecovered clients land here); the in-process schedulers let
        exceptions propagate, so this is always empty for them.  Drivers
        call this after each training phase and report the drained clients
        as dropped in the round metrics instead of crashing the run.
        """
        failed, self._failed = self._failed, []
        return failed

    def pop_touched(self) -> TouchedStats:
        """Drain the per-client touched-row statistics of the last phase.

        Populated only by the sparse payload path (one entry per completed
        client, mapping each public parameter to ``(num_rows, row_width)``
        of the payload actually shipped); the dense path leaves it empty
        and drivers fall back to full-table upload metering.  Like
        :meth:`pop_failed`, draining is the caller's acknowledgement.
        """
        touched, self._touched = self._touched, {}
        return touched

    def iter_shards(self, cohort: Sequence) -> Iterator[List]:
        """Yield ``cohort`` in contiguous shards of ``spec.shard_size``.

        ``shard_size=0`` yields the whole cohort as one shard.  Shards
        partition the cohort *in order*, so per-shard processing followed
        by in-order aggregation performs exactly the additions of the
        unsharded round — sharding is a memory bound, never a result
        change.
        """
        cohort = list(cohort)
        size = self.spec.shard_size
        if size <= 0 or len(cohort) <= size:
            yield cohort
            return
        for start in range(0, len(cohort), size):
            yield cohort[start:start + size]

    # ------------------------------------------------------------------
    # PTF-FedRec client phase
    # ------------------------------------------------------------------
    def train_ptf_clients(
        self,
        clients: Dict[int, "PTFClient"],
        selected: Sequence[int],
        round_index: int,
    ) -> Dict[int, float]:
        """Run local training for the cohort; returns per-client mean loss.

        May replace entries of ``clients`` with trained equivalents (the
        multiprocess scheduler round-trips client objects through workers).
        """
        return {user: clients[user].local_train(round_index) for user in selected}

    def build_ptf_uploads(
        self,
        clients: Dict[int, "PTFClient"],
        selected: Sequence[int],
        round_index: int,
    ) -> List["ClientUpload"]:
        """Construct the cohort's privacy-protected uploads, in cohort order."""
        return [clients[user].build_upload(round_index) for user in selected]

    def build_ptf_dispersals(
        self,
        server: "PTFServer",
        uploads: Sequence["ClientUpload"],
        round_index: int,
        item_mask: Optional[np.ndarray] = None,
    ) -> List["DispersedDataset"]:
        """Construct the server's dispersed datasets for every upload.

        ``item_mask`` restricts the dispersal candidate pool (streaming
        item arrivals); ``None`` leaves the full catalogue available.
        Dispersal construction reads only server state, so the protocol
        driver may call this shard by shard (:meth:`iter_shards`) and
        apply each shard before building the next — bounded memory,
        identical records.
        """
        return [
            server.build_dispersal(upload, round_index, item_mask=item_mask)
            for upload in uploads
        ]

    # ------------------------------------------------------------------
    # FedAvg-baseline client phase (FCF / FedMF / MetaMF)
    # ------------------------------------------------------------------
    def train_fedavg_clients(
        self,
        driver,
        selected: Sequence[int],
        round_index: int,
        global_state: Dict[str, np.ndarray],
    ) -> Tuple[Dict[int, float], Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Run the cohort's local updates against ``global_state``.

        Returns ``(losses, delta_sum, update_count)`` where the aggregation
        arrays accumulate per-client public-parameter deltas in cohort
        order, exactly as the pre-engine sequential loop did.  The serial
        path streams one client at a time, so its memory is already
        independent of cohort size; ``payload="sparse"`` additionally
        shrinks the per-client delta from ``O(table)`` to
        ``O(rows touched)`` and records touched stats for the ledger.
        """
        if _payload_format(driver) == "sparse":
            return self._train_fedavg_sparse(
                driver, selected, round_index, global_state
            )
        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}
        losses: Dict[int, float] = {}
        for user in selected:
            driver._load_public_state(global_state)
            losses[user] = driver._local_training(user, round_index)
            updated = driver._public_state()
            for name in delta_sum:
                delta = updated[name] - global_state[name]
                delta_sum[name] += delta
                update_count[name] += (delta != 0.0)
        return losses, delta_sum, update_count

    def _train_fedavg_sparse(self, driver, selected, round_index, global_state):
        """The serial sparse reference: rows-touched deltas, same bits."""
        from repro.federated.base import run_local_plan

        item_rows = set(driver._item_row_parameter_names())
        named = dict(driver.model.named_parameters())
        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}
        losses: Dict[int, float] = {}
        for user in selected:
            driver._load_public_state(global_state)
            plan = driver.local_training_plan(user, round_index)
            if plan is None:
                losses[user] = 0.0
                self._touched[user] = _zero_touched(global_state)
                continue
            losses[user] = run_local_plan(driver.model, driver.config, user, plan)
            payloads = _client_sparse_payloads(
                named, global_state, item_rows, plan.touched_items()
            )
            _accumulate_sparse(payloads, delta_sum, update_count)
            self._touched[user] = _touched_stats(payloads)
        return losses, delta_sum, update_count


class BatchedScheduler(Scheduler):
    """Vectorized scheduler: stacks cohorts into :class:`ClientBatch` runs."""

    name = "batched"

    # -- PTF ------------------------------------------------------------
    def train_ptf_clients(self, clients, selected, round_index):
        losses: Dict[int, float] = {}
        for shard in self.iter_shards(selected):
            pending: List[Tuple[int, ClientTrainingPlan]] = []
            for user in shard:
                plan = clients[user].training_plan(round_index)
                if plan is None:
                    losses[user] = 0.0
                else:
                    pending.append((user, plan))
            for group in _group_plans(pending, self.spec.max_cohort):
                members = [clients[user] for user, _ in group]
                batch = ClientBatch.for_ptf_clients(members, [plan for _, plan in group])
                if batch is None:
                    if self.spec.fallback == "error":
                        raise NotImplementedError(
                            f"no stacked implementation for "
                            f"{type(members[0].model).__name__} client models"
                        )
                    for user, _ in group:
                        losses[user] = clients[user].local_train(round_index)
                    continue
                group_losses = batch.run()
                batch.writeback()
                for (user, _), loss in zip(group, group_losses):
                    losses[user] = float(loss)
        return losses

    # -- FedAvg baselines ------------------------------------------------
    def train_fedavg_clients(self, driver, selected, round_index, global_state):
        model = driver.model
        public_names = driver._public_names
        private_rows = _private_row_entries(model, public_names, driver.dataset.num_users)
        if private_rows is None:
            # A private parameter we cannot row-slice: the serial reference
            # is the only faithful execution.
            return super().train_fedavg_clients(
                driver, selected, round_index, global_state
            )
        sparse = _payload_format(driver) == "sparse"
        item_rows = set(driver._item_row_parameter_names()) if sparse else set()

        # Honor the global_state argument (don't rely on driver.model already
        # carrying it): every client must start from these public values.
        from repro.federated.base import load_public_state

        load_public_state(model, public_names, global_state)
        named = dict(model.named_parameters())

        losses: Dict[int, float] = {}
        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}

        for shard in self.iter_shards(selected):
            pending: List[Tuple[int, ClientTrainingPlan]] = []
            for user in shard:
                plan = driver.local_training_plan(user, round_index)
                if plan is None:
                    losses[user] = 0.0
                    if sparse:
                        self._touched[user] = _zero_touched(global_state)
                else:
                    pending.append((user, plan))

            # Per-client payloads live only for the duration of the shard:
            # full-table dicts on the dense path, rows-touched SparseDeltas
            # on the sparse path — either way bounded by shard size.
            shard_deltas: Dict[int, dict] = {}
            for group in _group_plans(pending, self.spec.max_cohort):
                users = [user for user, _ in group]
                stacked = stack_models([model] * len(users), user_rows=users)
                if stacked is None:
                    if self.spec.fallback == "error":
                        raise NotImplementedError(
                            f"no stacked implementation for {type(model).__name__}"
                        )
                    return super().train_fedavg_clients(
                        driver, selected, round_index, global_state
                    )
                optimizer = StackedSGD(
                    stacked.parameters(), lr=driver.config.local_learning_rate
                )
                batch = ClientBatch(stacked, optimizer, [plan for _, plan in group])
                group_losses = batch.run()
                for c, (user, plan) in enumerate(group):
                    losses[user] = float(group_losses[c])
                    if sparse:
                        payloads: Dict[str, SparseDelta] = {}
                        touched = plan.touched_items()
                        for name, parameter, kind in stacked.entries:
                            values = (
                                parameter.data[c, 0] if kind == "bias"
                                else parameter.data[c]
                            )
                            if name not in public_names:
                                # Each client touches only its own user row,
                                # so writing the trained rows back into the
                                # shared model reproduces the serial
                                # sequential updates exactly (disjoint rows).
                                assert kind == "rows"
                                named[name].data[user] = values[0]
                                continue
                            if name in item_rows:
                                payloads[name] = SparseDelta.between(
                                    values, global_state[name], rows=touched
                                )
                            else:
                                payloads[name] = SparseDelta.dense_block(
                                    values - global_state[name]
                                )
                        shard_deltas[user] = payloads
                        self._touched[user] = _touched_stats(payloads)
                    else:
                        values = stacked.export_slice(c)
                        shard_deltas[user] = {
                            name: values[name] - global_state[name]
                            for name in public_names
                        }
                        for name, _, kind in stacked.entries:
                            if name in public_names:
                                continue
                            assert kind == "rows"
                            named[name].data[user] = values[name][0]
                for attr, embedding in stacked.embeddings.items():
                    table = getattr(model, attr)
                    name = f"{attr}.weight"
                    kind = next(k for n, _, k in stacked.entries if n == name)
                    if kind == "rows":
                        for c, user in enumerate(users):
                            table.update_counts[user] += embedding.count_increments[c, 0]
                    else:
                        table.update_counts += embedding.count_increments.sum(axis=0)
                model.train()

            # Aggregate the shard's public deltas in cohort order (float
            # addition is not associative; the serial loop's order is the
            # reference, and contiguous shards preserve it globally).
            for user in shard:
                user_deltas = shard_deltas.get(user)
                if user_deltas is None:
                    continue  # zero-interaction client: exact zero contribution
                if sparse:
                    _accumulate_sparse(user_deltas, delta_sum, update_count)
                else:
                    for name in delta_sum:
                        delta = user_deltas[name]
                        delta_sum[name] += delta
                        update_count[name] += (delta != 0.0)
        return losses, delta_sum, update_count


def _private_row_entries(model, public_names, num_users) -> Optional[List[str]]:
    """Names of private parameters, all of which must be user-row tables.

    Returns ``None`` when some private parameter is not indexed by user
    (first dimension != ``num_users``) — those couple clients sequentially
    through shared state and cannot be batched or parallelized faithfully.
    """
    names: List[str] = []
    for name, parameter in model.named_parameters():
        if name in public_names:
            continue
        if parameter.data.shape[0] != num_users:
            return None
        names.append(name)
    return names


# ----------------------------------------------------------------------
# Multiprocess execution
# ----------------------------------------------------------------------
def _ptf_worker(payload):
    clients, round_index = payload
    # Workers re-activate the clients' backend policy explicitly: a forked
    # pool would inherit the parent's context, but a spawn-based pool
    # starts from the default backend and would silently mix precisions.
    with use_backend(clients[0].spec.backend if clients else None):
        results = []
        for client in clients:
            # One client blowing up must not abort the whole chunk (and with
            # it the round): report the failure and let the parent retry the
            # client on the driver from its own, untouched copy.
            try:
                loss = client.local_train(round_index)
            except Exception:
                results.append((client.user_id, None, None))
                continue
            results.append((client.user_id, client, loss))
        return results


def _fedavg_worker(payload):
    (model, config, seed, public_names, private_names,
     users, positives, num_items, round_index) = payload
    from repro.federated.base import fedavg_local_training, load_public_state
    from repro.utils.rng import RngFactory

    rngs = RngFactory(seed)
    named = dict(model.named_parameters())
    # The shipped model carries the round's global public parameters (the
    # parent loads them before pickling), so reconstructing global_state
    # here avoids shipping the large public tables twice per worker.
    global_state = {name: named[name].data.copy() for name in public_names}
    initial_counts = {
        attr: table.update_counts.copy() for attr, table in _embedding_tables(model)
    }
    results = []
    with use_backend(getattr(config, "backend", None)):
        for user in users:
            load_public_state(model, public_names, global_state)
            # A mid-training failure leaves the chunk's shared update
            # counters partially incremented; snapshot and restore them so
            # the failed client contributes exactly nothing (its public
            # params are reloaded above and its private row is never
            # reported back).
            counts_before = {
                attr: table.update_counts.copy()
                for attr, table in _embedding_tables(model)
            }
            try:
                loss = fedavg_local_training(
                    model, rngs, config, user, positives[user], num_items, round_index
                )
            except Exception:
                for attr, table in _embedding_tables(model):
                    table.update_counts[...] = counts_before[attr]
                results.append((user, None, None, None))
                continue
            deltas = {
                name: named[name].data - global_state[name] for name in public_names
            }
            rows = {name: named[name].data[user].copy() for name in private_names}
            results.append((user, loss, deltas, rows))
    count_increments = {
        attr: table.update_counts - initial_counts[attr]
        for attr, table in _embedding_tables(model)
    }
    return results, count_increments


def _fedavg_worker_sparse(payload):
    (skeleton, handles, inline_state, config, seed, public_names,
     private_specs, item_row_names, private_rows, users, positives,
     num_items, round_index) = payload
    from repro.federated.base import build_local_plan, load_public_state, run_local_plan
    from repro.utils.rng import RngFactory

    model = pickle.loads(skeleton)
    named = dict(model.named_parameters())
    views = {name: handle.open() for name, handle in handles.items()}
    try:
        # The global public tables arrive once, via shared memory (or
        # inline when the platform has none); the skeleton shipped them as
        # empty placeholders and load_public_state below re-materializes
        # each client's working copy from the shared view.
        global_state = dict(inline_state)
        global_state.update(views)
        for name, (shape, dtype) in private_specs.items():
            # np.zeros is calloc-backed: pages for users outside this
            # chunk are never touched, so the full-shape private table
            # costs only the chunk's own rows in resident memory.
            table = np.zeros(shape, dtype=np.dtype(dtype))
            for user, row in private_rows[name].items():
                table[user] = row
            named[name].data = table
        rngs = RngFactory(seed)
        initial_counts = {
            attr: table.update_counts.copy() for attr, table in _embedding_tables(model)
        }
        results = []
        with use_backend(getattr(config, "backend", None)):
            for user in users:
                load_public_state(model, public_names, global_state)
                counts_before = {
                    attr: table.update_counts.copy()
                    for attr, table in _embedding_tables(model)
                }
                try:
                    plan = build_local_plan(
                        config, rngs, user, positives[user], num_items, round_index
                    )
                    loss = (
                        run_local_plan(model, config, user, plan)
                        if plan is not None else 0.0
                    )
                except Exception:
                    for attr, table in _embedding_tables(model):
                        table.update_counts[...] = counts_before[attr]
                    results.append((user, None, None, None, None))
                    continue
                if plan is None:
                    results.append((user, 0.0, None, None, None))
                    continue
                payloads = _client_sparse_payloads(
                    named, global_state, item_row_names, plan.touched_items()
                )
                rows = {name: named[name].data[user].copy() for name in private_specs}
                results.append((user, loss, payloads, rows, _touched_stats(payloads)))
        count_increments = {
            attr: table.update_counts - initial_counts[attr]
            for attr, table in _embedding_tables(model)
        }
        return results, count_increments
    finally:
        for handle in handles.values():
            handle.close()


def _embedding_tables(model):
    """Yield ``(attribute, Embedding)`` pairs of a model (duck-typed)."""
    for attr, module in model._modules.items():
        if hasattr(module, "update_counts"):
            yield attr, module


class MultiprocessScheduler(Scheduler):
    """Fans client work out to worker processes.

    Useful when per-client work is heavy enough to amortize shipping client
    state to workers and back; on small simulations the serial or batched
    schedulers are usually faster.  Bit-identical to serial: workers run
    the unmodified per-client code with the same derived RNG streams, and
    the parent aggregates results in cohort order.

    Note the pool lifetime: a fresh pool is created *per shard, per round*,
    because client objects mutate between rounds and must be re-shipped
    anyway — a persistent pool would save only process startup, which is
    small next to the state pickling this scheduler already pays.
    Parallelism across whole *experiments* is different: runs are
    independent and share nothing, so :class:`repro.sweep.SweepExecutor`
    keeps one warm, pre-imported worker pool alive for the entire sweep
    and ships only spec/dataset *recipes*.  Prefer sweep-level parallelism
    (many runs, one core each) over this scheduler (one run, many cores)
    when you control the workload shape — e.g. regenerating the paper's
    tables with ``benchmarks/paper_artifacts.py``.
    """

    name = "multiprocess"

    def _worker_count(self, num_tasks: int) -> int:
        configured = self.spec.workers or (os.cpu_count() or 1)
        return max(1, min(configured, num_tasks))

    def _pool(self, workers: int):
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return context.Pool(workers)

    def _shard_chunks(self, shard: Sequence[int], workers: int) -> List[List[int]]:
        return [
            [int(user) for user in chunk]
            for chunk in np.array_split(list(shard), min(workers, len(shard)))
            if len(chunk)
        ]

    def train_ptf_clients(self, clients, selected, round_index):
        workers = self._worker_count(len(selected))
        if workers <= 1:
            return super().train_ptf_clients(clients, selected, round_index)
        losses: Dict[int, float] = {}
        for shard in self.iter_shards(selected):
            chunks = self._shard_chunks(shard, workers)
            payloads = [
                ([clients[user] for user in chunk], round_index) for chunk in chunks
            ]
            with self._pool(len(payloads)) as pool:
                chunk_results = pool.map(_ptf_worker, payloads)
            for chunk_result in chunk_results:
                for user, trained_client, loss in chunk_result:
                    if trained_client is None:
                        # Worker failure: retry once on the driver from the
                        # parent's own (untrained) client copy; if the retry
                        # fails too, report the client as dropped rather than
                        # aborting the round.
                        try:
                            losses[user] = clients[user].local_train(round_index)
                        except Exception:
                            self._failed.append(int(user))
                        continue
                    clients[user] = trained_client
                    losses[user] = loss
        return losses

    def train_fedavg_clients(self, driver, selected, round_index, global_state):
        from repro.federated.base import load_public_state

        workers = self._worker_count(len(selected))
        private_names = _private_row_entries(
            driver.model, driver._public_names, driver.dataset.num_users
        )
        if workers <= 1 or private_names is None:
            return super().train_fedavg_clients(
                driver, selected, round_index, global_state
            )
        if _payload_format(driver) == "sparse":
            return self._train_fedavg_sparse_mp(
                driver, selected, round_index, global_state, private_names, workers
            )
        # Ship global_state inside the model itself (workers reconstruct it
        # from the public parameters) instead of pickling the tables twice.
        load_public_state(driver.model, driver._public_names, global_state)

        named = dict(driver.model.named_parameters())
        tables = dict(_embedding_tables(driver.model))
        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}
        losses: Dict[int, float] = {}
        retry: List[int] = []
        for shard in self.iter_shards(selected):
            payloads = []
            for users in self._shard_chunks(shard, workers):
                payloads.append((
                    driver.model,
                    driver.config,
                    driver._rngs.seed,
                    set(driver._public_names),
                    list(private_names),
                    users,
                    {user: driver.dataset.train_items(user) for user in users},
                    driver.dataset.num_items,
                    round_index,
                ))
            with self._pool(len(payloads)) as pool:
                chunk_results = pool.map(_fedavg_worker, payloads)
            for chunk_result, count_increments in chunk_results:
                for user, loss, deltas, rows in chunk_result:
                    if loss is None:
                        retry.append(int(user))
                        continue
                    losses[user] = loss
                    for name in delta_sum:
                        delta = deltas[name]
                        delta_sum[name] += delta
                        update_count[name] += (delta != 0.0)
                    for name, row in rows.items():
                        named[name].data[user] = row
                for attr, increments in count_increments.items():
                    tables[attr].update_counts += increments
        # Retry worker failures once on the driver (after the healthy
        # results, so their aggregation order is untouched); a client whose
        # retry also fails is reported as dropped via pop_failed, with its
        # private row and update counters restored to contribute nothing.
        for user in retry:
            rows_before = {name: named[name].data[user].copy() for name in private_names}
            counts_before = {attr: table.update_counts.copy() for attr, table in tables.items()}
            driver._load_public_state(global_state)
            try:
                losses[user] = driver._local_training(user, round_index)
            except Exception:
                for name, row in rows_before.items():
                    named[name].data[user] = row
                for attr, counts in counts_before.items():
                    tables[attr].update_counts[...] = counts
                self._failed.append(int(user))
                continue
            updated = driver._public_state()
            for name in delta_sum:
                delta = updated[name] - global_state[name]
                delta_sum[name] += delta
                update_count[name] += (delta != 0.0)
        driver.model.train()
        return losses, delta_sum, update_count

    def _train_fedavg_sparse_mp(
        self, driver, selected, round_index, global_state, private_names, workers
    ):
        """Sparse exchange over workers: shared tables, rows-touched returns.

        The global item tables are mapped into shared memory once (the
        :meth:`~repro.tensor.backend.Backend.create_shared_store` seam,
        with inline pickling as the fallback) and the model ships as a
        skeleton with the big tables stripped; each worker rebuilds only
        its own chunk's private rows.  Workers return
        :class:`~repro.tensor.sparse.SparseDelta` payloads, which the
        parent folds in per client, in cohort order — the same additions
        the dense parent performs, minus exact-zero rows.
        """
        from repro.federated.base import load_public_state, run_local_plan

        model = driver.model
        public_names = driver._public_names
        item_rows = set(driver._item_row_parameter_names())
        load_public_state(model, public_names, global_state)
        named = dict(model.named_parameters())
        tables = dict(_embedding_tables(model))

        backend = get_backend(getattr(driver.config, "backend", None))
        share = {name: global_state[name] for name in public_names if name in item_rows}
        store = backend.create_shared_store(share) if share else None
        handles = dict(store.handles) if store is not None else {}
        inline_state = {
            name: value for name, value in global_state.items() if name not in handles
        }
        private_specs = {
            name: (named[name].data.shape, named[name].data.dtype.str)
            for name in private_names
        }
        # Pickle the model once with the big tables stripped: workers
        # restore the public tables from the shared store and rebuild the
        # private tables from their own chunk's rows.
        strip = set(handles) | set(private_names)
        saved = {name: named[name].data for name in strip}
        for name in strip:
            named[name].data = np.empty((0,), dtype=saved[name].dtype)
        try:
            skeleton = pickle.dumps(model)
        finally:
            for name, data in saved.items():
                named[name].data = data

        delta_sum = {name: np.zeros_like(value) for name, value in global_state.items()}
        update_count = {name: np.zeros_like(value) for name, value in global_state.items()}
        losses: Dict[int, float] = {}
        retry: List[int] = []
        try:
            for shard in self.iter_shards(selected):
                payloads = []
                for users in self._shard_chunks(shard, workers):
                    payloads.append((
                        skeleton,
                        handles,
                        inline_state,
                        driver.config,
                        driver._rngs.seed,
                        set(public_names),
                        private_specs,
                        item_rows,
                        {
                            name: {user: named[name].data[user].copy() for user in users}
                            for name in private_names
                        },
                        users,
                        {user: driver.dataset.train_items(user) for user in users},
                        driver.dataset.num_items,
                        round_index,
                    ))
                with self._pool(len(payloads)) as pool:
                    chunk_results = pool.map(_fedavg_worker_sparse, payloads)
                for chunk_result, count_increments in chunk_results:
                    for user, loss, client_payloads, rows, stats in chunk_result:
                        if loss is None:
                            retry.append(int(user))
                            continue
                        losses[user] = loss
                        if client_payloads is None:
                            self._touched[user] = _zero_touched(global_state)
                            continue
                        _accumulate_sparse(client_payloads, delta_sum, update_count)
                        for name, row in rows.items():
                            named[name].data[user] = row
                        self._touched[user] = stats
                    for attr, increments in count_increments.items():
                        tables[attr].update_counts += increments
        finally:
            if store is not None:
                store.close()
        # Retries mirror the dense path: once on the driver, after the
        # healthy cohort, dropped via pop_failed if they fail again.
        for user in retry:
            rows_before = {name: named[name].data[user].copy() for name in private_names}
            counts_before = {attr: table.update_counts.copy() for attr, table in tables.items()}
            driver._load_public_state(global_state)
            try:
                plan = driver.local_training_plan(user, round_index)
                loss = (
                    run_local_plan(model, driver.config, user, plan)
                    if plan is not None else 0.0
                )
            except Exception:
                for name, row in rows_before.items():
                    named[name].data[user] = row
                for attr, counts in counts_before.items():
                    tables[attr].update_counts[...] = counts
                self._failed.append(int(user))
                continue
            losses[user] = loss
            if plan is None:
                self._touched[user] = _zero_touched(global_state)
                continue
            client_payloads = _client_sparse_payloads(
                named, global_state, item_rows, plan.touched_items()
            )
            _accumulate_sparse(client_payloads, delta_sum, update_count)
            self._touched[user] = _touched_stats(client_payloads)
        model.train()
        return losses, delta_sum, update_count

"""Stacked (vectorized) execution of a cohort of per-client models.

The serial reference path trains every selected client with its own Python
fit loop: tiny autograd graphs over ``(batch,)``-shaped arrays, one client
at a time.  This module stacks a whole cohort into ``(clients, ...)``
arrays so one round of local training runs as a handful of batched tensor
operations.

Bit-identical by construction
-----------------------------
The stacked path reproduces the serial path *exactly* (same bits, not just
close values) because every per-client computation is independent and the
stacked operations apply the identical elementwise/per-slice arithmetic:

* elementwise ops, ``clip``/``log``/``sigmoid``/``relu`` act per element;
* stacked ``matmul`` over ``(C, m, n) @ (C, n, k)`` computes each slice
  with the same GEMM as the 2-D serial call;
* reductions run along each client's own axis, preserving NumPy's
  pairwise-summation order within the slice;
* gradient scatter (``np.add.at``) iterates row-major, so each client's
  duplicate indices accumulate in the serial order;
* :class:`StackedAdam` keeps a *per-client* step counter and computes the
  bias corrections with the same Python-float ``beta ** step`` the serial
  :class:`repro.optim.Adam` uses.

Sampling (negative draws, shuffles) stays per-client and consumes each
client's dedicated RNG stream in the serial call order — that is what a
:class:`ClientTrainingPlan` materializes — so randomness never depends on
execution strategy.

The stacked machinery is backend-agnostic by construction: stacked
parameters, optimizer moments and scratch buffers inherit their dtype
from the client models (``np.stack`` / ``zeros_like`` / ``empty_like``),
so a cohort of float32 clients trains as one float32 cohort and the
serial-vs-stacked bit-identity holds under the ``numpy32`` backend too
(asserted in ``tests/test_tensor_backend.py``).

Architectures without a stacked implementation fall back to the serial
path (see :class:`repro.engine.spec.EngineSpec`); :func:`stack_models`
currently covers NeuMF, matrix factorization and MetaMF — every client
model the paper's protocols train.

Plans stack only when their batch shapes line up, which
:attr:`ClientTrainingPlan.signature` fingerprints:

>>> import numpy as np
>>> batch = (np.array([3, 1, 4]), np.array([1.0, 0.0, 0.0]))
>>> plan = ClientTrainingPlan(user_id=0, epochs=[[batch, batch]])
>>> plan.signature
((3, 3),)
>>> plan.num_batches
2
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

# repro: disable=backend-purity -- cohort stacking/index plumbing; stacked math runs on Tensor/Backend
import numpy as np

from repro.nn.module import Parameter
from repro.optim import Adam
from repro.tensor import Tensor
from repro.tensor.functional import binary_cross_entropy_per_row


@dataclass
class ClientTrainingPlan:
    """One client's local-training work for a round, fully materialized.

    ``epochs`` holds, per local epoch, the ``(items, labels)`` batches the
    client's sampler produced — drawn from the client's own RNG in the
    exact order the serial fit loop would have drawn them.  Materializing
    the plan up front is what lets the engine regroup work across clients
    without perturbing any random stream (model training itself consumes
    no randomness).
    """

    user_id: int
    epochs: List[List[Tuple[np.ndarray, np.ndarray]]]

    @property
    def signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Batch-shape fingerprint; plans stack only with equal signatures."""
        return tuple(
            tuple(len(items) for items, _ in epoch) for epoch in self.epochs
        )

    @property
    def num_batches(self) -> int:
        return sum(len(epoch) for epoch in self.epochs)

    def touched_items(self) -> np.ndarray:
        """Sorted unique item ids across every batch of the plan.

        The sparse payload path uses this as the rows-touched set of the
        client's item-table delta: rows outside it receive exactly zero
        gradient during local training, so their delta is bitwise ``+0.0``
        and may be skipped without changing any aggregate.
        """
        arrays = [items for epoch in self.epochs for items, _ in epoch]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(arrays)).astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# Stacked building blocks
# ----------------------------------------------------------------------
class StackedEmbedding:
    """``C`` independent embedding tables as one ``(C, rows, dim)`` parameter.

    Tracks per-slice update-count *increments* (not absolute counts) so the
    caller can either write them back per client (PTF clients own their
    models) or sum them into a shared model (the FedAvg baselines train one
    global model).
    """

    def __init__(self, weight: Parameter):
        self.weight = weight
        self.count_increments = np.zeros(weight.shape[:2], dtype=np.int64)

    def gather(self, indices: np.ndarray, cohort_index: np.ndarray,
               training: bool) -> Tensor:
        if training:
            np.add.at(self.count_increments, (cohort_index, indices), 1)
        return self.weight[(cohort_index, indices)]


class StackedLinear:
    """``C`` independent linear layers as one batched matmul.

    ``weight`` is ``(C, out, in)`` — each slice multiplied exactly like the
    serial ``x @ W.T`` — and ``bias`` is ``(C, 1, out)`` so broadcasting
    (and its gradient reduction) matches the serial ``(out,)`` bias.
    """

    def __init__(self, weight: Parameter, bias: Optional[Parameter]):
        self.weight = weight
        self.bias = bias

    def __call__(self, inputs: Tensor) -> Tensor:
        output = inputs.matmul(self.weight.swapaxes(-1, -2))
        if self.bias is not None:
            output = output + self.bias
        return output


class StackedAdam:
    """Adam over stacked parameters with per-client step counters.

    Clients may join a cohort with different optimizer histories (partial
    participation), so the bias corrections ``1 - beta ** step`` are
    evaluated per client — with Python-float ``**`` to stay bitwise equal
    to :class:`repro.optim.Adam`.
    """

    def __init__(self, parameters: List[Parameter], cohort: int,
                 lr: float = 0.001, betas: Tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._steps = [np.zeros(cohort, dtype=np.int64) for _ in parameters]
        self._first = [np.zeros_like(p.data) for p in parameters]
        self._second = [np.zeros_like(p.data) for p in parameters]
        # Reused scratch buffers: the update runs in place over stacked
        # arrays the engine owns, so no step allocates cohort-sized
        # temporaries (large fresh allocations dominated the profile).
        self._scratch = [
            (np.empty_like(p.data), np.empty_like(p.data)) for p in parameters
        ]

    @classmethod
    def from_client_optimizers(cls, parameters: List[Parameter],
                               optimizers: Sequence[Adam]) -> "StackedAdam":
        """Stack the per-client Adam states slot by slot."""
        reference = optimizers[0]
        stacked = cls(
            parameters,
            cohort=len(optimizers),
            lr=reference.lr,
            betas=(reference.beta1, reference.beta2),
            eps=reference.eps,
        )
        if not any(optimizer.has_state() for optimizer in optimizers):
            return stacked  # every client is fresh: the zero init is exact
        for j, parameter in enumerate(parameters):
            slots = [optimizer.slot_state(j) for optimizer in optimizers]
            stacked._steps[j] = np.array([s for s, _, _ in slots], dtype=np.int64)
            stacked._first[j] = np.stack([f for _, f, _ in slots]).reshape(parameter.shape)
            stacked._second[j] = np.stack([s for _, _, s in slots]).reshape(parameter.shape)
        return stacked

    def export_slot(self, j: int, c: int, shape: Tuple[int, ...]):
        """Return client ``c``'s ``(step, first, second)`` for slot ``j``."""
        return (
            int(self._steps[j][c]),
            self._first[j][c].reshape(shape).copy(),
            self._second[j][c].reshape(shape).copy(),
        )

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        # Every operation below reproduces the serial Adam update term by
        # term (products and sums in the same order), only routed through
        # preallocated scratch so no cohort-sized temporary is allocated.
        for j, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is None:
                continue
            steps = self._steps[j]
            steps += 1
            first, second = self._first[j], self._second[j]
            scratch_a, scratch_b = self._scratch[j]

            np.multiply(first, self.beta1, out=first)
            np.multiply(grad, 1.0 - self.beta1, out=scratch_a)
            first += scratch_a

            np.multiply(second, self.beta2, out=second)
            np.multiply(grad, grad, out=scratch_a)
            scratch_a *= 1.0 - self.beta2
            second += scratch_a

            low, high = int(steps.min()), int(steps.max())
            if low == high:
                correction1 = 1.0 - self.beta1 ** low
                correction2 = 1.0 - self.beta2 ** low
            else:
                # Per-client corrections carry the parameter dtype: a
                # float64 array here would make the divide below compute in
                # float64 and round twice under a float32 backend, breaking
                # bitwise equality with the serial optimizer (whose Python-
                # float scalar is weak-cast to the array dtype first).
                shape = (len(steps),) + (1,) * (parameter.ndim - 1)
                correction1 = np.array(
                    [1.0 - self.beta1 ** int(s) for s in steps],
                    dtype=parameter.data.dtype).reshape(shape)
                correction2 = np.array(
                    [1.0 - self.beta2 ** int(s) for s in steps],
                    dtype=parameter.data.dtype).reshape(shape)

            np.divide(first, correction1, out=scratch_a)   # first_hat
            scratch_a *= self.lr
            np.divide(second, correction2, out=scratch_b)  # second_hat
            np.sqrt(scratch_b, out=scratch_b)
            scratch_b += self.eps
            scratch_a /= scratch_b
            parameter.data -= scratch_a


class StackedSGD:
    """Plain SGD over stacked parameters (the FedAvg baselines' local step)."""

    def __init__(self, parameters: List[Parameter], lr: float):
        self.parameters = parameters
        self.lr = lr
        self._scratch = [np.empty_like(p.data) for p in parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        for parameter, scratch in zip(self.parameters, self._scratch):
            if parameter.grad is None:
                continue
            # In-place form of ``data - lr * grad`` (identical arithmetic).
            np.multiply(parameter.grad, self.lr, out=scratch)
            parameter.data -= scratch


# ----------------------------------------------------------------------
# Stacked model architectures
# ----------------------------------------------------------------------
class _StackedModelBase:
    """Shared stacking machinery: parameter registry and write-back slicing.

    ``entries`` lists ``(qualified_name, stacked_parameter, kind)`` in the
    *same order* as ``model.named_parameters()``, which is also the slot
    order of the per-client optimizers.  Kinds:

    ``"full"``
        stacked shape ``(C, *param.shape)`` — one full copy per client;
    ``"rows"``
        a user-indexed table sliced to each client's own row, stacked as
        ``(C, 1, dim)`` (or ``(C, 1)`` for bias vectors) — clients only ever
        touch their own user row, so slicing is exact;
    ``"bias"``
        a ``(dim,)`` vector stored as ``(C, 1, dim)`` for broadcasting.
    """

    def __init__(self, models: Sequence, user_rows: Sequence[int]):
        self.cohort = len(models)
        self.user_rows = list(user_rows)
        self.entries: List[Tuple[str, Parameter, str]] = []
        self.embeddings: Dict[str, StackedEmbedding] = {}

    # -- construction helpers -------------------------------------------
    def _add_embedding(self, attr: str, models: Sequence,
                       user_rows: Optional[Sequence[int]]) -> StackedEmbedding:
        tables = [getattr(model, attr) for model in models]
        if user_rows is None:
            data = np.stack([table.weight.data for table in tables])
            kind = "full"
        else:
            data = np.stack([
                table.weight.data[[row]] for table, row in zip(tables, user_rows)
            ])
            kind = "rows"
        parameter = Parameter(data, name=f"{attr}.weight")
        embedding = StackedEmbedding(parameter)
        self.entries.append((f"{attr}.weight", parameter, kind))
        self.embeddings[attr] = embedding
        return embedding

    def _add_linear(self, attr: str, models: Sequence) -> StackedLinear:
        layers = [getattr(model, attr) for model in models]
        weight = Parameter(np.stack([layer.weight.data for layer in layers]),
                           name=f"{attr}.weight")
        self.entries.append((f"{attr}.weight", weight, "full"))
        bias = None
        if layers[0].bias is not None:
            bias = Parameter(
                np.stack([layer.bias.data for layer in layers])[:, None, :],
                name=f"{attr}.bias",
            )
            self.entries.append((f"{attr}.bias", bias, "bias"))
        return StackedLinear(weight, bias)

    def _add_vector(self, attr: str, models: Sequence,
                    user_rows: Optional[Sequence[int]]) -> Parameter:
        vectors = [getattr(model, attr) for model in models]
        if user_rows is None:
            data = np.stack([vector.data for vector in vectors])
            kind = "full"
        else:
            data = np.stack([
                vector.data[[row]] for vector, row in zip(vectors, user_rows)
            ])
            kind = "rows"
        parameter = Parameter(data, name=attr)
        self.entries.append((attr, parameter, kind))
        return parameter

    # -- shared runtime helpers -----------------------------------------
    def _cohort_index(self, shape: Tuple[int, ...]) -> np.ndarray:
        return np.broadcast_to(np.arange(self.cohort)[:, None], shape)

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter, _ in self.entries]

    def export_slice(self, c: int) -> Dict[str, np.ndarray]:
        """Client ``c``'s parameter values, shaped like a single-user model."""
        values: Dict[str, np.ndarray] = {}
        for name, parameter, kind in self.entries:
            if kind == "bias":
                values[name] = parameter.data[c, 0].copy()
            else:
                values[name] = parameter.data[c].copy()
        return values

    def forward(self, items: np.ndarray, training: bool = True) -> Tensor:
        raise NotImplementedError


class StackedNeuMF(_StackedModelBase):
    """A cohort of NeuMF client models as one stacked model (Eq. 1)."""

    @staticmethod
    def supports(model) -> bool:
        return hasattr(model, "user_embedding_gmf") and hasattr(model, "prediction")

    def __init__(self, models: Sequence, user_rows: Sequence[int]):
        super().__init__(models, user_rows)
        first = models[0]
        self.user_gmf = self._add_embedding("user_embedding_gmf", models, user_rows)
        self.item_gmf = self._add_embedding("item_embedding_gmf", models, None)
        self.user_mlp = self._add_embedding("user_embedding_mlp", models, user_rows)
        self.item_mlp = self._add_embedding("item_embedding_mlp", models, None)
        self.mlp_layers = [
            self._add_linear(f"mlp_{index}", models)
            for index in range(len(first._mlp_layers))
        ]
        self.prediction = self._add_linear("prediction", models)

    def forward(self, items: np.ndarray, training: bool = True) -> Tensor:
        cohort_index = self._cohort_index(items.shape)
        zeros = np.zeros_like(items)

        gmf_user = self.user_gmf.gather(zeros, cohort_index, training)
        gmf_item = self.item_gmf.gather(items, cohort_index, training)
        gmf_vector = gmf_user * gmf_item

        mlp_user = self.user_mlp.gather(zeros, cohort_index, training)
        mlp_item = self.item_mlp.gather(items, cohort_index, training)
        hidden = Tensor.concat([mlp_user, mlp_item], axis=2)
        for layer in self.mlp_layers:
            hidden = layer(hidden).relu()

        fused = Tensor.concat([gmf_vector, hidden], axis=2)
        logits = self.prediction(fused).reshape(self.cohort, items.shape[1])
        return logits.sigmoid()


class StackedMF(_StackedModelBase):
    """A cohort of matrix-factorization models (FCF / FedMF local training)."""

    @staticmethod
    def supports(model) -> bool:
        return (
            hasattr(model, "user_embedding")
            and hasattr(model, "item_embedding")
            and hasattr(model, "use_bias")
        )

    def __init__(self, models: Sequence, user_rows: Sequence[int]):
        super().__init__(models, user_rows)
        self.use_bias = models[0].use_bias
        if self.use_bias:
            self.user_bias = self._add_vector("user_bias", models, user_rows)
            self.item_bias = self._add_vector("item_bias", models, None)
        self.user_emb = self._add_embedding("user_embedding", models, user_rows)
        self.item_emb = self._add_embedding("item_embedding", models, None)

    def forward(self, items: np.ndarray, training: bool = True) -> Tensor:
        cohort_index = self._cohort_index(items.shape)
        zeros = np.zeros_like(items)
        user_vectors = self.user_emb.gather(zeros, cohort_index, training)
        item_vectors = self.item_emb.gather(items, cohort_index, training)
        logits = (user_vectors * item_vectors).sum(axis=2)
        if self.use_bias:
            logits = logits + self.user_bias[(cohort_index, zeros)]
            logits = logits + self.item_bias[(cohort_index, items)]
        return logits.sigmoid()


class StackedMetaMF(_StackedModelBase):
    """A cohort of MetaMF models: meta network over a public base table."""

    @staticmethod
    def supports(model) -> bool:
        return hasattr(model, "item_base_embedding") and hasattr(model, "meta_hidden")

    def __init__(self, models: Sequence, user_rows: Sequence[int]):
        super().__init__(models, user_rows)
        self.user_emb = self._add_embedding("user_embedding", models, user_rows)
        self.item_base = self._add_embedding("item_base_embedding", models, None)
        self.meta_hidden = self._add_linear("meta_hidden", models)
        self.meta_output = self._add_linear("meta_output", models)

    def forward(self, items: np.ndarray, training: bool = True) -> Tensor:
        cohort_index = self._cohort_index(items.shape)
        zeros = np.zeros_like(items)
        user_vectors = self.user_emb.gather(zeros, cohort_index, training)
        base = self.item_base.gather(items, cohort_index, training)
        hidden = self.meta_hidden(base).relu()
        item_vectors = self.meta_output(hidden) + base
        logits = (user_vectors * item_vectors).sum(axis=2)
        return logits.sigmoid()


_STACKED_ARCHITECTURES = (StackedNeuMF, StackedMF, StackedMetaMF)


def stack_models(models: Sequence, user_rows: Sequence[int]):
    """Stack a homogeneous cohort of models, or ``None`` if unsupported.

    ``user_rows[c]`` names the single user-table row client ``c`` trains;
    PTF client models hold exactly one user row, so callers pass zeros, and
    the FedAvg baselines pass each client's user id into the shared tables.
    Dispatch is duck-typed so this module never has to import the model
    classes (which would close an import cycle through the protocol code).
    The shared cohort scorer reuses the same ``supports`` predicates to
    pick its closed forms (:mod:`repro.eval.scoring`), so training-time
    batching, batched evaluation and query-time serving recognize
    architectures consistently.
    """
    if not models:
        return None
    first = models[0]
    for architecture in _STACKED_ARCHITECTURES:
        if architecture.supports(first):
            return architecture(models, user_rows)
    return None


# ----------------------------------------------------------------------
# Cohort execution
# ----------------------------------------------------------------------
class ClientBatch:
    """One stacked cohort of equally shaped client training plans.

    Executes every ``(epoch, batch)`` step of the plans as a single
    stacked forward/backward/update over all clients at once, accumulating
    each client's loss trajectory exactly as its serial fit loop would.
    """

    def __init__(self, model: _StackedModelBase, optimizer, plans: Sequence[ClientTrainingPlan],
                 clients: Optional[Sequence] = None):
        if not plans:
            raise ValueError("ClientBatch requires at least one plan")
        signature = plans[0].signature
        for plan in plans[1:]:
            if plan.signature != signature:
                raise ValueError(
                    "all plans in a ClientBatch must share one batch signature"
                )
        self.model = model
        self.optimizer = optimizer
        self.plans = list(plans)
        self.clients = list(clients) if clients is not None else None

    @classmethod
    def for_ptf_clients(cls, clients: Sequence, plans: Sequence[ClientTrainingPlan]):
        """Stack PTF clients (their models *and* Adam states), or ``None``."""
        stacked = stack_models([client.model for client in clients],
                               user_rows=[0] * len(clients))
        if stacked is None:
            return None
        optimizer = StackedAdam.from_client_optimizers(
            stacked.parameters(), [client.optimizer for client in clients]
        )
        return cls(stacked, optimizer, plans, clients=clients)

    @property
    def cohort(self) -> int:
        return len(self.plans)

    def run(self) -> np.ndarray:
        """Train the cohort; returns each client's mean batch loss."""
        totals = np.zeros(self.cohort)
        batches = 0
        for epoch_index in range(len(self.plans[0].epochs)):
            for batch_index in range(len(self.plans[0].epochs[epoch_index])):
                items = np.stack([
                    plan.epochs[epoch_index][batch_index][0] for plan in self.plans
                ])
                labels = np.stack([
                    plan.epochs[epoch_index][batch_index][1] for plan in self.plans
                ])
                probabilities = self.model.forward(items, training=True)
                per_client = binary_cross_entropy_per_row(probabilities, labels)
                total = per_client.sum()
                self.optimizer.zero_grad()
                total.backward()
                self.optimizer.step()
                totals += per_client.data
                batches += 1
        return totals / max(batches, 1)

    def writeback(self) -> None:
        """Write stacked parameters, Adam state and counts back to the clients."""
        if self.clients is None:
            raise ValueError("this ClientBatch was not built from PTF clients")
        for c, client in enumerate(self.clients):
            named = dict(client.model.named_parameters())
            for j, (name, parameter, kind) in enumerate(self.model.entries):
                target = named[name]
                if kind == "bias":
                    target.data = parameter.data[c, 0].copy()
                else:
                    target.data = parameter.data[c].copy()
                if parameter.grad is not None:
                    grad = parameter.grad[c, 0] if kind == "bias" else parameter.grad[c]
                    target.grad = grad.reshape(target.data.shape).copy()
                if isinstance(self.optimizer, StackedAdam):
                    step, first, second = self.optimizer.export_slot(
                        j, c, target.data.shape
                    )
                    client.optimizer.load_slot_state(j, step, first, second)
            for attr, embedding in self.model.embeddings.items():
                getattr(client.model, attr).update_counts += embedding.count_increments[c]
            # Serial local_train leaves the model in training mode.
            client.model.train()

"""Client-simulation execution engine: schedulers for per-round client work.

PTF-FedRec rounds are embarrassingly parallel on the client side — every
selected client trains against its own data with its own derived RNG
stream — yet the reference implementation pays a full Python fit loop per
client.  This package separates *what* a round computes from *how* it is
executed:

* :class:`EngineSpec` — the ``engine={...}`` section of an
  :class:`~repro.experiments.spec.ExperimentSpec`;
* :class:`Scheduler` — the serial reference executor (and base class);
* :class:`BatchedScheduler` — stacks the cohort into ``(clients, ...)``
  arrays so local training runs as vectorized tensor ops
  (:class:`ClientBatch`);
* :class:`MultiprocessScheduler` — fans clients out to worker processes;
* :func:`create_scheduler` — builds the scheduler a spec names.

All schedulers are **bit-identical** on a fixed seed: randomness is keyed
by ``(seed, component, client, round)``, and the batched path replays the
serial arithmetic exactly (see :mod:`repro.engine.batch`).  Selecting an
execution strategy is therefore a pure performance choice.  Two further
spec knobs bound a round's memory without changing results:
``shard_size`` streams the cohort through contiguous shards, and
``payload="sparse"`` exchanges rows-touched
:class:`~repro.tensor.sparse.SparseDelta` payloads for the FedAvg-style
baselines (see ``docs/scaling.md``).  For example:

>>> from repro.engine import EngineSpec, create_scheduler
>>> create_scheduler(EngineSpec(scheduler="batched")).name
'batched'
>>> create_scheduler().name          # default: the serial reference
'serial'

or, through the experiment API:

>>> import repro
>>> spec = repro.ExperimentSpec(trainer="ptf", engine={"scheduler": "batched"})
>>> spec.engine.max_cohort
128
"""

from repro.engine.batch import (
    ClientBatch,
    ClientTrainingPlan,
    StackedAdam,
    StackedSGD,
    stack_models,
)
from repro.engine.schedulers import (
    BatchedScheduler,
    MultiprocessScheduler,
    Scheduler,
    create_scheduler,
)
from repro.engine.spec import PAYLOAD_FORMATS, SCHEDULER_MODES, EngineSpec

__all__ = [
    "BatchedScheduler",
    "ClientBatch",
    "ClientTrainingPlan",
    "EngineSpec",
    "MultiprocessScheduler",
    "PAYLOAD_FORMATS",
    "SCHEDULER_MODES",
    "Scheduler",
    "StackedAdam",
    "StackedSGD",
    "create_scheduler",
    "stack_models",
]

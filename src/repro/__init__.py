"""PTF-FedRec: parameter transmission-free federated recommendation.

Reproduction of "Hide Your Model: A Parameter Transmission-free Federated
Recommender System" (ICDE 2024).  The package is organised bottom-up:

* :mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.optim` — a NumPy
  autograd / neural-network substrate (stand-in for PyTorch),
* :mod:`repro.data` — interaction datasets and synthetic workload
  generators matched to the paper's dataset statistics,
* :mod:`repro.models` — NeuMF, NGCF, LightGCN and matrix factorization,
* :mod:`repro.eval` — Recall@K / NDCG@K ranking evaluation,
* :mod:`repro.centralized` — centralized training baselines,
* :mod:`repro.federated` — parameter transmission-based FedRec baselines
  (FCF, FedMF, MetaMF) with byte-level communication accounting,
* :mod:`repro.core` — PTF-FedRec itself: clients, server, the
  prediction-exchange protocol, privacy defenses and the Top Guess Attack.

Quickstart::

    from repro.core import PTFFedRec, PTFConfig
    from repro.data import movielens_100k
    from repro.utils import RngFactory

    dataset = movielens_100k(RngFactory(0).spawn("data"), scale=0.2)
    system = PTFFedRec(dataset, PTFConfig(rounds=10, server_model="ngcf"))
    system.fit()
    print(system.evaluate(k=20).as_dict())
"""

from repro import core, data, eval, federated, models, nn, optim, tensor, utils
from repro.core import PTFConfig, PTFFedRec

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "eval",
    "federated",
    "models",
    "nn",
    "optim",
    "tensor",
    "utils",
    "PTFConfig",
    "PTFFedRec",
    "__version__",
]

"""PTF-FedRec: parameter transmission-free federated recommendation.

Reproduction of "Hide Your Model: A Parameter Transmission-free Federated
Recommender System" (ICDE 2024).  The package is organised bottom-up:

* :mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.optim` — a NumPy
  autograd / neural-network substrate (stand-in for PyTorch),
* :mod:`repro.data` — interaction datasets and synthetic workload
  generators matched to the paper's dataset statistics,
* :mod:`repro.models` — NeuMF, NGCF, LightGCN and matrix factorization,
* :mod:`repro.eval` — Recall@K / NDCG@K ranking evaluation,
* :mod:`repro.centralized` — centralized training baselines,
* :mod:`repro.federated` — parameter transmission-based FedRec baselines
  (FCF, FedMF, MetaMF) with byte-level communication accounting,
* :mod:`repro.core` — PTF-FedRec itself: clients, server, the
  prediction-exchange protocol, privacy defenses and the Top Guess Attack,
* :mod:`repro.engine` — the client-simulation execution engine: serial,
  batched (vectorized) and multiprocess schedulers for the per-round
  client work, all bit-identical on a fixed seed,
* :mod:`repro.experiments` — the unified experiment API: a sectioned
  :class:`ExperimentSpec`, a trainer registry covering every paradigm
  (``"ptf"``, ``"fcf"``, ``"fedmf"``, ``"metamf"``, ``"centralized"``),
  training callbacks, and :func:`run`, which returns a uniform
  :class:`~repro.experiments.RunResult` for any of them,
* :mod:`repro.artifacts` — durable, schema-versioned checkpoints (JSON
  manifest + npz payload) for every trainer; ``run(spec,
  resume_from=path)`` continues a checkpointed run bit-identically,
* :mod:`repro.serve` — the query-time :class:`~repro.serve.Recommender`
  service: batched top-k recommendations from a saved artifact, with an
  LRU score cache and a popularity cold-start fallback,
* :mod:`repro.sweep` — declarative, parallel, fingerprint-cached sweeps:
  a :class:`~repro.sweep.SweepSpec` of experiment grids plus derived
  aggregation stages, executed by :class:`~repro.sweep.Sweep` with
  crash-resume for free (``python -m repro.sweep sweep.json``).

Quickstart::

    import repro
    from repro.data import movielens_100k
    from repro.utils import RngFactory

    dataset = movielens_100k(RngFactory(0).spawn("data"), scale=0.2)
    spec = repro.ExperimentSpec(
        trainer="ptf",
        model={"server_model": "ngcf", "embedding_dim": 16},
        protocol={"rounds": 10},
    )
    result = repro.run(spec, dataset)
    print(result.final.as_dict())
    print(result.communication.average_client_round_kilobytes, "KB/client/round")

The pre-spec entry point ``PTFFedRec(dataset, PTFConfig(...))`` still
works; ``PTFConfig`` is deprecated and converts to an ``ExperimentSpec``.
"""

from repro import (
    artifacts,
    core,
    data,
    engine,
    eval,
    experiments,
    federated,
    models,
    nn,
    optim,
    serve,
    sweep,
    tensor,
    utils,
)
from repro.artifacts import load_checkpoint, save_checkpoint
from repro.core import PTFConfig, PTFFedRec
from repro.engine import EngineSpec
from repro.experiments import ExperimentSpec, RunResult, register_trainer, run

__version__ = "1.2.0"

__all__ = [
    "artifacts",
    "core",
    "data",
    "engine",
    "eval",
    "experiments",
    "federated",
    "models",
    "nn",
    "optim",
    "serve",
    "sweep",
    "tensor",
    "utils",
    "PTFConfig",
    "PTFFedRec",
    "EngineSpec",
    "ExperimentSpec",
    "RunResult",
    "load_checkpoint",
    "save_checkpoint",
    "register_trainer",
    "run",
    "__version__",
]

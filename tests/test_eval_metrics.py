"""Tests for ranking metrics and the full-ranking evaluator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import InteractionDataset
from repro.eval import (
    RankingEvaluator,
    f1_score,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.models import PopularityRecommender


class TestMetricValues:
    def test_recall_perfect(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_recall_partial(self):
        assert recall_at_k([1, 9, 8], [1, 2], 3) == pytest.approx(0.5)

    def test_recall_empty_relevant(self):
        assert recall_at_k([1, 2], [], 2) == 0.0

    def test_precision(self):
        assert precision_at_k([1, 2, 3, 4], [1, 3], 4) == pytest.approx(0.5)

    def test_precision_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)

    def test_hit_rate(self):
        assert hit_rate_at_k([5, 6], [6], 2) == 1.0
        assert hit_rate_at_k([5, 6], [7], 2) == 0.0

    def test_ndcg_perfect_is_one(self):
        assert ndcg_at_k([4, 5, 6], [4, 5, 6], 3) == pytest.approx(1.0)

    def test_ndcg_rank_sensitivity(self):
        early = ndcg_at_k([1, 9, 8], [1], 3)
        late = ndcg_at_k([9, 8, 1], [1], 3)
        assert early > late > 0.0

    def test_ndcg_no_relevant(self):
        assert ndcg_at_k([1, 2], [], 5) == 0.0

    def test_f1_symmetric_perfect(self):
        assert f1_score([1, 2, 3], [3, 2, 1]) == pytest.approx(1.0)

    def test_f1_disjoint(self):
        assert f1_score([1, 2], [3, 4]) == 0.0

    def test_f1_partial(self):
        # predicted {1,2}, actual {2,3}: precision 0.5, recall 0.5.
        assert f1_score([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_f1_empty_sets(self):
        assert f1_score([], [1]) == 0.0
        assert f1_score([1], []) == 0.0


class TestMetricProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=15, unique=True),
        st.lists(st.integers(0, 30), min_size=1, max_size=15, unique=True),
        st.integers(min_value=1, max_value=15),
    )
    def test_metrics_bounded_in_unit_interval(self, recommended, relevant, k):
        for metric in (recall_at_k, precision_at_k, hit_rate_at_k, ndcg_at_k):
            value = metric(recommended, relevant, k)
            assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=2, max_size=15, unique=True),
        st.lists(st.integers(0, 30), min_size=1, max_size=15, unique=True),
    )
    def test_recall_monotone_in_k(self, recommended, relevant):
        shallow = recall_at_k(recommended, relevant, 1)
        deep = recall_at_k(recommended, relevant, len(recommended))
        assert deep >= shallow

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=10, unique=True))
    def test_f1_is_one_only_for_identical_sets(self, items):
        assert f1_score(items, items) == pytest.approx(1.0)


class TestRankingEvaluator:
    def _dataset(self):
        train = [(0, 0), (0, 1), (1, 2), (1, 3), (2, 4)]
        test = [(0, 5), (1, 6), (2, 7)]
        return InteractionDataset(3, 8, train, test, name="eval")

    def test_popularity_oracle_gets_perfect_recall(self):
        dataset = self._dataset()
        model = PopularityRecommender(3, 8)
        # Give the test items the highest popularity so the non-personalized
        # ranker must place them on top once train items are excluded.
        counts = np.array([1, 1, 1, 1, 1, 10, 10, 10])
        model.fit(counts)
        result = RankingEvaluator(dataset, k=3).evaluate(model)
        assert result.recall == pytest.approx(1.0)
        assert result.hit_rate == pytest.approx(1.0)
        assert result.num_users_evaluated == 3

    def test_train_items_are_excluded_from_ranking(self):
        dataset = self._dataset()
        model = PopularityRecommender(3, 8)
        # Train items are globally most popular; they must not crowd out the
        # test items because the evaluator excludes them per user.
        model.fit(np.array([50, 50, 50, 50, 50, 5, 5, 5]))
        result = RankingEvaluator(dataset, k=5).evaluate(model)
        assert result.recall > 0.0

    def test_max_users_limits_evaluation(self):
        dataset = self._dataset()
        model = PopularityRecommender(3, 8).fit(np.arange(8))
        result = RankingEvaluator(dataset, k=3).evaluate(model, max_users=2)
        assert result.num_users_evaluated == 2

    def test_users_without_test_items_are_skipped(self):
        dataset = InteractionDataset(2, 5, [(0, 0), (1, 1)], [(0, 2)])
        model = PopularityRecommender(2, 5).fit(np.ones(5))
        result = RankingEvaluator(dataset, k=2).evaluate(model)
        assert result.num_users_evaluated == 1

    def test_empty_test_split_returns_zeroes(self):
        dataset = InteractionDataset(2, 5, [(0, 0)], [])
        model = PopularityRecommender(2, 5).fit(np.ones(5))
        result = RankingEvaluator(dataset, k=2).evaluate(model)
        assert result.num_users_evaluated == 0
        assert result.recall == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RankingEvaluator(self._dataset(), k=0)

    def test_as_dict_keys(self):
        dataset = self._dataset()
        model = PopularityRecommender(3, 8).fit(np.ones(8))
        result = RankingEvaluator(dataset, k=4).evaluate(model)
        assert set(result.as_dict()) == {"Recall@4", "NDCG@4", "Precision@4", "HitRate@4"}

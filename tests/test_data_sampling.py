"""Tests for negative sampling, batch iteration and the MovieLens loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BatchIterator,
    UserBatchSampler,
    build_pointwise_samples,
    load_movielens_file,
    sample_negative_items,
)


class TestNegativeSampling:
    def test_never_returns_positives(self, rng):
        positives = np.array([0, 1, 2, 3])
        negatives = sample_negative_items(20, positives, 50, rng)
        assert not set(negatives.tolist()) & set(positives.tolist())

    def test_requested_count(self, rng):
        negatives = sample_negative_items(100, np.array([5]), 17, rng)
        assert negatives.size == 17

    def test_zero_samples(self, rng):
        assert sample_negative_items(10, np.array([1]), 0, rng).size == 0

    def test_all_items_positive_raises(self, rng):
        with pytest.raises(ValueError):
            sample_negative_items(3, np.array([0, 1, 2]), 5, rng)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=50), st.integers(min_value=1, max_value=20))
    def test_property_negatives_in_range_and_disjoint(self, num_items, num_positives):
        rng = np.random.default_rng(3)
        num_positives = min(num_positives, num_items - 1)
        positives = rng.choice(num_items, size=num_positives, replace=False)
        negatives = sample_negative_items(num_items, positives, 30, rng)
        assert np.all((negatives >= 0) & (negatives < num_items))
        assert not set(negatives.tolist()) & set(positives.tolist())


class TestPointwiseSamples:
    def test_ratio_respected(self, tiny_dataset, rng):
        users, items, labels = build_pointwise_samples(tiny_dataset, negative_ratio=4, rng=rng)
        positives = labels.sum()
        negatives = (labels == 0).sum()
        assert negatives == pytest.approx(4 * positives, rel=0.01)

    def test_positive_items_come_from_train_split(self, tiny_dataset, rng):
        users, items, labels = build_pointwise_samples(tiny_dataset, rng=rng)
        for user, item, label in zip(users, items, labels):
            if label == 1.0:
                assert item in set(tiny_dataset.train_items(user).tolist())

    def test_user_subset(self, tiny_dataset, rng):
        chosen = tiny_dataset.users[:3]
        users, _, _ = build_pointwise_samples(tiny_dataset, rng=rng, users=chosen)
        assert set(users.tolist()) <= set(chosen)


class TestUserBatchSampler:
    def test_epoch_covers_positives(self, rng):
        positives = np.array([1, 3, 5])
        sampler = UserBatchSampler(20, positives, negative_ratio=2, batch_size=4, rng=rng)
        seen_positive = set()
        for items, labels in sampler.epoch():
            assert len(items) <= 4
            seen_positive.update(items[labels == 1.0].tolist())
        assert seen_positive == {1, 3, 5}

    def test_extra_soft_labels_are_included(self, rng):
        sampler = UserBatchSampler(30, np.array([2]), negative_ratio=1, batch_size=8, rng=rng)
        extra_items = np.array([10, 11])
        extra_labels = np.array([0.7, 0.3])
        all_items = []
        all_labels = []
        for items, labels in sampler.epoch(extra_items, extra_labels):
            all_items.extend(items.tolist())
            all_labels.extend(labels.tolist())
        assert 10 in all_items and 11 in all_items
        assert 0.7 in all_labels and 0.3 in all_labels

    def test_sampled_training_items_structure(self, rng):
        sampler = UserBatchSampler(25, np.array([0, 4]), negative_ratio=3, rng=rng)
        pool = sampler.sampled_training_items()
        np.testing.assert_array_equal(pool["positives"], [0, 4])
        assert pool["negatives"].size > 0
        assert not set(pool["negatives"].tolist()) & {0, 4}

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            UserBatchSampler(10, np.array([1]), batch_size=0, rng=rng)


class TestBatchIterator:
    def test_batches_partition_data(self, rng):
        data = np.arange(10)
        labels = np.arange(10) * 2
        iterator = BatchIterator(data, labels, batch_size=3, rng=rng)
        seen = []
        for batch_data, batch_labels in iterator:
            np.testing.assert_array_equal(batch_labels, batch_data * 2)
            seen.extend(batch_data.tolist())
        assert sorted(seen) == list(range(10))
        assert len(iterator) == 4

    def test_no_shuffle_preserves_order(self):
        iterator = BatchIterator(np.arange(6), batch_size=2, shuffle=False)
        first_batch = next(iter(iterator))[0]
        np.testing.assert_array_equal(first_batch, [0, 1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BatchIterator(np.arange(5), np.arange(6), batch_size=2)

    def test_empty_arrays_rejected(self):
        with pytest.raises(ValueError):
            BatchIterator(batch_size=2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(np.arange(3), batch_size=0)


class TestMovieLensLoader:
    def test_loads_tab_separated_file(self, tmp_path, rng):
        path = tmp_path / "u.data"
        rows = ["1\t10\t5\t881250949", "1\t20\t4\t881250949", "2\t10\t3\t881250949",
                "2\t30\t1\t881250949", "3\t20\t5\t881250949", "3\t30\t4\t881250949"]
        path.write_text("\n".join(rows), encoding="utf-8")
        dataset = load_movielens_file(path, rng=rng)
        assert dataset.num_users == 3
        assert dataset.num_items == 3
        assert dataset.num_train_interactions + dataset.num_test_interactions == 6

    def test_positive_threshold_filters_rows(self, tmp_path, rng):
        path = tmp_path / "u.data"
        path.write_text("1\t10\t5\t0\n1\t20\t1\t0\n2\t10\t2\t0\n", encoding="utf-8")
        dataset = load_movielens_file(path, rng=rng, positive_threshold=4.0)
        assert dataset.num_train_interactions + dataset.num_test_interactions == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_movielens_file(tmp_path / "missing.data")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t10\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_movielens_file(path)

"""Tests for ``repro.analysis`` — the AST-based invariant linter.

Every rule gets a paired violating/clean fixture run through the
production driver (:func:`repro.analysis.core.analyze_source`), plus the
suppression grammar, the baseline mechanism, the CLI exit codes, and a
self-run asserting the repository itself is clean modulo the checked-in
baseline.
"""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    analyze_paths,
    analyze_source,
    apply_baseline,
    classify_role,
    get_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules.guarded_by import DANGLING_MESSAGE

REPO = Path(__file__).resolve().parent.parent


def lint(source, rel_path="src/repro/module.py", role=None, rules=None):
    return analyze_source(textwrap.dedent(source), rel_path, role=role, rules=rules)


def rule_names(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# Role classification
# ----------------------------------------------------------------------
class TestClassifyRole:
    @pytest.mark.parametrize(
        "path, role",
        [
            ("src/repro/nn/layers.py", "library"),
            ("repro/serve/gateway.py", "library"),
            ("tests/test_serve.py", "tests"),
            ("benchmarks/serve_loadgen.py", "benchmarks"),
            ("scripts/tool.py", "other"),
        ],
    )
    def test_roles(self, path, role):
        assert classify_role(path) == role


# ----------------------------------------------------------------------
# backend-purity
# ----------------------------------------------------------------------
class TestBackendPurity:
    def test_numpy_import_in_library_is_flagged(self):
        findings = lint("import numpy as np\n", rules=("backend-purity",))
        assert rule_names(findings) == ["backend-purity"]

    def test_from_numpy_import_is_flagged(self):
        findings = lint(
            "from numpy import float64\n", rules=("backend-purity",)
        )
        assert rule_names(findings) == ["backend-purity"]

    @pytest.mark.parametrize(
        "rel", ["src/repro/tensor/ops.py", "src/repro/data/dataset.py"]
    )
    def test_array_layer_allowlist_is_clean(self, rel):
        findings = lint("import numpy as np\n", rel_path=rel,
                        rules=("backend-purity",))
        assert findings == []

    def test_tests_and_benchmarks_are_out_of_scope(self):
        for rel in ("tests/test_x.py", "benchmarks/bench_x.py"):
            assert lint("import numpy as np\n", rel_path=rel,
                        rules=("backend-purity",)) == []

    def test_unrelated_import_is_clean(self):
        assert lint("import json\n", rules=("backend-purity",)) == []


# ----------------------------------------------------------------------
# rng-hygiene
# ----------------------------------------------------------------------
class TestRngHygiene:
    def test_np_random_call_is_flagged(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            rules=("rng-hygiene",),
        )
        assert rule_names(findings) == ["rng-hygiene"]
        assert "np.random.default_rng" in findings[0].message

    def test_numpy_alias_is_tracked(self):
        findings = lint(
            """
            import numpy as xp
            x = xp.random.rand(3)
            """,
            rules=("rng-hygiene",),
        )
        assert rule_names(findings) == ["rng-hygiene"]

    def test_stdlib_random_import_is_flagged(self):
        assert rule_names(lint("import random\n", rules=("rng-hygiene",))) == [
            "rng-hygiene"
        ]
        assert rule_names(
            lint("from random import shuffle\n", rules=("rng-hygiene",))
        ) == ["rng-hygiene"]

    def test_wall_clock_reads_are_flagged(self):
        findings = lint(
            """
            import time
            stamp = time.time()
            """,
            rules=("rng-hygiene",),
        )
        assert rule_names(findings) == ["rng-hygiene"]
        findings = lint(
            """
            from datetime import datetime
            now = datetime.now()
            """,
            rules=("rng-hygiene",),
        )
        assert rule_names(findings) == ["rng-hygiene"]

    def test_perf_counter_telemetry_is_exempt(self):
        findings = lint(
            """
            import time
            start = time.perf_counter()
            tick = time.monotonic()
            """,
            rules=("rng-hygiene",),
        )
        assert findings == []

    def test_generator_type_import_is_clean(self):
        assert lint(
            "from numpy.random import Generator\n", rules=("rng-hygiene",)
        ) == []

    def test_keyed_streams_are_clean(self):
        findings = lint(
            """
            from repro.utils.rng import seeded_rng
            rng = seeded_rng("stream")
            """,
            rules=("rng-hygiene",),
        )
        assert findings == []

    def test_rng_module_itself_is_exempt(self):
        findings = lint(
            "import numpy as np\nrng = np.random.default_rng(seed)\n",
            rel_path="src/repro/utils/rng.py",
            rules=("rng-hygiene",),
        )
        assert findings == []

    def test_benchmarks_are_in_scope_but_tests_are_not(self):
        source = "import numpy as np\nx = np.random.rand()\n"
        assert rule_names(
            lint(source, rel_path="benchmarks/bench.py", rules=("rng-hygiene",))
        ) == ["rng-hygiene"]
        assert lint(source, rel_path="tests/test_a.py",
                    rules=("rng-hygiene",)) == []


# ----------------------------------------------------------------------
# guarded-by
# ----------------------------------------------------------------------
_GUARDED_CLASS = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock

    def read(self):
{body}
"""


def _guarded(body):
    return _GUARDED_CLASS.format(body=textwrap.indent(textwrap.dedent(body), " " * 8))


class TestGuardedBy:
    def test_unguarded_access_is_flagged(self):
        findings = lint(_guarded("return self._total\n"), rules=("guarded-by",))
        assert rule_names(findings) == ["guarded-by"]
        assert "self._total is declared guarded-by self._lock" in findings[0].message

    def test_access_under_the_lock_is_clean(self):
        body = """
        with self._lock:
            return self._total
        """
        assert lint(_guarded(body), rules=("guarded-by",)) == []

    def test_init_is_exempt(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._total = 0  # guarded-by: _lock
                self._total = self._total + 1
        """
        assert lint(source, rules=("guarded-by",)) == []

    def test_holds_lock_declares_a_locked_helper(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._total = 0  # guarded-by: _lock

            def _bump_locked(self):  # holds-lock: _lock
                self._total += 1
        """
        assert lint(source, rules=("guarded-by",)) == []

    def test_closure_does_not_inherit_the_held_lock(self):
        body = """
        with self._lock:
            def later():
                return self._total
            return later
        """
        findings = lint(_guarded(body), rules=("guarded-by",))
        assert rule_names(findings) == ["guarded-by"]

    def test_wrong_lock_does_not_satisfy_the_guard(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()
                self._total = 0  # guarded-by: _lock

            def read(self):
                with self._other:
                    return self._total
        """
        findings = lint(source, rules=("guarded-by",))
        assert rule_names(findings) == ["guarded-by"]

    def test_own_line_annotation_attaches_to_next_assignment(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                # guarded-by: _lock
                self._pending = []

            def read(self):
                return self._pending
        """
        findings = lint(source, rules=("guarded-by",))
        assert rule_names(findings) == ["guarded-by"]
        assert "self._pending" in findings[0].message

    def test_dangling_annotation_is_flagged(self):
        source = """
        class Box:
            def read(self):
                # guarded-by: _lock
                return 1
        """
        findings = lint(source, rules=("guarded-by",))
        assert rule_names(findings) == ["guarded-by"]
        assert findings[0].message == DANGLING_MESSAGE

    def test_nested_with_holds_both_locks(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self._x = 0  # guarded-by: _b

            def bump(self):
                with self._a:
                    with self._b:
                        self._x += 1
        """
        assert lint(source, rules=("guarded-by",)) == []


# ----------------------------------------------------------------------
# float-determinism
# ----------------------------------------------------------------------
class TestFloatDeterminism:
    def test_sum_over_set_is_flagged(self):
        findings = lint(
            "total = sum({a, b, c})\n", rules=("float-determinism",)
        )
        assert rule_names(findings) == ["float-determinism"]

    def test_sum_over_set_call_and_comprehension(self):
        assert rule_names(
            lint("total = sum(set(values))\n", rules=("float-determinism",))
        ) == ["float-determinism"]
        assert rule_names(
            lint("total = sum(x * 2 for x in {1.0, 2.0})\n",
                 rules=("float-determinism",))
        ) == ["float-determinism"]

    def test_sum_over_set_algebra_is_flagged(self):
        findings = lint(
            "total = sum(arrived - failed)\n".replace(
                "arrived - failed", "set(a) - set(b)"
            ),
            rules=("float-determinism",),
        )
        assert rule_names(findings) == ["float-determinism"]

    def test_sum_over_dict_view_is_flagged(self):
        findings = lint(
            "total = sum(weights.values())\n", rules=("float-determinism",)
        )
        assert rule_names(findings) == ["float-determinism"]
        assert ".values()" in findings[0].message

    def test_loop_accumulation_over_set_is_flagged(self):
        source = """
        total = 0.0
        for value in {1.0, 2.0}:
            total += value
        """
        findings = lint(source, rules=("float-determinism",))
        assert rule_names(findings) == ["float-determinism"]

    def test_sorted_iteration_is_clean(self):
        source = """
        total = sum(sorted({1.0, 2.0}))
        other = sum(weights[k] for k in sorted(weights))
        acc = 0.0
        for value in sorted(values):
            acc += value
        """
        assert lint(source, rules=("float-determinism",)) == []

    def test_rule_is_library_scoped(self):
        assert lint("total = sum({a, b})\n", rel_path="tests/test_a.py",
                    rules=("float-determinism",)) == []


# ----------------------------------------------------------------------
# state-dict-symmetry
# ----------------------------------------------------------------------
class TestStateDictSymmetry:
    def test_saver_without_loader_is_flagged(self):
        source = """
        class Thing:
            def state_dict(self):
                return {}
        """
        findings = lint(source, rules=("state-dict-symmetry",))
        assert rule_names(findings) == ["state-dict-symmetry"]
        assert "Thing" in findings[0].message

    def test_symmetric_pair_is_clean(self):
        source = """
        class Thing:
            def state_dict(self):
                return {}

            def load_state_dict(self, state):
                pass
        """
        assert lint(source, rules=("state-dict-symmetry",)) == []

    def test_from_state_dict_counts_as_loader(self):
        source = """
        class Delta:
            def state_dict(self):
                return {}

            @classmethod
            def from_state_dict(cls, state):
                return cls()
        """
        assert lint(source, rules=("state-dict-symmetry",)) == []

    def test_loader_only_without_bases_is_flagged(self):
        source = """
        class Thing:
            def load_state_dict(self, state):
                pass
        """
        findings = lint(source, rules=("state-dict-symmetry",))
        assert rule_names(findings) == ["state-dict-symmetry"]

    def test_loader_only_subclass_inherits_the_saver(self):
        source = """
        class LightGCN(Base):
            def load_state_dict(self, state):
                pass
        """
        assert lint(source, rules=("state-dict-symmetry",)) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_justified_suppression_silences_the_finding(self):
        findings = lint(
            "import numpy as np  # repro: disable=backend-purity -- index math only\n",
            rules=("backend-purity",),
        )
        assert findings == []

    def test_own_line_suppression_governs_the_next_line(self):
        source = """
        # repro: disable=backend-purity -- index math only
        import numpy as np
        """
        assert lint(source, rules=("backend-purity",)) == []

    def test_missing_justification_is_flagged_and_suppresses_nothing(self):
        findings = lint(
            "import numpy as np  # repro: disable=backend-purity\n",
            rules=("backend-purity",),
        )
        assert sorted(rule_names(findings)) == ["backend-purity", "bad-suppression"]

    def test_unknown_rule_name_is_flagged(self):
        findings = lint(
            "x = 1  # repro: disable=no-such-rule -- because\n",
            rules=("backend-purity",),
        )
        assert rule_names(findings) == ["bad-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_file_wide_suppression(self):
        source = """
        # repro: disable-file=backend-purity -- serving boundary shim
        import numpy as np
        from numpy import float64
        """
        assert lint(source, rules=("backend-purity",)) == []

    def test_suppression_only_covers_named_rules(self):
        findings = lint(
            "import numpy as np  # repro: disable=rng-hygiene -- wrong rule\n",
            rules=("backend-purity",),
        )
        assert rule_names(findings) == ["backend-purity"]

    def test_meta_findings_cannot_be_suppressed(self):
        findings = lint(
            "x = 1  # repro: disable=bad-suppression\n",
            rules=("backend-purity",),
        )
        assert rule_names(findings) == ["bad-suppression"]

    def test_parse_error_is_reported_as_a_finding(self):
        findings = lint("def broken(:\n")
        assert rule_names(findings) == ["parse-error"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_grandfathers_the_recorded_findings(self, tmp_path):
        findings = lint("import numpy as np\n", rules=("backend-purity",))
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        new, grandfathered, stale = apply_baseline(findings, load_baseline(path))
        assert new == []
        assert len(grandfathered) == 1
        assert stale == 0

    def test_matching_ignores_line_drift(self):
        recorded = Finding("src/repro/a.py", 10, 0, "backend-purity", "msg")
        moved = Finding("src/repro/a.py", 42, 4, "backend-purity", "msg")
        new, grandfathered, stale = apply_baseline(
            [moved], Counter({recorded.key: 1})
        )
        assert new == [] and grandfathered == [moved] and stale == 0

    def test_stale_entries_are_counted(self):
        new, grandfathered, stale = apply_baseline(
            [], Counter({("src/repro/gone.py", "rule", "msg"): 2})
        )
        assert (new, grandfathered, stale) == ([], [], 2)

    def test_fresh_findings_stay_new(self):
        fresh = Finding("src/repro/a.py", 1, 0, "backend-purity", "msg")
        new, _grandfathered, _stale = apply_baseline([fresh], Counter())
        assert new == [fresh]

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_text_report_renders_location_and_summary(self):
        finding = Finding("src/repro/a.py", 3, 7, "backend-purity", "leak")
        text = render_text([finding], [], 0, 5)
        assert "src/repro/a.py:3:7: backend-purity: leak" in text
        assert "1 new finding(s) [backend-purity: 1]" in text
        assert "5 file(s) analysed" in text

    def test_json_report_shape_is_stable(self):
        finding = Finding("src/repro/a.py", 3, 7, "backend-purity", "leak")
        report = render_json([finding], [], 2, 5)
        assert report["version"] == 1
        assert report["summary"] == {
            "new": 1,
            "grandfathered": 0,
            "stale_baseline_entries": 2,
            "files_analysed": 5,
            "by_rule": {"backend-purity": 1},
        }
        assert report["findings"][0]["line"] == 3


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture
def lint_tree(tmp_path, monkeypatch):
    """A tiny repo-shaped tree with one violating and one clean file."""
    pkg = tmp_path / "src" / "repro" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("import numpy as np\n")
    (pkg / "clean.py").write_text("import json\n")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_violations_exit_1_and_render(self, lint_tree, capsys):
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/pkg/dirty.py" in out
        assert "backend-purity" in out

    def test_clean_run_exits_0(self, lint_tree, capsys):
        assert main(["src/repro/pkg/clean.py"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_rule_subset(self, lint_tree, capsys):
        assert main(["--rules", "rng-hygiene", "src"]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_2(self, lint_tree, capsys):
        assert main(["--rules", "no-such-rule", "src"]) == 2
        capsys.readouterr()

    def test_missing_path_exits_2(self, lint_tree, capsys):
        assert main(["no/such/dir"]) == 2
        capsys.readouterr()

    def test_no_paths_exits_2(self, lint_tree, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_unreadable_baseline_exits_2(self, lint_tree, capsys):
        Path("analysis-baseline.json").write_text("{}")
        assert main(["src"]) == 2
        capsys.readouterr()

    def test_write_baseline_then_rerun_is_green(self, lint_tree, capsys):
        assert main(["--write-baseline", "src"]) == 1  # non-empty baseline
        assert main(["src"]) == 0  # grandfathered now
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # the violation is still visible on demand
        assert main(["--show-baselined", "src"]) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_the_file(self, lint_tree, capsys):
        assert main(["--write-baseline", "src"]) == 1
        assert main(["--no-baseline", "src"]) == 1
        capsys.readouterr()

    def test_json_report_artifact(self, lint_tree, capsys):
        assert main(["--json", "report.json", "src"]) == 1
        capsys.readouterr()
        report = json.loads(Path("report.json").read_text())
        assert report["summary"]["new"] == 1
        assert report["summary"]["by_rule"] == {"backend-purity": 1}

    def test_json_format_on_stdout(self, lint_tree, capsys):
        assert main(["--format", "json", "src"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["findings"][0]["rule"] == "backend-purity"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("backend-purity", "rng-hygiene", "guarded-by",
                     "float-determinism", "state-dict-symmetry"):
            assert name in out

    def test_get_rules_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rules(["nope"])


# ----------------------------------------------------------------------
# Self-run: the repository is clean modulo its checked-in baseline
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repository_is_clean_modulo_baseline(self):
        findings, files = analyze_paths(
            [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")],
            root=REPO,
        )
        baseline = load_baseline(REPO / "analysis-baseline.json")
        new, _grandfathered, _stale = apply_baseline(findings, baseline)
        assert new == [], "\n".join(finding.render() for finding in new)
        assert files > 100  # the walk really covered the tree

"""Integration tests for the end-to-end PTF-FedRec protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PTFConfig, PTFFedRec
from repro.federated import FCF, FederatedConfig
from repro.federated.communication import prediction_triple_bytes


def _config(**overrides):
    defaults = dict(
        rounds=3,
        client_local_epochs=2,
        server_epochs=1,
        embedding_dim=8,
        client_mlp_layers=(16, 8),
        server_num_layers=2,
        alpha=10,
        server_model="ngcf",
        seed=11,
    )
    defaults.update(overrides)
    return PTFConfig(**defaults)


class TestProtocolRounds:
    def test_round_summary_bookkeeping(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(rounds=1))
        summary = system.run_round(0)
        assert summary.num_clients == len(tiny_dataset.users)
        assert summary.uploaded_records > 0
        assert summary.dispersed_records > 0
        assert np.isfinite(summary.client_loss)
        assert np.isfinite(summary.server_loss)

    def test_fit_runs_all_rounds_and_continues(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(rounds=2))
        system.fit()
        assert len(system.round_summaries) == 2
        system.fit(rounds=1)
        assert len(system.round_summaries) == 3
        assert [s.round_index for s in system.round_summaries] == [0, 1, 2]

    def test_client_fraction_selects_subset(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(client_fraction=0.2, rounds=1))
        summary = system.run_round(0)
        assert summary.num_clients == max(1, round(0.2 * len(tiny_dataset.users)))

    def test_clients_receive_dispersal_after_round(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(rounds=1))
        system.fit()
        sizes = [client.server_items.size for client in system.clients.values()]
        assert max(sizes) > 0

    def test_deterministic_given_seed(self, tiny_dataset):
        def run():
            system = PTFFedRec(tiny_dataset, _config(rounds=2, seed=4))
            system.fit()
            return system.evaluate(k=10, max_users=10).ndcg

        assert run() == pytest.approx(run())

    @pytest.mark.parametrize("server_model", ["neumf", "ngcf", "lightgcn"])
    def test_all_server_models_complete_a_round(self, tiny_dataset, server_model):
        system = PTFFedRec(tiny_dataset, _config(rounds=1, server_model=server_model))
        system.fit()
        result = system.evaluate(k=10, max_users=10)
        assert 0.0 <= result.recall <= 1.0


class TestModelPrivacyInvariants:
    def test_no_model_parameters_cross_the_wire(self, tiny_dataset):
        # The core claim of the paper: every transmitted byte is a
        # prediction triple, never a parameter matrix.
        system = PTFFedRec(tiny_dataset, _config(rounds=1))
        system.fit()
        for record in system.ledger.records:
            assert record.num_bytes % prediction_triple_bytes(1) == 0
        server_parameter_bytes = 4 * sum(p.size for p in system.server.model.parameters())
        largest_transfer = max(record.num_bytes for record in system.ledger.records)
        assert largest_transfer < server_parameter_bytes

    def test_server_and_client_models_are_heterogeneous(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(server_model="lightgcn"))
        client = next(iter(system.clients.values()))
        assert type(system.server.model).__name__ == "LightGCN"
        assert type(client.model).__name__ == "NeuMF"

    def test_server_never_stores_raw_client_positives(self, tiny_dataset):
        # The server only sees uploads; its training data are (item, score)
        # pairs, so check the server object holds no reference to the
        # clients' private arrays.
        system = PTFFedRec(tiny_dataset, _config(rounds=1))
        system.fit()
        client_arrays = {id(client.positive_items) for client in system.clients.values()}
        server_attrs = vars(system.server)
        for value in server_attrs.values():
            assert id(value) not in client_arrays


class TestCommunicationAndPrivacy:
    def test_ptf_communication_is_orders_of_magnitude_below_fcf(self, tiny_dataset):
        ptf = PTFFedRec(tiny_dataset, _config(rounds=1))
        ptf.fit()
        fcf = FCF(tiny_dataset, FederatedConfig(rounds=1, local_epochs=1, embedding_dim=32))
        fcf.fit()
        assert fcf.average_client_round_kilobytes() > 5 * ptf.average_client_round_kilobytes()

    def test_privacy_audit_defended_below_undefended(self, tiny_dataset):
        protected = PTFFedRec(tiny_dataset, _config(rounds=1, defense="sampling+swapping"))
        protected.fit()
        exposed = PTFFedRec(tiny_dataset, _config(rounds=1, defense="none"))
        exposed.fit()
        assert exposed.audit_privacy().mean_f1 > protected.audit_privacy().mean_f1

    def test_audit_before_training_is_empty(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config())
        report = system.audit_privacy()
        assert report.num_clients == 0

    def test_evaluate_client_models_returns_result(self, tiny_dataset):
        system = PTFFedRec(tiny_dataset, _config(rounds=1))
        system.fit()
        result = system.evaluate_client_models(k=10, max_users=5)
        assert result.num_users_evaluated == 5
        assert 0.0 <= result.recall <= 1.0


class TestLearningProgress:
    def test_server_model_beats_untrained_initialization(self, small_dataset):
        # The miniature datasets need a smaller server batch and a slightly
        # larger learning rate than the paper's full-scale defaults so that
        # the server sees enough optimizer steps within a handful of rounds.
        config = _config(
            rounds=8,
            client_local_epochs=2,
            server_epochs=3,
            server_batch_size=128,
            learning_rate=0.01,
            alpha=15,
        )
        system = PTFFedRec(small_dataset, config)
        before = system.evaluate(k=10)
        system.fit()
        after = system.evaluate(k=10)
        assert after.recall > before.recall
        assert after.ndcg > before.ndcg
        assert system.round_summaries[-1].server_loss < system.round_summaries[0].server_loss

"""Tests for the parameter transmission-based FedRec baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import FCF, FederatedConfig, FedMF, MetaMF
from repro.federated.metamf import MetaMFModel


def _config(**overrides):
    defaults = dict(rounds=2, local_epochs=1, embedding_dim=8, seed=3)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


class TestFederatedConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"rounds": 0}, {"local_epochs": 0}, {"client_fraction": 0.0}, {"client_fraction": 1.5}],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FederatedConfig(**kwargs)


class TestProtocolMechanics:
    def test_fcf_round_touches_every_client(self, tiny_dataset):
        system = FCF(tiny_dataset, _config())
        system.run_round(0)
        clients_with_traffic = {record.client_id for record in system.ledger.records}
        assert clients_with_traffic == set(tiny_dataset.users)

    def test_client_fraction_limits_participation(self, tiny_dataset):
        system = FCF(tiny_dataset, _config(client_fraction=0.2))
        system.run_round(0)
        clients_with_traffic = {record.client_id for record in system.ledger.records}
        assert len(clients_with_traffic) == max(1, round(0.2 * len(tiny_dataset.users)))

    def test_public_parameters_change_after_round(self, tiny_dataset):
        system = FCF(tiny_dataset, _config())
        before = system.model.item_embedding.weight.data.copy()
        system.run_round(0)
        after = system.model.item_embedding.weight.data
        assert not np.allclose(before, after)

    def test_fcf_model_has_no_bias_terms(self, tiny_dataset):
        # Faithful to the original FCF: plain dot-product factorization.
        system = FCF(tiny_dataset, _config())
        assert not system.model.use_bias

    def test_user_embeddings_stay_private_between_clients(self, tiny_dataset):
        # A user's embedding row must only be touched while that user trains;
        # FedAvg aggregation never mixes user rows.
        system = FCF(tiny_dataset, _config())
        users = tiny_dataset.users
        absent_user = max(users) if max(users) not in users[:1] else users[-1]
        before = system.model.user_embedding.weight.data[absent_user].copy()
        # Run a round restricted to a different single client.
        system.config.client_fraction = 1.0 / len(users)
        system.run_round(0)
        trained = {record.client_id for record in system.ledger.records}
        if absent_user not in trained:
            after = system.model.user_embedding.weight.data[absent_user]
            np.testing.assert_array_equal(before, after)

    def test_fit_runs_requested_rounds(self, tiny_dataset):
        system = FCF(tiny_dataset, _config(rounds=3))
        system.fit()
        assert system.rounds_completed == 3
        assert set(system.ledger.bytes_per_round()) == {0, 1, 2}

    def test_training_improves_over_initialization(self, tiny_dataset):
        config = _config(rounds=6, local_epochs=2, local_learning_rate=0.1)
        system = FCF(tiny_dataset, config)
        before = system.evaluate(k=10)
        system.fit()
        after = system.evaluate(k=10)
        # Federated MF learns slowly at this tiny scale; require that the
        # ranking quality does not regress and that NDCG improves.
        assert after.ndcg >= before.ndcg
        assert after.recall >= before.recall - 1e-6

    def test_evaluation_returns_ranking_result(self, tiny_dataset):
        system = FCF(tiny_dataset, _config())
        result = system.evaluate(k=5, max_users=10)
        assert 0.0 <= result.recall <= 1.0
        assert result.k == 5


class TestCommunicationCosts:
    def test_fcf_cost_matches_item_table_size(self, tiny_dataset):
        system = FCF(tiny_dataset, _config())
        system.run_round(0)
        expected = 2 * 4 * (tiny_dataset.num_items * 8)
        assert system.ledger.average_client_round_bytes() == pytest.approx(expected)

    def test_fedmf_is_more_expensive_than_fcf(self, tiny_dataset):
        fcf = FCF(tiny_dataset, _config())
        fedmf = FedMF(tiny_dataset, _config())
        fcf.run_round(0)
        fedmf.run_round(0)
        assert (
            fedmf.average_client_round_kilobytes()
            > 5 * fcf.average_client_round_kilobytes()
        )

    def test_fedmf_ciphertext_expansion_is_configurable(self, tiny_dataset):
        small = FedMF(tiny_dataset, _config(), ciphertext_bytes=8)
        large = FedMF(tiny_dataset, _config(), ciphertext_bytes=128)
        small.run_round(0)
        large.run_round(0)
        ratio = (
            large.ledger.average_client_round_bytes()
            / small.ledger.average_client_round_bytes()
        )
        assert ratio == pytest.approx(16.0)

    def test_fedmf_rejects_sub_plaintext_ciphertexts(self, tiny_dataset):
        with pytest.raises(ValueError):
            FedMF(tiny_dataset, _config(), ciphertext_bytes=2)

    def test_metamf_cost_close_to_but_above_item_table(self, tiny_dataset):
        fcf = FCF(tiny_dataset, _config())
        metamf = MetaMF(tiny_dataset, _config())
        fcf.run_round(0)
        metamf.run_round(0)
        assert (
            metamf.ledger.average_client_round_bytes()
            > 0.8 * fcf.ledger.average_client_round_bytes()
        )

    def test_costs_grow_with_item_count(self, tiny_dataset, small_dataset):
        smaller = FCF(tiny_dataset, _config())
        larger = FCF(small_dataset, _config())
        smaller.run_round(0)
        larger.run_round(0)
        assert (
            larger.ledger.average_client_round_bytes()
            > smaller.ledger.average_client_round_bytes()
        )


class TestMetaMFModel:
    def test_scores_are_probabilities(self, rng):
        model = MetaMFModel(4, 9, embedding_dim=6, rng=rng)
        scores = model.score(np.array([0, 1]), np.array([3, 8])).numpy()
        assert np.all((scores > 0) & (scores < 1))

    def test_meta_network_is_used(self, rng):
        model = MetaMFModel(4, 9, embedding_dim=6, rng=rng)
        items = np.array([0, 5])
        generated = model.generate_item_embedding(items).numpy()
        base = model.item_base_embedding.weight.data[items]
        assert not np.allclose(generated, base)

    def test_metamf_public_parameters_exclude_user_table(self, tiny_dataset):
        system = MetaMF(tiny_dataset, _config())
        public_names = set(system._public_parameter_names())
        assert "user_embedding.weight" not in public_names
        model_names = {name for name, _ in system.model.named_parameters()}
        assert public_names <= model_names

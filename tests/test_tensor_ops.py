"""Unit tests for the autograd engine's forward operations."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional as F


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.size == 4
        assert not tensor.requires_grad

    def test_construction_preserves_values(self):
        data = np.arange(6, dtype=np.float64).reshape(2, 3)
        tensor = Tensor(data)
        np.testing.assert_array_equal(tensor.numpy(), data)

    def test_zeros_and_ones(self):
        assert np.all(Tensor.zeros((3, 2)).numpy() == 0.0)
        assert np.all(Tensor.ones((2, 2)).numpy() == 1.0)

    def test_randn_uses_rng(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        a = Tensor.randn((4, 4), rng=rng1)
        b = Tensor.randn((4, 4), rng=rng2)
        np.testing.assert_array_equal(a.numpy(), b.numpy())

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert b._backward is None
        assert not b.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestArithmetic:
    def test_add(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(result.numpy(), [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        result = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(result.numpy(), [2.0, 3.0])

    def test_radd(self):
        result = 1.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(result.numpy(), [2.0, 3.0])

    def test_sub(self):
        result = Tensor([3.0, 5.0]) - Tensor([1.0, 2.0])
        np.testing.assert_allclose(result.numpy(), [2.0, 3.0])

    def test_rsub(self):
        result = 10.0 - Tensor([1.0, 2.0])
        np.testing.assert_allclose(result.numpy(), [9.0, 8.0])

    def test_mul(self):
        result = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(result.numpy(), [8.0, 15.0])

    def test_div(self):
        result = Tensor([8.0, 9.0]) / Tensor([2.0, 3.0])
        np.testing.assert_allclose(result.numpy(), [4.0, 3.0])

    def test_rdiv(self):
        result = 12.0 / Tensor([3.0, 4.0])
        np.testing.assert_allclose(result.numpy(), [4.0, 3.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).numpy(), [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) ** 2).numpy(), [4.0, 9.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0], [6.0]])
        np.testing.assert_allclose((a @ b).numpy(), [[17.0], [39.0]])

    def test_transpose(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(a.T.numpy(), [[1.0, 3.0], [2.0, 4.0]])

    def test_reshape(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)


class TestReductionsAndNonlinearities:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == pytest.approx(10.0)

    def test_sum_axis(self):
        result = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        np.testing.assert_allclose(result.numpy(), [4.0, 6.0])

    def test_mean(self):
        assert Tensor([1.0, 2.0, 3.0]).mean().item() == pytest.approx(2.0)

    def test_mean_axis(self):
        result = Tensor([[1.0, 3.0], [2.0, 4.0]]).mean(axis=1)
        np.testing.assert_allclose(result.numpy(), [2.0, 3.0])

    def test_exp_log_roundtrip(self):
        values = np.array([0.5, 1.0, 2.0])
        roundtrip = Tensor(values).log().exp()
        np.testing.assert_allclose(roundtrip.numpy(), values)

    def test_sigmoid_range(self):
        scores = Tensor(np.linspace(-10, 10, 21)).sigmoid().numpy()
        assert np.all(scores > 0.0) and np.all(scores < 1.0)
        assert scores[0] < 0.01 and scores[-1] > 0.99

    def test_sigmoid_extreme_values_do_not_overflow(self):
        scores = Tensor(np.array([-1e6, 1e6])).sigmoid().numpy()
        assert np.all(np.isfinite(scores))

    def test_relu(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.0, 2.0]).relu().numpy(), [0.0, 0.0, 2.0]
        )

    def test_tanh(self):
        np.testing.assert_allclose(Tensor([0.0]).tanh().numpy(), [0.0])

    def test_leaky_relu(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 2.0]).leaky_relu(0.1).numpy(), [-0.1, 2.0]
        )

    def test_clip(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.5, 2.0]).clip(0.0, 1.0).numpy(), [0.0, 0.5, 1.0]
        )


class TestIndexingAndCombinators:
    def test_index_rows(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        rows = table.index_rows(np.array([1, 3]))
        np.testing.assert_allclose(rows.numpy(), [[3.0, 4.0, 5.0], [9.0, 10.0, 11.0]])

    def test_index_rows_repeats(self):
        table = Tensor(np.arange(6.0).reshape(3, 2))
        rows = table.index_rows(np.array([0, 0, 2]))
        assert rows.shape == (3, 2)

    def test_getitem(self):
        tensor = Tensor(np.arange(5.0))
        np.testing.assert_allclose(tensor[np.array([0, 2])].numpy(), [0.0, 2.0])

    def test_concat_axis1(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert Tensor.concat([a, b], axis=1).shape == (2, 5)

    def test_stack(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert Tensor.stack([a, b], axis=0).shape == (2, 2)

    def test_sparse_matmul_matches_dense(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        sparse = sp.csr_matrix(dense)
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(x.sparse_matmul(sparse).numpy(), dense @ x.numpy())


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert b._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestFunctional:
    def test_bce_perfect_prediction_is_small(self):
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy(Tensor([0.999999, 0.000001]), targets)
        assert loss.item() < 1e-4

    def test_bce_wrong_prediction_is_large(self):
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy(Tensor([0.01, 0.99]), targets)
        assert loss.item() > 2.0

    def test_bce_supports_soft_targets(self):
        loss = F.binary_cross_entropy(Tensor([0.3, 0.7]), np.array([0.3, 0.7]))
        uniform = F.binary_cross_entropy(Tensor([0.5, 0.5]), np.array([0.3, 0.7]))
        assert loss.item() < uniform.item()

    def test_bce_with_logits_matches_probability_path(self):
        logits = Tensor(np.array([0.4, -1.2]))
        targets = np.array([1.0, 0.0])
        from_logits = F.binary_cross_entropy_with_logits(logits, targets)
        from_probs = F.binary_cross_entropy(logits.sigmoid(), targets)
        assert from_logits.item() == pytest.approx(from_probs.item())

    def test_bpr_prefers_positive_above_negative(self):
        good = F.bpr_loss(Tensor([5.0]), Tensor([-5.0]))
        bad = F.bpr_loss(Tensor([-5.0]), Tensor([5.0]))
        assert good.item() < bad.item()

    def test_l2_regularization_value(self):
        value = F.l2_regularization([Tensor([1.0, 2.0]), Tensor([3.0])], weight=0.1)
        assert value.item() == pytest.approx(0.1 * (1 + 4 + 9))

    def test_l2_regularization_empty(self):
        assert F.l2_regularization([], weight=0.1).item() == 0.0

    def test_mse_loss(self):
        assert F.mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0])).item() == pytest.approx(2.0)

"""Tests for the communication cost models and the ledger."""

from __future__ import annotations

import pytest

from repro.federated import (
    CommunicationLedger,
    dense_parameter_bytes,
    encrypted_parameter_bytes,
    prediction_triple_bytes,
)


class TestCostModels:
    def test_dense_bytes(self):
        assert dense_parameter_bytes(1000) == 4000

    def test_encrypted_bytes_default_ciphertext(self):
        assert encrypted_parameter_bytes(10) == 10 * 512

    def test_encrypted_bytes_custom_ciphertext(self):
        assert encrypted_parameter_bytes(10, ciphertext_bytes=64) == 640

    def test_prediction_triple_bytes(self):
        # (user id, item id, score) -> 12 bytes per record.
        assert prediction_triple_bytes(5) == 60

    @pytest.mark.parametrize(
        "function", [dense_parameter_bytes, encrypted_parameter_bytes, prediction_triple_bytes]
    )
    def test_negative_counts_rejected(self, function):
        with pytest.raises(ValueError):
            function(-1)

    def test_prediction_payload_is_much_smaller_than_item_table(self):
        # The core efficiency claim: a typical upload (a few dozen triples)
        # is orders of magnitude below an item-embedding table.
        item_table = dense_parameter_bytes(1682 * 32)
        upload = prediction_triple_bytes(50)
        assert item_table / upload > 100


class TestLedger:
    def test_total_and_round_aggregation(self):
        ledger = CommunicationLedger()
        ledger.record(0, 1, "download", 100)
        ledger.record(0, 1, "upload", 50)
        ledger.record(1, 2, "download", 200)
        assert ledger.total_bytes() == 350
        assert ledger.bytes_per_round() == {0: 150, 1: 200}
        assert len(ledger) == 3

    def test_average_client_round_bytes(self):
        ledger = CommunicationLedger()
        ledger.record(0, 1, "download", 100)
        ledger.record(0, 1, "upload", 100)
        ledger.record(0, 2, "download", 300)
        ledger.record(1, 1, "upload", 500)
        # Pairs: (1,0)=200, (2,0)=300, (1,1)=500 -> mean ~333.33.
        assert ledger.average_client_round_bytes() == pytest.approx(1000 / 3)

    def test_unit_conversions(self):
        ledger = CommunicationLedger()
        ledger.record(0, 0, "upload", 2048)
        assert ledger.average_client_round_kilobytes() == pytest.approx(2.0)
        assert ledger.average_client_round_megabytes() == pytest.approx(2.0 / 1024)

    def test_empty_ledger_average_is_zero(self):
        assert CommunicationLedger().average_client_round_bytes() == 0.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLedger().record(0, 0, "sideways", 10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLedger().record(0, 0, "upload", -1)

    def test_records_are_copies(self):
        ledger = CommunicationLedger()
        ledger.record(0, 0, "upload", 10, description="test")
        records = ledger.records
        assert records[0].description == "test"
        records.clear()
        assert len(ledger) == 1

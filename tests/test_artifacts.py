"""Tests for repro.artifacts: checkpoint format, resume fidelity, callbacks.

The headline contract: ``repro.run(spec)`` for N rounds equals
checkpoint-at-N/2 followed by ``repro.run(spec, resume_from=...)``
**bit-identically** — metrics compared with ``==``, final parameters with
exact array equality — for every trainer and every execution scheduler.
"""

from __future__ import annotations

import json
import pickle
import warnings

import numpy as np
import pytest

import repro
from repro.artifacts import (
    SCHEMA_VERSION,
    CheckpointEveryK,
    dataset_fingerprint,
    flatten_state,
    load_checkpoint,
    save_checkpoint,
    unflatten_state,
)
from repro.core import PTFConfig
from repro.experiments import (
    CommunicationSummary,
    ExperimentSpec,
    PrivacySummary,
    RoundRecord,
    RunResult,
    create_trainer,
)

ROUNDS = 4
HALF = ROUNDS // 2


def tiny_spec(trainer: str = "ptf", **overrides) -> ExperimentSpec:
    base = dict(
        trainer=trainer,
        seed=11,
        embedding_dim=8,
        rounds=ROUNDS,
        client_local_epochs=1,
        server_epochs=1,
        alpha=10,
    )
    base.update(overrides)
    trainer = base.pop("trainer")
    seed = base.pop("seed")
    return ExperimentSpec.from_flat(trainer=trainer, seed=seed, **base)


def assert_states_equal(left: dict, right: dict, path: str = "") -> None:
    """Exact (bitwise) equality of two state trees."""
    assert type(left) is type(right) or (
        isinstance(left, (int, float)) and isinstance(right, (int, float))
    ), f"type mismatch at {path}: {type(left)} vs {type(right)}"
    if isinstance(left, dict):
        assert set(left) == set(right), f"key mismatch at {path}"
        for key in left:
            assert_states_equal(left[key], right[key], f"{path}/{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), f"length mismatch at {path}"
        for index, (a, b) in enumerate(zip(left, right)):
            assert_states_equal(a, b, f"{path}/{index}")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, f"dtype mismatch at {path}"
        assert np.array_equal(left, right), f"array mismatch at {path}"
    else:
        assert left == right, f"value mismatch at {path}: {left!r} vs {right!r}"


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_flatten_roundtrip(self):
        tree = {
            "model": {"w.weight": np.arange(6.0).reshape(2, 3)},
            "steps": {"0": 3},
            "history": [1.5, {"nested": np.array([1, 2])}],
            "name": "x",
            "none": None,
        }
        twin, arrays = flatten_state(tree)
        json.dumps(twin)  # the twin must be JSON-safe
        rebuilt = unflatten_state(twin, arrays)
        assert_states_equal(rebuilt, tree)

    def test_flatten_paths_are_readable(self):
        _, arrays = flatten_state({"server": {"model": {"w": np.zeros(2)}}})
        assert list(arrays) == ["server/model/w"]

    def test_manifest_contents(self, tiny_dataset, tmp_path):
        spec = tiny_spec(rounds=1)
        adapter = create_trainer(spec, tiny_dataset).fit()
        save_checkpoint(tmp_path / "ck", adapter)
        manifest = json.loads((tmp_path / "ck" / "manifest.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["trainer"] == "ptf"
        assert manifest["rounds_completed"] == 1
        assert manifest["spec"] == spec.to_dict()
        assert manifest["fingerprint"] == dataset_fingerprint(tiny_dataset)
        assert (tmp_path / "ck" / manifest["arrays_file"]).exists()

    def test_unknown_schema_version_rejected(self, tiny_dataset, tmp_path):
        spec = tiny_spec(rounds=1)
        adapter = create_trainer(spec, tiny_dataset).fit()
        save_checkpoint(tmp_path / "ck", adapter)
        manifest_path = tmp_path / "ck" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema version"):
            load_checkpoint(tmp_path / "ck")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")

    def test_checkpoint_is_self_contained(self, tiny_dataset, tmp_path):
        spec = tiny_spec(rounds=1)
        adapter = create_trainer(spec, tiny_dataset).fit()
        save_checkpoint(tmp_path / "ck", adapter)
        checkpoint = load_checkpoint(tmp_path / "ck")
        rebuilt = checkpoint.dataset()
        assert dataset_fingerprint(rebuilt) == dataset_fingerprint(tiny_dataset)
        assert rebuilt.name == tiny_dataset.name

    def test_fingerprint_mismatch_rejected(self, tiny_dataset, small_dataset, tmp_path):
        spec = tiny_spec(rounds=1)
        adapter = create_trainer(spec, tiny_dataset).fit()
        save_checkpoint(tmp_path / "ck", adapter)
        checkpoint = load_checkpoint(tmp_path / "ck")
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            checkpoint.restore(small_dataset)


# ----------------------------------------------------------------------
# Resume fidelity (the acceptance bar)
# ----------------------------------------------------------------------
class TestResumeFidelity:
    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "fedmf", "metamf", "centralized"])
    def test_resume_is_bit_identical(self, trainer, tiny_dataset, tmp_path):
        spec = tiny_spec(trainer)
        full = repro.run(spec, tiny_dataset)

        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[callback])
        resumed = repro.run(spec, tiny_dataset, resume_from=tmp_path / "ck" / "latest")

        # Metrics compare with == (not allclose): same bits or bust.
        assert resumed.rounds_completed == full.rounds_completed == ROUNDS
        assert resumed.history == full.history
        assert resumed.final == full.final
        assert resumed.communication == full.communication
        assert resumed.privacy == full.privacy

    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "centralized"])
    def test_final_parameters_are_bit_identical(self, trainer, tiny_dataset, tmp_path):
        spec = tiny_spec(trainer)
        full = create_trainer(spec, tiny_dataset).fit()

        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[callback])
        resumed = load_checkpoint(tmp_path / "ck" / "latest").restore(tiny_dataset)
        resumed.fit(rounds=ROUNDS - HALF)

        assert_states_equal(resumed.state_dict(), full.state_dict())

    def test_resume_uses_embedded_dataset_by_default(self, tiny_dataset, tmp_path):
        spec = tiny_spec()
        full = repro.run(spec, tiny_dataset)
        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[callback])
        resumed = repro.run(spec, resume_from=tmp_path / "ck" / "latest")
        assert resumed.final == full.final

    def test_resume_can_extend_a_finished_run(self, tiny_dataset, tmp_path):
        spec = tiny_spec(rounds=HALF)
        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec, tiny_dataset, callbacks=[callback])
        extended = repro.run(
            spec.replace(rounds=ROUNDS), tiny_dataset,
            resume_from=tmp_path / "ck" / "latest",
        )
        full = repro.run(tiny_spec(rounds=ROUNDS), tiny_dataset)
        assert extended.rounds_completed == ROUNDS
        assert extended.history == full.history
        assert extended.final == full.final

    def test_resume_rejects_incompatible_spec(self, tiny_dataset, tmp_path):
        spec = tiny_spec()
        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[callback])
        with pytest.raises(ValueError, match="does not match the checkpoint"):
            repro.run(spec.replace(embedding_dim=4), tiny_dataset,
                      resume_from=tmp_path / "ck" / "latest")

    def test_checkpoint_callback_resumes_history(self, tiny_dataset, tmp_path):
        """A checkpoint taken after a resume carries the *whole* history."""
        spec = tiny_spec()
        first = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[first])
        second = CheckpointEveryK(tmp_path / "ck2", every=1, save_on_fit_end=False)
        resumed = repro.run(spec, tiny_dataset,
                            resume_from=tmp_path / "ck" / "latest",
                            callbacks=[second])
        final_checkpoint = load_checkpoint(tmp_path / "ck2" / "latest")
        assert final_checkpoint.history == resumed.history
        assert [r.round_index for r in final_checkpoint.history] == list(range(ROUNDS))


# ----------------------------------------------------------------------
# Optimizer state across engine schedulers (satellite)
# ----------------------------------------------------------------------
class TestOptimizerStateAcrossSchedulers:
    @pytest.mark.parametrize("scheduler", ["serial", "batched", "multiprocess"])
    def test_reload_then_continue_matches_uninterrupted(
        self, scheduler, tiny_dataset, tmp_path
    ):
        spec = tiny_spec(scheduler=scheduler, workers=2)
        full = repro.run(spec, tiny_dataset)

        callback = CheckpointEveryK(tmp_path / "ck", every=HALF, save_on_fit_end=False)
        repro.run(spec.replace(rounds=HALF), tiny_dataset, callbacks=[callback])
        resumed = repro.run(spec, tiny_dataset, resume_from=tmp_path / "ck" / "latest")
        assert resumed.history == full.history
        assert resumed.final == full.final

    @pytest.mark.parametrize("scheduler", ["serial", "batched", "multiprocess"])
    def test_adam_state_survives_checkpoint_and_pickle(
        self, scheduler, tiny_dataset, tmp_path
    ):
        """Index-keyed Adam state round-trips through the artifact *and*
        through pickle (what the multiprocess scheduler ships)."""
        spec = tiny_spec(scheduler=scheduler, workers=2, rounds=HALF)
        adapter = create_trainer(spec, tiny_dataset).fit()
        save_checkpoint(tmp_path / "ck", adapter)

        reloaded = load_checkpoint(tmp_path / "ck").restore(tiny_dataset)
        user = sorted(adapter.system.clients)[0]
        original = adapter.system.clients[user].optimizer
        restored = reloaded.system.clients[user].optimizer
        assert original.has_state() and restored.has_state()
        assert_states_equal(restored.state_dict(), original.state_dict())

        pickled = pickle.loads(pickle.dumps(restored))
        assert_states_equal(pickled.state_dict(), original.state_dict())


# ----------------------------------------------------------------------
# RunResult / summary round-trips (satellite)
# ----------------------------------------------------------------------
class TestResultRoundTrips:
    def test_round_record_roundtrip(self):
        record = RoundRecord(3, {"client_loss": 0.25, "ndcg": 0.5})
        assert RoundRecord.from_dict(record.to_dict()) == record

    def test_communication_summary_roundtrip(self):
        summary = CommunicationSummary(1024, 16, 3.5)
        assert CommunicationSummary.from_dict(summary.to_dict()) == summary

    def test_privacy_summary_roundtrip(self):
        summary = PrivacySummary(mean_f1=0.31, guess_ratio=0.2, num_clients=25)
        assert PrivacySummary.from_dict(summary.to_dict()) == summary

    def test_run_result_roundtrip_and_save_load(self, tiny_dataset, tmp_path):
        result = repro.run(tiny_spec(rounds=1), tiny_dataset)
        assert RunResult.from_dict(result.to_dict()) == result
        path = result.save(tmp_path / "deep" / "result.json")
        assert RunResult.load(path) == result

    def test_run_result_without_privacy(self, tiny_dataset, tmp_path):
        result = repro.run(tiny_spec("fcf", rounds=1), tiny_dataset)
        assert result.privacy is None
        assert RunResult.from_dict(result.to_dict()) == result


# ----------------------------------------------------------------------
# PTFConfig deprecation contract (satellite: pinned from PR 1)
# ----------------------------------------------------------------------
class TestPTFConfigDeprecationContract:
    def test_construction_emits_deprecation_warning_at_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            PTFConfig(rounds=2)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "PTFConfig is deprecated" in message
        assert "ExperimentSpec" in message  # the migration hint
        # stacklevel must point at the *caller*, so users can find the site.
        assert deprecations[0].filename == __file__

    def test_construction_raises_under_error_filter(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                PTFConfig()


# ----------------------------------------------------------------------
# Torn-read safety of the background load path (serving hot swap)
# ----------------------------------------------------------------------
class TestLoadDuringRewrite:
    """load_checkpoint vs a concurrent save_checkpoint to the same path.

    The gateway's hot swap loads ``latest/`` while a trainer may be
    rewriting it; the loader must never pair one version's manifest with
    another version's arrays, and must ride out the instant between the
    directory renames where the path does not exist.
    """

    def _two_versions(self, tiny_dataset, tmp_path):
        spec = tiny_spec("fcf")
        adapter = create_trainer(spec.replace(rounds=1), tiny_dataset)
        adapter.fit()
        save_checkpoint(tmp_path / "ck", adapter, spec=spec.replace(rounds=1))
        old_text = (tmp_path / "ck" / "manifest.json").read_text(encoding="utf-8")
        adapter.fit(rounds=1)  # train one more round, rewrite in place
        save_checkpoint(tmp_path / "ck", adapter, spec=spec.replace(rounds=2))
        new_text = (tmp_path / "ck" / "manifest.json").read_text(encoding="utf-8")
        assert old_text != new_text
        return old_text, new_text

    def test_stale_manifest_restarts_from_fresh_one(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        from repro.artifacts import checkpoint as checkpoint_module

        old_text, new_text = self._two_versions(tiny_dataset, tmp_path)
        real_read = checkpoint_module._read_manifest_text
        calls = {"n": 0}

        def stale_first(path):
            calls["n"] += 1
            if calls["n"] == 1:  # the read that raced the rewrite
                return old_text
            return real_read(path)

        monkeypatch.setattr(checkpoint_module, "_read_manifest_text", stale_first)
        loaded = load_checkpoint(tmp_path / "ck")
        # The load restarted and returned the *new* artifact consistently.
        assert loaded.rounds_completed == 2
        assert calls["n"] >= 2

    def test_transiently_missing_path_is_retried(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        from repro.artifacts import checkpoint as checkpoint_module

        self._two_versions(tiny_dataset, tmp_path)
        real_read = checkpoint_module._read_manifest_text
        calls = {"n": 0}

        def vanishes_once(path):
            calls["n"] += 1
            if calls["n"] == 2:  # mid-swap: old parked, new not yet renamed
                raise FileNotFoundError("mid-swap window")
            return real_read(path)

        monkeypatch.setattr(checkpoint_module, "_read_manifest_text", vanishes_once)
        assert load_checkpoint(tmp_path / "ck").rounds_completed == 2

    def test_endless_rewrites_raise_instead_of_looping(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        from repro.artifacts import checkpoint as checkpoint_module

        old_text, new_text = self._two_versions(tiny_dataset, tmp_path)
        texts = [old_text, new_text]
        calls = {"n": 0}

        def flapping(path):
            calls["n"] += 1
            return texts[calls["n"] % 2]

        monkeypatch.setattr(checkpoint_module, "_read_manifest_text", flapping)
        with pytest.raises(RuntimeError, match="kept changing"):
            load_checkpoint(tmp_path / "ck")

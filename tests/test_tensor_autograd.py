"""Backward-pass tests: finite-difference checks and hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F
from repro.tensor.gradcheck import numerical_gradient


def _param(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0, 1, size=shape), requires_grad=True)


class TestGradCheck:
    def test_add_mul(self):
        a = _param((3, 4), 1)
        b = _param((3, 4), 2)
        check_gradients(lambda: ((a + b) * a).sum(), [a, b])

    def test_sub_div(self):
        a = _param((2, 3), 3)
        b = Tensor(np.random.default_rng(4).uniform(0.5, 2.0, (2, 3)), requires_grad=True)
        check_gradients(lambda: (a / b - b).sum(), [a, b])

    def test_matmul(self):
        a = _param((3, 4), 5)
        b = _param((4, 2), 6)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_broadcast_add_bias(self):
        x = _param((5, 3), 7)
        bias = _param((3,), 8)
        check_gradients(lambda: ((x + bias) ** 2).sum(), [x, bias])

    def test_sigmoid(self):
        a = _param((4,), 9)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu(self):
        a = Tensor(np.array([0.5, -0.7, 1.3, -2.0]), requires_grad=True)
        check_gradients(lambda: (a.relu() * a).sum(), [a])

    def test_tanh_exp_log(self):
        a = Tensor(np.random.default_rng(10).uniform(0.2, 1.5, (3, 3)), requires_grad=True)
        check_gradients(lambda: (a.tanh() + a.exp() + a.log()).sum(), [a])

    def test_leaky_relu(self):
        a = Tensor(np.array([-1.5, 0.3, 2.0]), requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_mean_and_axis_sum(self):
        a = _param((4, 5), 11)
        check_gradients(lambda: (a.mean(axis=1) * a.sum(axis=1)).sum(), [a])

    def test_reshape_transpose(self):
        a = _param((2, 6), 12)
        check_gradients(lambda: (a.reshape(3, 4).T ** 2).sum(), [a])

    def test_index_rows(self):
        table = _param((6, 3), 13)
        indices = np.array([0, 2, 2, 5])
        check_gradients(lambda: (table.index_rows(indices) ** 2).sum(), [table])

    def test_concat(self):
        a = _param((2, 3), 14)
        b = _param((2, 2), 15)
        check_gradients(lambda: (Tensor.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_sparse_matmul(self):
        rng = np.random.default_rng(16)
        dense = (rng.random((5, 5)) < 0.4) * rng.normal(0, 1, (5, 5))
        adjacency = sp.csr_matrix(dense)
        x = _param((5, 3), 17)
        check_gradients(lambda: (x.sparse_matmul(adjacency) ** 2).sum(), [x])

    def test_bce_loss(self):
        logits = _param((6,), 18)
        targets = np.random.default_rng(19).uniform(0, 1, 6)
        check_gradients(lambda: F.binary_cross_entropy(logits.sigmoid(), targets), [logits])

    def test_bpr_loss(self):
        positive = _param((4,), 20)
        negative = _param((4,), 21)
        check_gradients(lambda: F.bpr_loss(positive, negative), [positive, negative])


class TestBackwardMechanics:
    def test_grad_accumulates_over_backward_calls(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).sum().backward()
        first = a.grad.copy()
        (a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad_clears(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_gradient(self):
        # f(a) = (a*2) + (a*3); df/da = 5.
        a = Tensor([1.0], requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_reused_tensor_in_product(self):
        # f(a) = a * a; df/da = 2a.
        a = Tensor([3.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_gradient_flows_through_chain(self):
        a = Tensor(np.array([[1.0, -2.0]]), requires_grad=True)
        w = Tensor(np.array([[0.5], [0.25]]), requires_grad=True)
        loss = ((a @ w).sigmoid() ** 2).sum()
        loss.backward()
        assert a.grad is not None and w.grad is not None
        assert np.all(np.isfinite(a.grad)) and np.all(np.isfinite(w.grad))

    def test_constant_branch_receives_no_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        constant = Tensor([5.0, 5.0])
        (a * constant).sum().backward()
        assert constant.grad is None

    def test_numerical_gradient_helper_matches_simple_case(self):
        a = Tensor([2.0], requires_grad=True)
        numeric = numerical_gradient(lambda: (a * a).sum(), a)
        # Float32 evaluates the loss to ~1e-7 relative precision, so the
        # finite-difference estimate is correspondingly coarser.
        atol = 1e-5 if a.dtype == np.float64 else 1e-3
        np.testing.assert_allclose(numeric, [4.0], atol=atol)

    def test_check_gradients_detects_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)

        def wrong_loss():
            # Build a loss whose recorded backward is deliberately broken by
            # detaching, so the analytic gradient (zero) disagrees with the
            # numerical one.
            return (a.detach() * a.detach()).sum() + (a * 0.0).sum()

        with pytest.raises(AssertionError):
            check_gradients(wrong_loss, [a])


class TestGradientProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=6))
    def test_sigmoid_gradient_bounded(self, values):
        a = Tensor(np.array(values), requires_grad=True)
        a.sigmoid().sum().backward()
        # d sigmoid/dx = s(1-s) has maximum 0.25.
        assert np.all(np.abs(a.grad) <= 0.25 + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=8))
    def test_sum_gradient_is_ones(self, values):
        a = Tensor(np.array(values), requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(len(values)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    def test_matmul_gradient_shapes(self, rows, cols):
        a = Tensor(np.random.default_rng(0).normal(size=(rows, cols)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(cols, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (rows, cols)
        assert b.grad.shape == (cols, 2)

"""Tests for the upload privacy mechanisms and the Top Guess Attack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClientUpload,
    TopGuessAttack,
    apply_defense,
    laplace_perturbation,
    sample_upload_items,
    swap_positive_scores,
)


class TestSampling:
    def test_beta_controls_positive_count(self, rng):
        positives = np.arange(20)
        negatives = np.arange(20, 100)
        selected_pos, _ = sample_upload_items(positives, negatives, beta=0.5, gamma=1.0, rng=rng)
        assert selected_pos.size == 10

    def test_gamma_controls_negative_ratio(self, rng):
        positives = np.arange(10)
        negatives = np.arange(10, 100)
        selected_pos, selected_neg = sample_upload_items(
            positives, negatives, beta=1.0, gamma=3.0, rng=rng
        )
        assert selected_neg.size == 3 * selected_pos.size

    def test_at_least_one_positive_kept(self, rng):
        selected_pos, _ = sample_upload_items(
            np.arange(5), np.arange(5, 30), beta=0.1, gamma=1.0, rng=rng
        )
        assert selected_pos.size >= 1

    def test_negatives_capped_by_pool(self, rng):
        _, selected_neg = sample_upload_items(
            np.arange(10), np.arange(10, 15), beta=1.0, gamma=4.0, rng=rng
        )
        assert selected_neg.size == 5

    def test_selected_items_come_from_pools(self, rng):
        positives = np.arange(8)
        negatives = np.arange(50, 80)
        selected_pos, selected_neg = sample_upload_items(positives, negatives, 0.5, 2.0, rng)
        assert set(selected_pos.tolist()) <= set(positives.tolist())
        assert set(selected_neg.tolist()) <= set(negatives.tolist())

    def test_invalid_beta_gamma(self, rng):
        with pytest.raises(ValueError):
            sample_upload_items(np.arange(3), np.arange(3, 6), beta=0.0, gamma=1.0, rng=rng)
        with pytest.raises(ValueError):
            sample_upload_items(np.arange(3), np.arange(3, 6), beta=0.5, gamma=0.0, rng=rng)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=1.0, max_value=4.0),
    )
    def test_property_no_duplicates_in_selection(self, beta, gamma):
        rng = np.random.default_rng(0)
        positives = np.arange(15)
        negatives = np.arange(15, 90)
        selected_pos, selected_neg = sample_upload_items(positives, negatives, beta, gamma, rng)
        assert len(set(selected_pos.tolist())) == selected_pos.size
        assert len(set(selected_neg.tolist())) == selected_neg.size


class TestSwapping:
    def test_swapping_preserves_multiset_of_scores(self, rng):
        scores = np.array([0.9, 0.8, 0.7, 0.2, 0.1, 0.05])
        mask = np.array([True, True, True, False, False, False])
        swapped = swap_positive_scores(scores, mask, swap_rate=0.5, rng=rng)
        np.testing.assert_allclose(np.sort(swapped), np.sort(scores))

    def test_swapping_moves_top_positive_scores(self, rng):
        scores = np.array([0.95, 0.9, 0.85, 0.1, 0.1, 0.1])
        mask = np.array([True, True, True, False, False, False])
        swapped = swap_positive_scores(scores, mask, swap_rate=1.0, rng=rng)
        # After a full swap the positives carry the old negative scores.
        assert np.all(swapped[:3] == 0.1)

    def test_zero_rate_is_identity(self, rng):
        scores = np.array([0.9, 0.1])
        mask = np.array([True, False])
        np.testing.assert_array_equal(
            swap_positive_scores(scores, mask, 0.0, rng), scores
        )

    def test_input_not_modified(self, rng):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        original = scores.copy()
        swap_positive_scores(scores, np.array([True, True, False, False]), 0.5, rng)
        np.testing.assert_array_equal(scores, original)

    def test_all_positive_upload_is_left_unchanged(self, rng):
        scores = np.array([0.9, 0.8])
        mask = np.array([True, True])
        np.testing.assert_array_equal(swap_positive_scores(scores, mask, 0.5, rng), scores)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            swap_positive_scores(np.array([0.5]), np.array([True, False]), 0.1, rng)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            swap_positive_scores(np.array([0.5]), np.array([True]), 1.5, rng)


class TestLaplace:
    def test_noise_changes_scores(self, rng):
        scores = np.full(100, 0.5)
        noisy = laplace_perturbation(scores, scale=0.2, rng=rng)
        assert not np.allclose(noisy, scores)

    def test_clipping_to_unit_interval(self, rng):
        noisy = laplace_perturbation(np.array([0.0, 1.0] * 50), scale=1.0, rng=rng)
        assert np.all((noisy >= 0.0) & (noisy <= 1.0))

    def test_zero_scale_is_identity(self, rng):
        scores = np.array([0.3, 0.6])
        np.testing.assert_array_equal(laplace_perturbation(scores, 0.0, rng), scores)

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            laplace_perturbation(np.array([0.5]), -0.1, rng)


class TestApplyDefense:
    def test_none_returns_copy(self, rng):
        scores = np.array([0.4, 0.6])
        result = apply_defense("none", scores, np.array([True, False]), 0.1, 0.2, rng)
        np.testing.assert_array_equal(result, scores)
        assert result is not scores

    def test_sampling_mode_does_not_touch_scores(self, rng):
        scores = np.array([0.4, 0.6])
        result = apply_defense("sampling", scores, np.array([True, False]), 0.1, 0.2, rng)
        np.testing.assert_array_equal(result, scores)

    def test_ldp_adds_noise(self, rng):
        scores = np.full(50, 0.5)
        result = apply_defense("ldp", scores, np.zeros(50, dtype=bool), 0.1, 0.3, rng)
        assert not np.allclose(result, scores)

    def test_swapping_mode_swaps(self, rng):
        scores = np.array([0.99, 0.98, 0.01, 0.02])
        mask = np.array([True, True, False, False])
        result = apply_defense("sampling+swapping", scores, mask, 1.0, 0.0, rng)
        assert set(np.round(result, 6)) == set(np.round(scores, 6))
        assert not np.array_equal(result, scores)


def _upload(scores, positives, items=None, user_id=0):
    items = items if items is not None else np.arange(len(scores))
    return ClientUpload(user_id=user_id, items=items, scores=np.asarray(scores),
                        true_positive_items=np.asarray(positives))


class TestTopGuessAttack:
    def test_attack_succeeds_on_unprotected_upload(self):
        # Positives carry clearly higher scores; guessing the top 20% finds them.
        scores = np.concatenate([np.full(4, 0.95), np.full(16, 0.05)])
        upload = _upload(scores, positives=np.arange(4))
        attack = TopGuessAttack(guess_ratio=0.2)
        assert attack.audit_upload(upload) == pytest.approx(1.0)

    def test_attack_degrades_after_swapping(self, rng):
        scores = np.concatenate([np.full(4, 0.95), np.full(16, 0.05)])
        mask = np.concatenate([np.ones(4, dtype=bool), np.zeros(16, dtype=bool)])
        swapped = swap_positive_scores(scores, mask, swap_rate=0.5, rng=rng)
        attack = TopGuessAttack(guess_ratio=0.2)
        protected = attack.audit_upload(_upload(swapped, positives=np.arange(4)))
        unprotected = attack.audit_upload(_upload(scores, positives=np.arange(4)))
        assert protected < unprotected

    def test_guess_count_follows_ratio(self):
        upload = _upload(np.linspace(0, 1, 10), positives=[9])
        attack = TopGuessAttack(guess_ratio=0.3)
        assert attack.guess_positive_items(upload).size == 3

    def test_empty_upload_handled(self):
        upload = _upload(np.array([]), positives=np.array([]), items=np.array([]))
        report = TopGuessAttack().audit_round([upload])
        assert report.num_clients == 0
        assert report.mean_f1 == 0.0

    def test_audit_round_averages_clients(self):
        good = _upload(np.array([0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]),
                       positives=[0, 1], user_id=0)
        bad = _upload(np.array([0.1, 0.1, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9]),
                      positives=[0, 1], user_id=1)
        report = TopGuessAttack(guess_ratio=0.2).audit_round([good, bad])
        assert report.num_clients == 2
        assert 0.0 < report.mean_f1 < 1.0

    def test_invalid_guess_ratio(self):
        with pytest.raises(ValueError):
            TopGuessAttack(guess_ratio=0.0)

    def test_upload_validates_lengths(self):
        with pytest.raises(ValueError):
            ClientUpload(0, np.array([1, 2]), np.array([0.5]), np.array([1]))

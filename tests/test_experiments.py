"""Tests for the unified experiment API (spec, registry, callbacks, run)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import PTFConfig, PTFFedRec, ensure_spec
from repro.experiments import (
    Callback,
    EarlyStopping,
    EvalEveryK,
    ExperimentSpec,
    ProgressLogger,
    available_trainers,
    create_trainer,
    get_trainer,
    register_trainer,
    run,
)

ALL_TRAINERS = ("centralized", "fcf", "fedmf", "metamf", "ptf")


def tiny_spec(trainer: str = "ptf", **overrides) -> ExperimentSpec:
    """A spec small enough for sub-second end-to-end runs."""
    defaults = dict(
        rounds=2,
        client_local_epochs=1,
        server_epochs=1,
        client_batch_size=32,
        server_batch_size=64,
        learning_rate=0.01,
        embedding_dim=8,
        client_mlp_layers=(16, 8),
        server_num_layers=2,
        alpha=8,
        k=10,
        max_users=8,
    )
    defaults.update(overrides)
    return ExperimentSpec.from_flat(trainer=trainer, seed=11, **defaults)


@pytest.fixture
def micro_dataset(rngs):
    from repro.data import debug_dataset

    return debug_dataset(rngs.spawn("micro"), num_users=12, num_items=30,
                         num_interactions=220)


# ----------------------------------------------------------------------
# Spec construction, round-trips and validation
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_dict_round_trip_per_trainer(self, trainer):
        spec = tiny_spec(trainer)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_json_round_trip_per_trainer(self, trainer):
        spec = tiny_spec(trainer)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_non_defaults(self):
        spec = tiny_spec(
            "ptf",
            defense="ldp",
            ldp_scale=0.7,
            beta_range=(0.2, 0.9),
            dispersal_mode="random",
            mu=0.3,
            client_fraction=0.5,
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.privacy.defense == "ldp"
        assert restored.privacy.beta_range == (0.2, 0.9)
        assert restored.dispersal.mode == "random"
        assert restored.protocol.client_fraction == 0.5
        assert restored == spec

    def test_sections_accept_mappings(self):
        spec = ExperimentSpec(trainer="ptf", model={"embedding_dim": 4},
                              protocol={"rounds": 3})
        assert spec.model.embedding_dim == 4
        assert spec.protocol.rounds == 3
        # untouched sections keep their defaults
        assert spec.dispersal.alpha == 30

    def test_replace_returns_modified_copy(self):
        spec = tiny_spec("ptf")
        swept = spec.replace(alpha=50, trainer="fcf")
        assert swept.dispersal.alpha == 50
        assert swept.trainer == "fcf"
        assert spec.dispersal.alpha == 8  # original untouched

    def test_tuples_survive_list_input(self):
        spec = ExperimentSpec(trainer="ptf", model={"client_mlp_layers": [16, 8]})
        assert spec.model.client_mlp_layers == (16, 8)


class TestSpecValidation:
    def test_unknown_trainer_rejected(self):
        with pytest.raises(ValueError, match="unknown trainer"):
            ExperimentSpec(trainer="telepathy")

    def test_unknown_top_level_field_rejected(self):
        data = tiny_spec("ptf").to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown ExperimentSpec fields"):
            ExperimentSpec.from_dict(data)

    def test_unknown_section_field_rejected(self):
        data = tiny_spec("ptf").to_dict()
        data["privacy"]["surprise"] = 1
        with pytest.raises(ValueError, match="unknown PrivacySpec fields"):
            ExperimentSpec.from_dict(data)

    def test_unknown_flat_field_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment field"):
            ExperimentSpec.from_flat(trainer="ptf", warp_speed=9)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"rounds": 0},
            {"client_fraction": 0.0},
            {"negative_ratio": 0},
            {"learning_rate": 0.0},
            {"defense": "quantum"},
            {"beta_range": (0.0, 1.0)},
            {"gamma_range": (2.0, 1.0)},
            {"swap_rate": -0.1},
            {"ldp_scale": -1.0},
            {"audit_guess_ratio": 0.0},
            {"alpha": -1},
            {"mu": 1.5},
            {"dispersal_mode": "telepathy"},
            {"client_local_epochs": -1},
            {"server_epochs": -1},
            {"embedding_dim": 0},
            {"k": 0},
            {"max_users": 0},
            {"every": -1},
        ],
    )
    def test_invalid_section_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            ExperimentSpec.from_flat(trainer="ptf", **overrides)


# ----------------------------------------------------------------------
# PTFConfig backward-compat shim
# ----------------------------------------------------------------------
class TestPTFConfigShim:
    def test_construction_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="PTFConfig is deprecated"):
            PTFConfig()

    def test_to_spec_preserves_every_field(self):
        with pytest.warns(DeprecationWarning):
            config = PTFConfig(
                rounds=3, alpha=12, mu=0.25, dispersal_mode="random+hard",
                defense="sampling", swap_rate=0.2, embedding_dim=8,
                client_mlp_layers=(16, 8), client_fraction=0.5, seed=99,
            )
        spec = config.to_spec()
        assert spec.trainer == "ptf"
        assert spec.seed == 99
        assert spec.protocol.rounds == 3
        assert spec.protocol.client_fraction == 0.5
        assert spec.dispersal.alpha == 12
        assert spec.dispersal.mu == 0.25
        assert spec.dispersal.mode == "random+hard"
        assert spec.privacy.defense == "sampling"
        assert spec.privacy.swap_rate == 0.2
        assert spec.model.embedding_dim == 8
        assert spec.model.client_mlp_layers == (16, 8)

    def test_invalid_values_still_raise_value_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                PTFConfig(dispersal_mode="telepathy")

    def test_zero_epoch_ablations_still_accepted(self, micro_dataset):
        # 1.0 allowed skipping a training leg entirely; the shim (and the
        # spec) must keep accepting it — the loop just runs zero times.
        with pytest.warns(DeprecationWarning):
            config = PTFConfig(rounds=1, client_local_epochs=1, server_epochs=0,
                               embedding_dim=8, client_mlp_layers=(16, 8),
                               server_num_layers=2, alpha=5)
        system = PTFFedRec(micro_dataset, config).fit()
        assert system.round_summaries[0].server_loss == 0.0

    def test_ptffedrec_accepts_legacy_config(self, micro_dataset):
        with pytest.warns(DeprecationWarning):
            config = PTFConfig(rounds=1, client_local_epochs=1, server_epochs=1,
                               embedding_dim=8, client_mlp_layers=(16, 8),
                               server_num_layers=2, alpha=5)
        system = PTFFedRec(micro_dataset, config)
        system.fit()
        assert len(system.round_summaries) == 1

    def test_legacy_and_spec_runs_are_identical(self, micro_dataset):
        with pytest.warns(DeprecationWarning):
            config = PTFConfig(rounds=1, client_local_epochs=1, server_epochs=1,
                               embedding_dim=8, client_mlp_layers=(16, 8),
                               server_num_layers=2, alpha=5, seed=7)
        legacy = PTFFedRec(micro_dataset, config).fit()
        modern = PTFFedRec(micro_dataset, config.to_spec()).fit()
        assert legacy.round_summaries == modern.round_summaries

    def test_legacy_config_attribute_still_readable(self, micro_dataset):
        # Pre-1.1 code read flat fields off system.config; the property now
        # reconstructs a PTFConfig snapshot from the spec (and warns).
        system = PTFFedRec(micro_dataset, tiny_spec("ptf", rounds=3))
        with pytest.warns(DeprecationWarning, match=".config is deprecated"):
            config = system.config
        assert config.rounds == 3
        assert config.alpha == 8
        assert config.dispersal_mode == system.spec.dispersal.mode
        with pytest.warns(DeprecationWarning):
            assert system.server.config.embedding_dim == 8
            assert next(iter(system.clients.values())).config.client_model == "neumf"

    def test_ensure_spec_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_spec({"rounds": 3})

    def test_ensure_spec_none_gives_paper_defaults(self):
        spec = ensure_spec(None)
        assert spec.trainer == "ptf"
        assert spec.dispersal.alpha == 30
        assert spec.protocol.rounds == 20


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_paper_trainers_registered(self):
        assert set(ALL_TRAINERS) <= set(available_trainers())

    def test_unknown_trainer_lookup_raises(self):
        with pytest.raises(KeyError, match="registered trainers"):
            get_trainer("telepathy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_trainer("ptf")(object)

    def test_replace_allows_override_and_restore(self):
        original = get_trainer("ptf")
        sentinel = object()
        register_trainer("ptf", replace=True)(sentinel)
        try:
            assert get_trainer("ptf") is sentinel
        finally:
            register_trainer("ptf", replace=True)(original)


# ----------------------------------------------------------------------
# repro.run: one entry point for every paradigm
# ----------------------------------------------------------------------
class TestRun:
    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_run_executes_every_trainer_with_uniform_schema(self, trainer, micro_dataset):
        result = run(tiny_spec(trainer), micro_dataset)
        assert result.trainer == trainer
        assert result.rounds_completed == 2
        assert len(result.history) == 2
        assert all(np.isfinite(list(record.metrics.values())).all()
                   for record in result.history)
        assert 0.0 <= result.final.recall <= 1.0
        assert result.final.k == 10
        data = result.to_dict()
        assert set(data) == {
            "trainer", "spec", "rounds_completed", "history", "final",
            "communication", "privacy", "duration_seconds",
        }
        assert data["spec"] == tiny_spec(trainer).to_dict()

    def test_run_accepts_plain_dict_spec(self, micro_dataset):
        result = run(tiny_spec("fcf").to_dict(), micro_dataset)
        assert result.trainer == "fcf"

    def test_run_without_dataset_uses_synthetic_default(self):
        result = run(tiny_spec("centralized"))
        assert result.rounds_completed == 2
        assert result.final.num_users_evaluated > 0

    def test_only_federated_trainers_move_bytes(self, micro_dataset):
        central = run(tiny_spec("centralized"), micro_dataset)
        fcf = run(tiny_spec("fcf"), micro_dataset)
        ptf = run(tiny_spec("ptf"), micro_dataset)
        assert central.communication.total_bytes == 0
        assert fcf.communication.total_bytes > 0
        assert ptf.communication.total_bytes > 0
        # Headline claim: PTF moves far fewer bytes than FCF.
        assert fcf.communication.total_bytes > 5 * ptf.communication.total_bytes

    def test_privacy_report_only_for_ptf(self, micro_dataset):
        assert run(tiny_spec("ptf"), micro_dataset).privacy is not None
        assert run(tiny_spec("fcf"), micro_dataset).privacy is None
        assert run(tiny_spec("centralized"), micro_dataset).privacy is None

    def test_audit_can_be_disabled(self, micro_dataset):
        result = run(tiny_spec("ptf", audit_privacy=False), micro_dataset)
        assert result.privacy is None

    def test_eval_every_round_lands_in_history(self, micro_dataset):
        result = run(tiny_spec("ptf", every=1), micro_dataset)
        ndcg_series = result.metric_series("ndcg")
        assert len(ndcg_series) == result.rounds_completed
        assert all(0.0 <= value <= 1.0 for value in ndcg_series)

    def test_final_reuses_last_in_training_eval(self, micro_dataset):
        # With every=1 the last round's EvalEveryK result IS the final one;
        # the runner must not pay for a second full-ranking pass.
        result = run(tiny_spec("ptf", every=1), micro_dataset)
        assert result.final.ndcg == result.metric_series("ndcg")[-1]
        assert result.final.recall == result.metric_series("recall")[-1]

    def test_run_is_deterministic_given_seed(self, micro_dataset):
        first = run(tiny_spec("ptf"), micro_dataset)
        second = run(tiny_spec("ptf"), micro_dataset)
        assert first.final == second.final
        assert [r.metrics for r in first.history] == [r.metrics for r in second.history]


# ----------------------------------------------------------------------
# Callbacks
# ----------------------------------------------------------------------
class TestCallbacks:
    def test_hooks_fire_in_order(self, micro_dataset):
        events = []

        class Recorder(Callback):
            def on_fit_start(self, trainer):
                events.append("fit_start")

            def on_round_start(self, trainer, round_index):
                events.append(f"start{round_index}")

            def on_round_end(self, trainer, round_index, logs):
                events.append(f"end{round_index}")

            def on_fit_end(self, trainer):
                events.append("fit_end")

        run(tiny_spec("ptf"), micro_dataset, callbacks=[Recorder()])
        assert events == ["fit_start", "start0", "end0", "start1", "end1", "fit_end"]

    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_early_stopping_wired_into_every_trainer(self, trainer, micro_dataset):
        class StopImmediately(Callback):
            def on_round_end(self, trainer, round_index, logs):
                self.stop_training = True

        result = run(tiny_spec(trainer, rounds=5), micro_dataset,
                     callbacks=[StopImmediately()])
        assert result.rounds_completed == 1

    def test_early_stopping_on_ndcg_plateau(self, micro_dataset):
        stopper = EarlyStopping(metric="ndcg", patience=1)
        result = run(tiny_spec("ptf", rounds=6, every=1), micro_dataset,
                     callbacks=[stopper])
        if stopper.stopped_round is not None:
            assert result.rounds_completed == stopper.stopped_round + 1
            assert result.rounds_completed < 6

    def test_early_stopping_ignores_rounds_without_metric(self):
        stopper = EarlyStopping(metric="ndcg", patience=2)
        stopper.on_fit_start(None)
        stopper.on_round_end(None, 0, {"loss": 1.0})  # no ndcg -> ignored
        stopper.on_round_end(None, 1, {"ndcg": 0.5})
        stopper.on_round_end(None, 2, {"ndcg": 0.4})
        stopper.on_round_end(None, 3, {"ndcg": 0.4})
        assert stopper.stop_training

    def test_eval_every_k_cadence(self, micro_dataset):
        evaluator = EvalEveryK(every=2, k=5, max_users=5)
        run(tiny_spec("centralized", rounds=4), micro_dataset, callbacks=[evaluator])
        assert [index for index, _ in evaluator.history] == [1, 3]

    def test_progress_logger_writes_lines(self, micro_dataset):
        lines = []
        run(tiny_spec("fcf"), micro_dataset,
            callbacks=[ProgressLogger(print_fn=lines.append)])
        assert sum("round" in line for line in lines) == 2

    def test_legacy_fit_paths_accept_callbacks(self, micro_dataset):
        # The hooks are wired into the trainers themselves, not only run().
        seen = []

        class Ticker(Callback):
            def on_round_end(self, trainer, round_index, logs):
                seen.append(round_index)

        PTFFedRec(micro_dataset, tiny_spec("ptf")).fit(rounds=1, callbacks=[Ticker()])
        assert seen == [0]


# ----------------------------------------------------------------------
# Vectorized dispersal (perf refactor regression test)
# ----------------------------------------------------------------------
class TestDispersalVectorization:
    def test_candidates_match_list_comprehension_reference(self, micro_dataset):
        from repro.core.client import ClientUpload
        from repro.core.server import PTFServer
        from repro.utils import RngFactory

        spec = tiny_spec("ptf", alpha=10)
        server = PTFServer(micro_dataset.num_users, micro_dataset.num_items,
                           spec, RngFactory(3))
        rng = np.random.default_rng(0)
        items = rng.choice(micro_dataset.num_items, size=9, replace=False)
        scores = rng.uniform(0, 1, size=9)
        upload = ClientUpload(0, items, scores, items[scores > 0.5])
        server.train_on_uploads([upload], round_index=0)
        dispersal = server.build_dispersal(upload, round_index=0)

        excluded = set(int(item) for item in upload.items)
        reference = [i for i in range(micro_dataset.num_items) if i not in excluded]
        assert set(dispersal.items.tolist()) <= set(reference)
        assert 0 < dispersal.num_records <= 10

"""Tests for the centralized training baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.centralized import CentralizedConfig, CentralizedTrainer
from repro.models import LightGCN, MatrixFactorization, NGCF, NeuMF
from repro.utils import RngFactory


def _config(**overrides):
    defaults = dict(epochs=4, batch_size=256, learning_rate=0.01, seed=0)
    defaults.update(overrides)
    return CentralizedConfig(**defaults)


class TestCentralizedConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"epochs": 0}, {"batch_size": 0}, {"negative_ratio": 0}]
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CentralizedConfig(**kwargs)


class TestCentralizedTrainer:
    def test_loss_decreases(self, tiny_dataset, rngs):
        model = NeuMF(tiny_dataset.num_users, tiny_dataset.num_items,
                      embedding_dim=8, mlp_layers=(16, 8), rng=rngs.spawn("m"))
        trainer = CentralizedTrainer(model, tiny_dataset, _config(epochs=5))
        trainer.fit()
        assert trainer.loss_history[-1] < trainer.loss_history[0]

    def test_graph_model_receives_training_graph(self, tiny_dataset, rngs):
        model = LightGCN(tiny_dataset.num_users, tiny_dataset.num_items,
                         embedding_dim=8, num_layers=2, rng=rngs.spawn("g"))
        CentralizedTrainer(model, tiny_dataset, _config(epochs=1))
        assert model.adjacency.nnz == 2 * tiny_dataset.num_train_interactions

    def test_training_beats_untrained_model(self, tiny_dataset, rngs):
        untrained = MatrixFactorization(tiny_dataset.num_users, tiny_dataset.num_items,
                                        embedding_dim=8, rng=RngFactory(5).spawn("u"))
        trained = MatrixFactorization(tiny_dataset.num_users, tiny_dataset.num_items,
                                      embedding_dim=8, rng=RngFactory(5).spawn("u"))
        trainer = CentralizedTrainer(trained, tiny_dataset, _config(epochs=8))
        trainer.fit()
        from repro.eval import RankingEvaluator

        evaluator = RankingEvaluator(tiny_dataset, k=10)
        assert evaluator.evaluate(trained).ndcg >= evaluator.evaluate(untrained).ndcg

    def test_fit_explicit_epoch_override(self, tiny_dataset, rngs):
        model = MatrixFactorization(tiny_dataset.num_users, tiny_dataset.num_items,
                                    embedding_dim=8, rng=rngs.spawn("m2"))
        trainer = CentralizedTrainer(model, tiny_dataset, _config(epochs=10))
        trainer.fit(epochs=2)
        assert len(trainer.loss_history) == 2

    def test_evaluate_returns_result(self, tiny_dataset, rngs):
        model = MatrixFactorization(tiny_dataset.num_users, tiny_dataset.num_items,
                                    embedding_dim=8, rng=rngs.spawn("m3"))
        trainer = CentralizedTrainer(model, tiny_dataset, _config(epochs=1))
        trainer.fit()
        result = trainer.evaluate(k=10, max_users=5)
        assert result.num_users_evaluated <= 5
        assert 0.0 <= result.ndcg <= 1.0

    def test_deterministic_given_seed(self, tiny_dataset):
        def run():
            model = MatrixFactorization(tiny_dataset.num_users, tiny_dataset.num_items,
                                        embedding_dim=8, rng=RngFactory(9).spawn("model"))
            trainer = CentralizedTrainer(model, tiny_dataset, _config(epochs=2, seed=9))
            trainer.fit()
            return trainer.loss_history

        assert run() == run()

    @pytest.mark.parametrize("model_class", [NeuMF, NGCF, LightGCN])
    def test_all_paper_models_train(self, tiny_dataset, rngs, model_class):
        kwargs = {"embedding_dim": 8}
        if model_class is NeuMF:
            kwargs["mlp_layers"] = (16, 8)
        else:
            kwargs["num_layers"] = 2
        model = model_class(tiny_dataset.num_users, tiny_dataset.num_items,
                            rng=rngs.spawn(model_class.__name__), **kwargs)
        trainer = CentralizedTrainer(model, tiny_dataset, _config(epochs=2))
        trainer.fit()
        assert np.isfinite(trainer.loss_history).all()

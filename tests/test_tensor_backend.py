"""Tests for the pluggable tensor backends and the precision policy.

Covers the backend registry, the context-local activation model, the
thread-safety of the grad-recording flag, the tensor aliasing contract,
the fused optimizer kernels, the full-op-set gradient checks under both
shipped backends, and the spec/checkpoint plumbing that makes the policy
end-to-end.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.artifacts import load_checkpoint, save_checkpoint
from repro.experiments.registry import get_trainer
from repro.experiments.spec import ExperimentSpec
from repro.optim import SGD, Adam
from repro.tensor import (
    Numpy32Backend,
    NumpyBackend,
    Tensor,
    active_backend,
    available_backends,
    check_gradients,
    get_backend,
    is_grad_enabled,
    no_grad,
    register_backend,
    use_backend,
)
from repro.tensor import functional as F
from repro.utils.rng import RngFactory

BACKENDS = ("numpy", "numpy32")


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(trainer="ptf", seed=11, rounds=2, embedding_dim=8,
                client_mlp_layers=(16, 8), alpha=10, client_local_epochs=1,
                server_epochs=1)
    base.update(overrides)
    return ExperimentSpec.from_flat(**base)


def small_dataset():
    from repro.data import debug_dataset

    return debug_dataset(RngFactory(5).spawn("backend-data"), num_users=15,
                         num_items=30, num_interactions=250)


# ----------------------------------------------------------------------
# Registry and activation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_shipped_backends_registered(self):
        assert "numpy" in available_backends()
        assert "numpy32" in available_backends()
        assert get_backend("numpy").dtype == np.float64
        assert get_backend("numpy32").dtype == np.float32
        assert get_backend("numpy32").inplace

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown tensor backend"):
            get_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_get_backend_passthrough(self):
        backend = get_backend("numpy32")
        assert get_backend(backend) is backend
        assert get_backend(None) is active_backend()

    def test_use_backend_nests_and_restores(self):
        session_default = active_backend().name
        with use_backend("numpy32"):
            assert active_backend().name == "numpy32"
            with use_backend("numpy"):
                assert active_backend().name == "numpy"
            assert active_backend().name == "numpy32"
        assert active_backend().name == session_default

    def test_use_backend_none_is_passthrough(self):
        with use_backend("numpy32"):
            with use_backend(None) as backend:
                assert backend.name == "numpy32"

    def test_backend_is_context_local_across_threads(self):
        session_default = active_backend().name
        other = "numpy32" if session_default == "numpy" else "numpy"
        observed = {}

        def worker():
            observed["name"] = active_backend().name

        with use_backend(other):
            # A thread started outside the context sees the session default.
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert observed["name"] == session_default


# ----------------------------------------------------------------------
# Grad flag: context-local no_grad (regression for the global flag)
# ----------------------------------------------------------------------
class TestNoGradThreading:
    def test_no_grad_does_not_leak_into_other_threads(self):
        entered = threading.Event()
        release = threading.Event()
        results = {}

        def inference():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)

        def training():
            entered.wait(timeout=5.0)
            # The inference thread is inside no_grad() right now; this
            # thread must still record gradients.
            results["enabled"] = is_grad_enabled()
            x = Tensor(np.ones(3), requires_grad=True)
            (x * x).sum().backward()
            results["grad"] = x.grad is not None
            release.set()

        t1 = threading.Thread(target=inference)
        t2 = threading.Thread(target=training)
        t1.start(); t2.start()
        t1.join(timeout=10.0); t2.join(timeout=10.0)
        assert results["enabled"] is True
        assert results["grad"] is True

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_skips_graph_bookkeeping_entirely(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        with no_grad():
            out = ((x * 2.0) + 1.0).sigmoid().sum()
        assert out._backward is None
        assert out._parents == ()
        with pytest.raises(RuntimeError):
            out.backward()


# ----------------------------------------------------------------------
# Aliasing contract
# ----------------------------------------------------------------------
class TestAliasing:
    def test_matching_dtype_array_is_shared(self):
        raw = np.ones(4, dtype=active_backend().dtype)
        tensor = Tensor(raw)
        assert tensor.data is raw
        tensor.data[0] = 7.0
        assert raw[0] == 7.0  # mutation visible through the caller's alias
        raw[1] = -3.0
        assert tensor.data[1] == -3.0

    def test_copy_knob_isolates(self):
        raw = np.ones(4, dtype=active_backend().dtype)
        tensor = Tensor(raw, copy=True)
        assert tensor.data is not raw
        tensor.data[0] = 7.0
        assert raw[0] == 1.0

    def test_dtype_mismatch_always_copies(self):
        target = active_backend().dtype
        foreign = np.float32 if target == np.float64 else np.float64
        raw = np.ones(4, dtype=foreign)
        tensor = Tensor(raw)  # the constructor normalizes to the backend dtype
        assert tensor.data.dtype == target
        tensor.data[0] = 9.0
        assert raw[0] == 1.0

    def test_detach_shares_storage_and_dtype(self):
        with use_backend("numpy32"):
            tensor = Tensor(np.ones(3), requires_grad=True)
        detached = tensor.detach()
        assert detached.data is tensor.data
        assert detached.dtype == np.float32  # no renormalization on detach


# ----------------------------------------------------------------------
# Precision policy
# ----------------------------------------------------------------------
class TestPrecisionPolicy:
    def test_construction_follows_active_backend(self):
        assert Tensor([1.0, 2.0]).dtype == active_backend().dtype
        with use_backend("numpy32"):
            assert Tensor([1.0, 2.0]).dtype == np.float32
            assert Tensor.zeros((2, 2)).dtype == np.float32
            assert Tensor.randn((3,), np.random.default_rng(0)).dtype == np.float32
        with use_backend("numpy"):
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_ops_preserve_dtype_outside_context(self):
        with use_backend("numpy32"):
            a = Tensor(np.ones((2, 3)), requires_grad=True)
            b = Tensor(np.ones((3, 2)))
        # No backend active here: results must stay float32 regardless.
        out = (a.matmul(b) * 2.0).sigmoid().sum()
        assert out.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float32

    def test_module_parameters_follow_backend(self):
        from repro.nn import Embedding, Linear

        rng = np.random.default_rng(3)
        with use_backend("numpy32"):
            linear = Linear(4, 2, rng=rng)
            table = Embedding(5, 4, rng=rng)
        assert linear.weight.dtype == np.float32
        assert linear.bias.dtype == np.float32
        assert table.weight.dtype == np.float32
        assert table.update_counts.dtype == np.int64  # counters stay integral

    def test_graph_adjacency_follows_model_dtype(self):
        from repro.models.ngcf import NGCF

        with use_backend("numpy32"):
            model = NGCF(3, 4, embedding_dim=4, num_layers=1,
                         rng=np.random.default_rng(0),
                         interaction_pairs=[(0, 1), (1, 2)])
        assert model.adjacency.dtype == np.float32
        # Rebuilding the graph outside the context keeps the model's dtype.
        model.set_interaction_graph([(0, 0), (2, 3)])
        assert model.adjacency.dtype == np.float32
        assert model.propagate().dtype == np.float32


# ----------------------------------------------------------------------
# Fused optimizer kernels
# ----------------------------------------------------------------------
class TestFusedKernels:
    @pytest.mark.parametrize("momentum,weight_decay", [
        (0.0, 0.0), (0.9, 0.0), (0.0, 0.01), (0.9, 0.01),
    ])
    def test_fused_sgd_matches_reference_bitwise(self, momentum, weight_decay):
        rng = np.random.default_rng(0)
        reference, fused = NumpyBackend(), Numpy32Backend()
        data_a = rng.normal(size=(6, 4))
        data_b = data_a.copy()
        velocity_a = velocity_b = None
        scratch = (np.empty_like(data_b), np.empty_like(data_b))
        for _ in range(5):
            grad = rng.normal(size=data_a.shape)
            data_a, velocity_a = reference.sgd_update(
                data_a, grad, 0.05, momentum=momentum,
                weight_decay=weight_decay, velocity=velocity_a)
            data_b, velocity_b = fused.sgd_update(
                data_b, grad.copy(), 0.05, momentum=momentum,
                weight_decay=weight_decay, velocity=velocity_b, scratch=scratch)
            np.testing.assert_array_equal(data_a, data_b)

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_fused_adam_matches_reference_bitwise(self, weight_decay):
        rng = np.random.default_rng(1)
        reference, fused = NumpyBackend(), Numpy32Backend()
        data_a = rng.normal(size=(5, 3))
        data_b = data_a.copy()
        first_a = np.zeros_like(data_a); second_a = np.zeros_like(data_a)
        first_b = np.zeros_like(data_b); second_b = np.zeros_like(data_b)
        scratch = (np.empty_like(data_b), np.empty_like(data_b))
        for step in range(1, 6):
            grad = rng.normal(size=data_a.shape)
            data_a, first_a, second_a = reference.adam_update(
                data_a, grad, step, first_a, second_a,
                0.001, 0.9, 0.999, 1e-8, weight_decay=weight_decay)
            data_b, first_b, second_b = fused.adam_update(
                data_b, grad.copy(), step, first_b, second_b,
                0.001, 0.9, 0.999, 1e-8, weight_decay=weight_decay,
                scratch=scratch)
            np.testing.assert_array_equal(data_a, data_b)
            np.testing.assert_array_equal(first_a, first_b)
            np.testing.assert_array_equal(second_a, second_b)

    def test_fused_kernels_do_not_mutate_grad(self):
        fused = Numpy32Backend()
        data = np.ones((3,), dtype=np.float32)
        grad = np.full((3,), 0.5, dtype=np.float32)
        grad_before = grad.copy()
        fused.sgd_update(data, grad, 0.1, weight_decay=0.01)
        np.testing.assert_array_equal(grad, grad_before)
        first = np.zeros_like(data); second = np.zeros_like(data)
        fused.adam_update(data, grad, 1, first, second, 0.001, 0.9, 0.999,
                          1e-8, weight_decay=0.01)
        np.testing.assert_array_equal(grad, grad_before)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_optimizer_state_dtype_follows_backend(self, backend):
        with use_backend(backend):
            parameter = Tensor(np.ones((4, 2)), requires_grad=True)
            parameter.grad = np.full((4, 2), 0.1, dtype=parameter.dtype)
            optimizer = Adam([parameter])
            optimizer.step()
        expected = get_backend(backend).dtype
        assert parameter.data.dtype == expected
        state = optimizer.state_dict()
        assert state["first_moment"][0].dtype == expected

    def test_optimizer_captures_construction_backend(self):
        with use_backend("numpy32"):
            parameter = Tensor(np.ones(3), requires_grad=True)
            optimizer = SGD([parameter], lr=0.1)
        assert optimizer.backend.name == "numpy32"
        # Stepping outside the context still uses the fused kernels.
        parameter.grad = np.full(3, 0.5, dtype=np.float32)
        before = parameter.data
        optimizer.step()
        assert parameter.data is before  # in-place update
        assert parameter.data.dtype == np.float32


# ----------------------------------------------------------------------
# Gradient checks: the full op set under both backends (dtype-aware
# tolerances; inputs keep a margin from relu/clip kinks)
# ----------------------------------------------------------------------
def _values(backend, shape, rng, low=0.2, high=1.7):
    """Smooth, kink-free values with random signs in backend dtype."""
    magnitude = rng.uniform(low, high, size=shape)
    signs = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return get_backend(backend).asarray(magnitude * signs)


OPS = {
    "add": lambda a, b: (a + b).sum(),
    "sub": lambda a, b: (a - b).sum(),
    "mul": lambda a, b: (a * b).sum(),
    "div": lambda a, b: (a / b).sum(),
    "neg_pow": lambda a, b: ((-a) ** 2.0).sum(),
    "matmul": lambda a, b: a.matmul(b.T).sum(),
    "transpose": lambda a, b: (a.T * b.T).sum(),
    "swapaxes": lambda a, b: (a.swapaxes(0, 1) * b.swapaxes(0, 1)).sum(),
    "reshape": lambda a, b: (a.reshape(-1) * b.reshape(-1)).sum(),
    "sum_axis": lambda a, b: (a.sum(axis=1) * b.sum(axis=1)).sum(),
    "mean": lambda a, b: (a.mean(axis=1) * b.mean(axis=1)).sum(),
    "exp": lambda a, b: (a * 0.3).exp().sum(),
    "log": lambda a, b: ((a * a) + 0.5).log().sum(),
    "sigmoid": lambda a, b: a.sigmoid().sum(),
    "tanh": lambda a, b: a.tanh().sum(),
    "relu": lambda a, b: a.relu().sum(),
    "leaky_relu": lambda a, b: a.leaky_relu(0.2).sum(),
    "clip": lambda a, b: a.clip(-1.2, 1.2).sum(),
    "index_rows": lambda a, b: a.index_rows(np.array([0, 2, 2])).sum(),
    "getitem": lambda a, b: a[np.array([1, 1, 0])].sum(),
    "concat": lambda a, b: Tensor.concat([a, b], axis=1).sigmoid().sum(),
    "stack": lambda a, b: Tensor.stack([a, b], axis=0).tanh().sum(),
}


class TestGradCheckBothBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_op_gradients(self, backend, op):
        rng = np.random.default_rng(hash(op) % (2 ** 32))
        with use_backend(backend):
            a = Tensor(_values(backend, (3, 4), rng), requires_grad=True)
            b = Tensor(_values(backend, (3, 4), rng), requires_grad=True)
            assert check_gradients(lambda: OPS[op](a, b), [a, b])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_contiguous_parameter_gradients(self, backend):
        # The zero-copy constructor can wrap views; finite differences must
        # perturb the parameter's real storage, not a ravel() copy.
        rng = np.random.default_rng(47)
        with use_backend(backend):
            base = _values(backend, (4, 3), rng)
            a = Tensor(base.T, requires_grad=True)  # non-contiguous view
            assert not a.data.flags["C_CONTIGUOUS"]
            assert check_gradients(lambda: (a * a).sum(), [a])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_matmul_gradients(self, backend):
        rng = np.random.default_rng(17)
        with use_backend(backend):
            a = Tensor(_values(backend, (2, 3, 4), rng), requires_grad=True)
            b = Tensor(_values(backend, (2, 4, 2), rng), requires_grad=True)
            assert check_gradients(lambda: a.matmul(b).sum(), [a, b])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sparse_matmul_gradients(self, backend):
        rng = np.random.default_rng(23)
        matrix = sp.random(5, 5, density=0.5, random_state=7, format="csr")
        with use_backend(backend):
            matrix = matrix.astype(active_backend().dtype)
            a = Tensor(_values(backend, (5, 3), rng), requires_grad=True)
            assert check_gradients(lambda: a.sparse_matmul(matrix).sum(), [a])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bce_gradients(self, backend):
        rng = np.random.default_rng(31)
        with use_backend(backend):
            logits = Tensor(_values(backend, (6,), rng), requires_grad=True)
            targets = get_backend(backend).asarray(rng.uniform(0.1, 0.9, size=6))
            assert check_gradients(
                lambda: F.binary_cross_entropy(logits.sigmoid(), targets),
                [logits],
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bce_per_row_gradients(self, backend):
        rng = np.random.default_rng(37)
        with use_backend(backend):
            logits = Tensor(_values(backend, (2, 5), rng), requires_grad=True)
            targets = get_backend(backend).asarray(
                rng.uniform(0.1, 0.9, size=(2, 5))
            )
            assert check_gradients(
                lambda: F.binary_cross_entropy_per_row(
                    logits.sigmoid(), targets
                ).sum(),
                [logits],
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bpr_gradients(self, backend):
        rng = np.random.default_rng(41)
        with use_backend(backend):
            positive = Tensor(_values(backend, (5,), rng), requires_grad=True)
            negative = Tensor(_values(backend, (5,), rng), requires_grad=True)
            assert check_gradients(
                lambda: F.bpr_loss(positive, negative), [positive, negative]
            )

    def test_concat_stack_raw_operands_follow_sibling_dtype(self):
        with use_backend("numpy32"):
            anchor = Tensor(np.ones((2, 3)), requires_grad=True)
        # Raw arrays/lists joined with a float32 tensor outside any backend
        # context must not promote the result to the ambient float64.
        raw = np.zeros((2, 3))
        assert Tensor.concat([anchor, raw], axis=1).dtype == np.float32
        assert Tensor.stack([anchor, raw], axis=0).dtype == np.float32

    def test_loss_targets_follow_prediction_dtype(self):
        with use_backend("numpy32"):
            logits = Tensor(np.zeros(4), requires_grad=True)
        # Outside any backend context, float64 targets must not promote a
        # float32 model's loss graph (same weak-operand rule as binary ops).
        loss = F.binary_cross_entropy(logits.sigmoid(), np.ones(4))
        assert loss.dtype == np.float32
        assert F.mse_loss(logits.sigmoid(), np.ones(4)).dtype == np.float32

    def test_float32_bce_stays_finite_at_extremes(self):
        with use_backend("numpy32"):
            # sigmoid saturates to exactly 1.0 in float32 for large logits;
            # the dtype-aware clip keeps both log terms finite.
            logits = Tensor(np.array([40.0, -40.0]), requires_grad=True)
            loss = F.binary_cross_entropy(logits.sigmoid(), np.array([0.0, 1.0]))
            assert np.isfinite(loss.item())
            loss.backward()
            assert np.all(np.isfinite(logits.grad))


# ----------------------------------------------------------------------
# Spec and end-to-end plumbing
# ----------------------------------------------------------------------
class TestSpecPlumbing:
    def test_spec_records_backend_and_round_trips(self):
        spec = small_spec(backend="numpy32")
        assert spec.backend == "numpy32"
        assert spec.to_dict()["backend"] == "numpy32"
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.replace(backend="numpy").backend == "numpy"

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown tensor backend"):
            small_spec(backend="tpu")

    def test_spec_default_backend_follows_session(self):
        assert small_spec().backend == active_backend().name
        with use_backend("numpy32"):
            assert small_spec().backend == "numpy32"

    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "fedmf", "metamf", "centralized"])
    def test_numpy32_builds_float32_models(self, trainer):
        adapter = get_trainer(trainer)(
            small_spec(trainer=trainer, backend="numpy32"), small_dataset()
        )
        dtypes = {
            value.dtype
            for value in adapter.serving_model().state_dict().values()
            if value.dtype.kind == "f"
        }
        assert dtypes == {np.dtype(np.float32)}

    def test_direct_drivers_honor_config_backend(self):
        # Drivers constructed without the adapter must still honor the
        # configured backend (model dtype and the serial fit loop).
        from repro.core.protocol import PTFFedRec
        from repro.federated.base import FederatedConfig
        from repro.federated.fedmf import FedMF

        dataset = small_dataset()
        system = FedMF(dataset, FederatedConfig(rounds=1, backend="numpy32"))
        assert next(iter(system.model.parameters())).dtype == np.float32
        system.fit(rounds=1)
        assert next(iter(system.model.parameters())).dtype == np.float32

        ptf = PTFFedRec(dataset, small_spec(backend="numpy32", rounds=1))
        assert next(iter(ptf.server.model.parameters())).dtype == np.float32
        assert next(iter(ptf.clients[0].model.parameters())).dtype == np.float32
        ptf.fit(rounds=1)
        assert next(iter(ptf.clients[0].model.parameters())).dtype == np.float32

    def test_numpy32_metrics_close_to_reference(self):
        dataset = small_dataset()
        reference = repro.run(small_spec(backend="numpy"), dataset)
        fast = repro.run(small_spec(backend="numpy32"), dataset)
        assert fast.final.ndcg == pytest.approx(reference.final.ndcg, abs=5e-3)
        assert fast.final.hit_rate == pytest.approx(reference.final.hit_rate, abs=5e-3)

    def test_numpy32_partial_participation_bit_identical(self):
        # client_fraction < 1 leaves cohort members with different Adam
        # step counts, exercising StackedAdam's per-client bias-correction
        # path — whose corrections must carry the float32 dtype to avoid
        # double rounding against the serial fused kernel.
        dataset = small_dataset()
        client_states = []
        for mode in ("serial", "batched"):
            adapter = get_trainer("ptf")(
                small_spec(backend="numpy32", scheduler=mode, rounds=3,
                           client_fraction=0.5), dataset
            )
            adapter.fit()
            client_states.append({
                user: client.model.state_dict()
                for user, client in adapter.system.clients.items()
            })
        serial, batched = client_states
        assert serial.keys() == batched.keys()
        for user in serial:
            for key in serial[user]:
                np.testing.assert_array_equal(serial[user][key], batched[user][key])

    @pytest.mark.parametrize("scheduler", ["serial", "batched"])
    def test_numpy32_schedulers_bit_identical(self, scheduler):
        dataset = small_dataset()
        results = []
        for mode in ("serial", scheduler):
            adapter = get_trainer("ptf")(
                small_spec(backend="numpy32", scheduler=mode), dataset
            )
            adapter.fit()
            results.append(adapter.serving_model().state_dict())
        for key in results[0]:
            np.testing.assert_array_equal(results[0][key], results[1][key])


class TestCheckpointBackend:
    def test_manifest_records_backend_and_resumes(self, tmp_path):
        dataset = small_dataset()
        spec = small_spec(backend="numpy32", rounds=4)
        full = repro.run(spec, dataset)

        half = get_trainer("ptf")(spec.replace(rounds=2), dataset)
        half.fit()
        path = save_checkpoint(tmp_path / "ckpt", half, spec=spec.replace(rounds=2))

        checkpoint = load_checkpoint(path)
        assert checkpoint.backend == "numpy32"
        assert checkpoint.dtype == "float32"
        assert checkpoint.spec.backend == "numpy32"

        resumed = repro.run(spec, dataset, resume_from=path)
        assert resumed.final.ndcg == full.final.ndcg
        assert resumed.final.hit_rate == full.final.hit_rate

        restored = checkpoint.restore(dataset)
        dtypes = {
            value.dtype
            for value in restored.serving_model().state_dict().values()
            if value.dtype.kind == "f"
        }
        assert dtypes == {np.dtype(np.float32)}

    def test_legacy_manifest_defaults_to_reference_backend(self, tmp_path):
        # A pre-backend checkpoint (no backend keys anywhere) must load as
        # the float64 reference even when the ambient session backend is
        # numpy32 — never reinterpreted at the session's precision.
        import json

        dataset = small_dataset()
        spec = small_spec(rounds=2, backend="numpy")
        adapter = get_trainer("ptf")(spec, dataset)
        adapter.fit()
        path = save_checkpoint(tmp_path / "ckpt", adapter, spec=spec)

        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["backend"], manifest["dtype"], manifest["spec"]["backend"]
        manifest["schema_version"] = 1  # what the pre-backend writer stamped
        manifest_path.write_text(json.dumps(manifest))

        with use_backend("numpy32"):
            checkpoint = load_checkpoint(path)
            assert checkpoint.backend == "numpy"
            assert checkpoint.dtype == "float64"
            assert checkpoint.spec.backend == "numpy"
            restored = checkpoint.restore(dataset)
        dtypes = {
            value.dtype
            for value in restored.serving_model().state_dict().values()
            if value.dtype.kind == "f"
        }
        assert dtypes == {np.dtype(np.float64)}

    def test_loaded_optimizer_state_does_not_alias_source(self):
        # The fused in-place kernels mutate moment buffers directly; a
        # loaded state dict must therefore be copied in, or further
        # training would corrupt the caller's tree (e.g. Checkpoint.state).
        with use_backend("numpy32"):
            parameter = Tensor(np.ones(3), requires_grad=True)
            parameter.grad = np.full(3, 0.5, dtype=np.float32)
            optimizer = Adam([parameter])
            optimizer.step()
            snapshot = optimizer.state_dict()
            frozen = {k: {i: v.copy() for i, v in m.items()} if k != "steps" else dict(m)
                      for k, m in snapshot.items()}
            optimizer.load_state_dict(snapshot)
            optimizer.step()
        for key in ("first_moment", "second_moment"):
            np.testing.assert_array_equal(snapshot[key][0], frozen[key][0])

    def test_restore_under_different_backend_rejected(self, tmp_path):
        dataset = small_dataset()
        spec = small_spec(rounds=2, backend="numpy")
        adapter = get_trainer("ptf")(spec, dataset)
        adapter.fit()
        path = save_checkpoint(tmp_path / "ckpt", adapter, spec=spec)
        checkpoint = load_checkpoint(path)
        with pytest.raises(ValueError, match="tensor.*backend"):
            checkpoint.restore(dataset, spec=spec.replace(backend="numpy32"))

    def test_optimizer_pickles_without_scratch(self):
        import pickle

        with use_backend("numpy32"):
            parameter = Tensor(np.ones(3), requires_grad=True)
            parameter.grad = np.full(3, 0.5, dtype=np.float32)
            optimizer = Adam([parameter])
            optimizer.step()
        assert optimizer._scratch  # populated by the fused step
        clone = pickle.loads(pickle.dumps(optimizer))
        assert clone._scratch == {}  # rebuilt lazily on the next step
        assert clone.backend.name == "numpy32"

    def test_resume_under_different_backend_rejected(self, tmp_path):
        dataset = small_dataset()
        spec = small_spec(backend="numpy32", rounds=3)
        half = get_trainer("ptf")(spec.replace(rounds=2), dataset)
        half.fit()
        path = save_checkpoint(tmp_path / "ckpt", half, spec=spec.replace(rounds=2))
        with pytest.raises(ValueError, match="resume spec does not match"):
            repro.run(spec.replace(backend="numpy"), dataset, resume_from=path)

"""Tests for the recommendation models (NeuMF, NGCF, LightGCN, MF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    LightGCN,
    MatrixFactorization,
    NGCF,
    NeuMF,
    PopularityRecommender,
    build_normalized_adjacency,
    create_model,
    pairs_from_scores,
    MODEL_REGISTRY,
)
from repro.nn.losses import PointwiseBCELoss
from repro.optim import Adam
from repro.tensor import check_gradients

NUM_USERS = 6
NUM_ITEMS = 12


def _make(model_class, rng, **kwargs):
    defaults = {"embedding_dim": 8}
    defaults.update(kwargs)
    return model_class(NUM_USERS, NUM_ITEMS, rng=rng, **defaults)


def _all_models(rng):
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
    return {
        "mf": _make(MatrixFactorization, rng),
        "neumf": _make(NeuMF, rng, mlp_layers=(16, 8)),
        "ngcf": _make(NGCF, rng, num_layers=2, interaction_pairs=pairs),
        "lightgcn": _make(LightGCN, rng, num_layers=2, interaction_pairs=pairs),
    }


class TestScoreContract:
    @pytest.mark.parametrize("name", ["mf", "neumf", "ngcf", "lightgcn"])
    def test_scores_are_probabilities(self, name, rng):
        model = _all_models(rng)[name]
        users = np.array([0, 1, 2, 3])
        items = np.array([0, 5, 7, 11])
        scores = model.score(users, items).numpy()
        assert scores.shape == (4,)
        assert np.all((scores > 0.0) & (scores < 1.0))

    @pytest.mark.parametrize("name", ["mf", "neumf", "ngcf", "lightgcn"])
    def test_score_all_items_shape(self, name, rng):
        model = _all_models(rng)[name]
        scores = model.score_all_items(2)
        assert scores.shape == (NUM_ITEMS,)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("name", ["mf", "neumf", "ngcf", "lightgcn"])
    def test_recommend_excludes_items(self, name, rng):
        model = _all_models(rng)[name]
        excluded = [0, 1, 2]
        recommended = model.recommend(1, k=5, exclude_items=excluded)
        assert len(recommended) == 5
        assert not set(recommended.tolist()) & set(excluded)

    @pytest.mark.parametrize("name", ["mf", "neumf", "ngcf", "lightgcn"])
    def test_deterministic_given_seed(self, name):
        first = _all_models(np.random.default_rng(7))[name]
        second = _all_models(np.random.default_rng(7))[name]
        users = np.array([0, 3])
        items = np.array([2, 9])
        np.testing.assert_allclose(
            first.score_pairs(users, items), second.score_pairs(users, items)
        )

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            MatrixFactorization(0, 5, rng=rng)


class TestTrainability:
    @pytest.mark.parametrize("name", ["mf", "neumf", "ngcf", "lightgcn"])
    def test_loss_decreases_with_training(self, name, rng):
        model = _all_models(rng)[name]
        optimizer = Adam(model.parameters(), lr=0.02)
        loss_fn = PointwiseBCELoss()
        users = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        items = np.array([1, 7, 2, 9, 3, 10, 4, 11])
        labels = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        model.train()
        first = None
        for _ in range(60):
            loss = loss_fn(model.score(users, items), labels)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.6 * first

    def test_neumf_gradients_match_finite_differences(self, rng):
        model = NeuMF(3, 5, embedding_dim=3, mlp_layers=(4,), rng=rng)
        users = np.array([0, 1, 2])
        items = np.array([1, 2, 4])
        labels = np.array([1.0, 0.0, 1.0])
        loss_fn = PointwiseBCELoss()
        parameters = list(model.parameters())

        def loss():
            return loss_fn(model.score(users, items), labels)

        if parameters[0].dtype != np.float64:
            # The smallest float32 finite-difference step still straddles
            # ReLU kinks of a randomly initialized MLP, so the numeric
            # estimate averages two slopes and cannot certify the backward.
            # Op-level float32 gradient checks (with inputs kept away from
            # kinks) live in tests/test_tensor_backend.py.
            pytest.skip("end-to-end ReLU-net gradcheck requires float64")
        model.eval()  # keep update counters quiet during repeated evaluation
        check_gradients(loss, parameters[:4], atol=2e-4)

    def test_mf_gradients_match_finite_differences(self, rng):
        model = MatrixFactorization(3, 4, embedding_dim=3, rng=rng)
        users = np.array([0, 1, 2])
        items = np.array([1, 2, 3])
        labels = np.array([1.0, 0.0, 1.0])
        loss_fn = PointwiseBCELoss()

        def loss():
            return loss_fn(model.score(users, items), labels)

        model.eval()
        check_gradients(loss, list(model.parameters()), atol=2e-4)


class TestGraphModels:
    def test_adjacency_is_symmetric_and_normalized(self):
        pairs = [(0, 0), (0, 1), (1, 1), (2, 3)]
        adjacency = build_normalized_adjacency(3, 4, pairs)
        dense = adjacency.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        # Largest eigenvalue of the symmetric normalized adjacency is <= 1.
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-8

    def test_adjacency_empty_graph(self):
        adjacency = build_normalized_adjacency(2, 3, [])
        assert adjacency.nnz == 0

    def test_duplicate_edges_do_not_inflate_weights(self):
        once = build_normalized_adjacency(2, 2, [(0, 0)])
        twice = build_normalized_adjacency(2, 2, [(0, 0), (0, 0)])
        np.testing.assert_allclose(once.toarray(), twice.toarray())

    def test_pairs_from_scores_threshold(self):
        users = np.array([0, 0, 1])
        items = np.array([1, 2, 3])
        scores = np.array([0.9, 0.2, 0.6])
        pairs = pairs_from_scores(users, items, scores, threshold=0.5)
        assert {(0, 1), (1, 3)} == {tuple(p) for p in pairs}

    def test_pairs_from_scores_deduplicates(self):
        users = np.array([0, 0])
        items = np.array([1, 1])
        scores = np.array([0.9, 0.8])
        assert pairs_from_scores(users, items, scores).shape == (1, 2)

    def test_pairs_from_scores_length_mismatch(self):
        with pytest.raises(ValueError):
            pairs_from_scores(np.array([0]), np.array([1, 2]), np.array([0.5]))

    @pytest.mark.parametrize("model_class", [NGCF, LightGCN])
    def test_set_interaction_graph_changes_predictions(self, model_class, rng):
        model = model_class(NUM_USERS, NUM_ITEMS, embedding_dim=8, num_layers=2, rng=rng)
        users = np.array([0, 1])
        items = np.array([2, 3])
        before = model.score_pairs(users, items)
        model.set_interaction_graph([(0, 2), (1, 3), (2, 5)])
        after = model.score_pairs(users, items)
        assert not np.allclose(before, after)

    @pytest.mark.parametrize("model_class", [NGCF, LightGCN])
    def test_eval_cache_invalidation_on_train(self, model_class, rng):
        model = model_class(4, 6, embedding_dim=4, num_layers=1, rng=rng,
                            interaction_pairs=[(0, 1)])
        users = np.array([0])
        items = np.array([1])
        baseline = model.score_pairs(users, items)
        # Perturb the embedding; the eval cache must not serve stale values
        # after a train()/eval() cycle.
        model.train()
        model.node_embedding.data = model.node_embedding.data + 0.5
        model.eval()
        changed = model.score_pairs(users, items)
        assert not np.allclose(baseline, changed)

    @pytest.mark.parametrize("model_class", [NGCF, LightGCN])
    def test_item_update_counts_tracked(self, model_class, rng):
        model = model_class(4, 6, embedding_dim=4, num_layers=1, rng=rng)
        model.train()
        model.score(np.array([0, 1]), np.array([2, 2]))
        counts = model.item_update_counts()
        assert counts[2] == 2
        assert counts.sum() == 2


class TestPublicParameterCounts:
    def test_mf_public_count(self, rng):
        model = MatrixFactorization(NUM_USERS, NUM_ITEMS, embedding_dim=8, rng=rng)
        assert model.public_parameter_count() == NUM_ITEMS * 8 + NUM_ITEMS

    def test_neumf_public_excludes_user_tables(self, rng):
        model = NeuMF(NUM_USERS, NUM_ITEMS, embedding_dim=8, mlp_layers=(16, 8), rng=rng)
        total = model.num_parameters()
        private = 2 * NUM_USERS * 8
        assert model.public_parameter_count() == total - private

    def test_lightgcn_public_count(self, rng):
        model = LightGCN(NUM_USERS, NUM_ITEMS, embedding_dim=8, rng=rng)
        assert model.public_parameter_count() == NUM_ITEMS * 8


class TestFactoryAndPopularity:
    def test_factory_creates_all_registered_models(self, rng):
        for name in MODEL_REGISTRY:
            model = create_model(name, 4, 6, embedding_dim=4, rng=rng)
            assert model.num_users == 4 and model.num_items == 6

    def test_factory_is_case_insensitive(self, rng):
        assert isinstance(create_model("NeuMF", 3, 3, rng=rng), NeuMF)

    def test_factory_unknown_name(self, rng):
        with pytest.raises(KeyError):
            create_model("transformer4rec", 3, 3, rng=rng)

    def test_popularity_recommender_orders_by_count(self):
        model = PopularityRecommender(3, 5)
        model.fit(np.array([0, 5, 2, 1, 3]))
        recommended = model.recommend(0, k=3)
        assert recommended[0] == 1

    def test_popularity_requires_matching_shape(self):
        with pytest.raises(ValueError):
            PopularityRecommender(3, 5).fit(np.array([1, 2]))

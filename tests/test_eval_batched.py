"""Batched full-ranking evaluation: exact parity with the per-user path.

The batched evaluator is a pure execution change, like the engine's
schedulers: chunked cohort scoring, one fancy-indexed mask per chunk, one
``argpartition`` cut and vectorized metric tables must reproduce the
per-user reference loop **exactly** — the suite asserts ``RankingResult``
equality with ``==``, not approximate closeness — across every registered
trainer, the stacked client-model variant, and the degenerate edge cases
(k beyond the candidate pool, users without test items, duplicates).

Also home to the regression tests for the masked-item leak: no top-k cut
site (``models.base.Recommender.recommend``, ``serve.Recommender.recommend``,
``RankingEvaluator.evaluate_user_scores``) may ever return an excluded
item, even when fewer than ``k`` candidates survive the mask.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import debug_dataset
from repro.data.dataset import InteractionDataset
from repro.eval import DEFAULT_CHUNK_SIZE, RankingEvaluator, batch_scores
from repro.eval.metrics import batch_metrics_at_k
from repro.experiments import ExperimentSpec, create_trainer
from repro.models.factory import create_model
from repro.serve import Recommender as ServeRecommender
from repro.utils import RngFactory


def eval_spec(trainer: str = "ptf", **overrides) -> ExperimentSpec:
    base = dict(
        trainer=trainer,
        seed=29,
        embedding_dim=8,
        rounds=2,
        client_local_epochs=1,
        server_epochs=1,
        alpha=10,
    )
    base.update(overrides)
    trainer = base.pop("trainer")
    seed = base.pop("seed")
    return ExperimentSpec.from_flat(trainer=trainer, seed=seed, **base)


@pytest.fixture(scope="module")
def dataset() -> InteractionDataset:
    return debug_dataset(
        RngFactory(12345).spawn("tiny-data"), num_users=25, num_items=50,
        num_interactions=500,
    )


@pytest.fixture(scope="module")
def ptf_adapter(dataset):
    return create_trainer(eval_spec("ptf"), dataset).fit()


# ----------------------------------------------------------------------
# Batched == per-user across every registered trainer
# ----------------------------------------------------------------------
class TestTrainerParity:
    # All 5 registry trainers, plus extra server models so every scoring
    # path is exercised: mf/metamf closed forms, graph propagation, and
    # NeuMF's chunked all-pairs fallback.
    @pytest.mark.parametrize("trainer,overrides", [
        ("ptf", {}),
        ("fcf", {}),
        ("fedmf", {}),
        ("metamf", {}),
        ("centralized", {}),
        ("ptf", {"server_model": "lightgcn"}),
        ("centralized", {"server_model": "neumf"}),
        ("centralized", {"server_model": "mf"}),
    ])
    def test_batched_equals_per_user(self, trainer, overrides, dataset):
        adapter = create_trainer(eval_spec(trainer, **overrides), dataset).fit()
        reference = adapter.evaluate(k=10, batch_size=None)
        assert adapter.evaluate(k=10, batch_size=DEFAULT_CHUNK_SIZE) == reference
        # Chunk boundaries are invisible: a chunk size that splits the
        # cohort unevenly produces the identical result.
        assert adapter.evaluate(k=10, batch_size=7) == reference
        assert adapter.evaluate(k=10, batch_size=1) == reference

    def test_max_users_parity(self, ptf_adapter):
        for max_users in (1, 5, 10_000):
            assert ptf_adapter.evaluate(
                k=10, max_users=max_users, batch_size=16
            ) == ptf_adapter.evaluate(k=10, max_users=max_users, batch_size=None)

    def test_k_beyond_catalogue_parity(self, ptf_adapter, dataset):
        evaluator = RankingEvaluator(dataset, k=dataset.num_items + 25)
        model = ptf_adapter.serving_model()
        assert evaluator.evaluate(model, batch_size=8) == evaluator.evaluate(
            model, batch_size=None
        )

    def test_duplicate_users_parity(self, ptf_adapter, dataset):
        evaluator = RankingEvaluator(dataset, k=10)
        model = ptf_adapter.serving_model()
        users = [3, 3, 7, 3, 7, 11]
        batched = evaluator.evaluate(model, users=users, batch_size=4)
        reference = evaluator.evaluate(model, users=users, batch_size=None)
        assert batched == reference
        # Duplicates are graded once per occurrence, like the serial loop.
        assert batched.num_users_evaluated == len(
            [u for u in users if dataset.test_items(u).size]
        )

    def test_users_without_test_items_are_skipped(self, ptf_adapter):
        dataset = debug_dataset(
            RngFactory(7).spawn("no-test"), num_users=8, num_items=20,
            num_interactions=60,
        )
        # Rebuild with an explicit empty test split: nobody can be ranked.
        bare = InteractionDataset(
            dataset.num_users, dataset.num_items,
            [tuple(pair) for pair in dataset.train_pairs],
        )
        model = create_model(
            "mf", num_users=bare.num_users, num_items=bare.num_items,
            embedding_dim=4, rng=RngFactory(3).spawn("m"),
        )
        evaluator = RankingEvaluator(bare, k=5)
        batched = evaluator.evaluate(model, batch_size=4)
        assert batched == evaluator.evaluate(model, batch_size=None)
        assert batched.num_users_evaluated == 0

    def test_spec_batch_size_flows_through(self, dataset):
        spec = eval_spec("fcf").replace(batch_size=5)
        assert spec.evaluation.batch_size == 5
        adapter = create_trainer(spec, dataset).fit()
        assert adapter.evaluate(k=10) == adapter.evaluate(k=10, batch_size=None)


# ----------------------------------------------------------------------
# Stacked client-model evaluation (PTF-FedRec's per-client path)
# ----------------------------------------------------------------------
class TestStackedClientEvaluation:
    def test_stacked_equals_per_user(self, ptf_adapter):
        ptf = ptf_adapter.system
        reference = ptf.evaluate_client_models(k=10, batch_size=None)
        assert ptf.evaluate_client_models(k=10) == reference
        assert ptf.evaluate_client_models(k=10, batch_size=6) == reference

    def test_stacked_respects_max_users(self, ptf_adapter):
        ptf = ptf_adapter.system
        assert ptf.evaluate_client_models(
            k=10, max_users=5, batch_size=3
        ) == ptf.evaluate_client_models(k=10, max_users=5, batch_size=None)

    def test_score_matrix_variant_matches_score_fn(self, ptf_adapter, dataset):
        """evaluate_score_matrices == evaluate_per_user_scores row for row."""
        model = ptf_adapter.serving_model()
        evaluator = RankingEvaluator(dataset, k=10)
        per_user = evaluator.evaluate_per_user_scores(
            lambda user: model.score_all_items(user), users=dataset.users
        )
        stacked = evaluator.evaluate_score_matrices(
            lambda users: np.stack([model.score_all_items(int(u)) for u in users]),
            users=dataset.users,
            batch_size=9,
        )
        assert stacked == per_user

    def test_score_matrix_shape_is_validated(self, dataset):
        evaluator = RankingEvaluator(dataset, k=5)
        with pytest.raises(ValueError, match="score matrix"):
            evaluator.evaluate_score_matrices(
                lambda users: np.zeros((users.size, 3)), users=dataset.users
            )

    def test_score_matrix_variant_rejects_none_batch_size(self, dataset):
        evaluator = RankingEvaluator(dataset, k=5)
        with pytest.raises(ValueError, match="batch_size"):
            evaluator.evaluate_score_matrices(
                lambda users: np.zeros((users.size, dataset.num_items)),
                users=dataset.users,
                batch_size=None,
            )

    def test_supplied_matrix_is_not_mutated(self, dataset):
        """The evaluator masks a *copy* of an externally supplied matrix."""
        evaluator = RankingEvaluator(dataset, k=5)
        matrix = np.full((len(dataset.users), dataset.num_items), 0.5)
        snapshot = matrix.copy()
        evaluator.evaluate_score_matrices(
            lambda users: matrix[: users.size], users=dataset.users,
            batch_size=len(dataset.users),
        )
        np.testing.assert_array_equal(matrix, snapshot)

    def test_graph_cache_invalidated_by_weight_reload(self, dataset):
        """Loading new weights into an eval-mode graph model must not serve
        stale propagation results to the batched evaluator."""
        def build(seed):
            model = create_model(
                "lightgcn", num_users=dataset.num_users,
                num_items=dataset.num_items, embedding_dim=4,
                rng=RngFactory(seed).spawn("g"), num_layers=2,
            )
            model.set_interaction_graph(dataset.train_pairs)
            model.eval()
            return model

        evaluator = RankingEvaluator(dataset, k=5)
        model = build(1)
        stale = evaluator.evaluate(model, batch_size=4)  # populates the cache
        model.load_state_dict(build(2).state_dict())
        refreshed = evaluator.evaluate(model, batch_size=4)
        assert refreshed == evaluator.evaluate(model, batch_size=None)
        assert refreshed != stale

    def test_graph_model_propagates_once_per_evaluation(self, dataset):
        """Chunked evaluation reuses the eval-mode propagation cache."""
        model = create_model(
            "lightgcn", num_users=dataset.num_users, num_items=dataset.num_items,
            embedding_dim=4, rng=RngFactory(21).spawn("g"), num_layers=2,
        )
        model.set_interaction_graph(dataset.train_pairs)
        model.train()
        calls = {"count": 0}
        original = model.propagate

        def counting_propagate():
            calls["count"] += 1
            return original()

        model.propagate = counting_propagate
        evaluator = RankingEvaluator(dataset, k=5)
        batched = evaluator.evaluate(model, batch_size=4)
        assert calls["count"] == 1
        assert model.training  # mode restored
        calls["count"] = 0
        reference = evaluator.evaluate(model, batch_size=None)
        assert calls["count"] > 1  # the per-user loop re-propagates
        assert batched == reference


# ----------------------------------------------------------------------
# Masked-item leak regressions (all three top-k cut sites)
# ----------------------------------------------------------------------
@pytest.fixture
def saturated_dataset() -> InteractionDataset:
    """User 0 trained on every item but one; user 1 is ordinary."""
    num_items = 6
    train = [(0, i) for i in range(num_items - 1)] + [(1, 0), (1, 1)]
    test = [(0, num_items - 1), (1, 2)]
    return InteractionDataset(2, num_items, train, test)


@pytest.fixture
def saturated_model(saturated_dataset):
    return create_model(
        "mf", num_users=2, num_items=saturated_dataset.num_items,
        embedding_dim=4, rng=RngFactory(11).spawn("sat"),
    )


class TestMaskedItemLeak:
    def test_model_recommend_truncates(self, saturated_dataset, saturated_model):
        exclude = saturated_dataset.train_items(0)
        ranked = saturated_model.recommend(0, k=4, exclude_items=exclude)
        assert ranked.tolist() == [saturated_dataset.num_items - 1]
        # Without exclusions the full k comes back.
        assert saturated_model.recommend(0, k=4).shape == (4,)

    def test_serve_recommend_truncates_scalar(self, saturated_dataset, saturated_model):
        service = ServeRecommender(
            saturated_model,
            seen_items={u: saturated_dataset.train_items(u)
                        for u in saturated_dataset.users},
        )
        ranked = service.recommend(0, k=4)
        assert ranked.tolist() == [saturated_dataset.num_items - 1]

    def test_serve_recommend_truncates_cohort(self, saturated_dataset, saturated_model):
        service = ServeRecommender(
            saturated_model,
            seen_items={u: saturated_dataset.train_items(u)
                        for u in saturated_dataset.users},
        )
        ranked = service.recommend([0, 1], k=4)
        assert isinstance(ranked, list)
        assert ranked[0].tolist() == [saturated_dataset.num_items - 1]
        assert len(ranked[1]) == 4
        assert not set(ranked[1].tolist()) & set(
            saturated_dataset.train_items(1).tolist()
        )
        # Full-candidate cohorts keep the rectangular fast path.
        rectangular = service.recommend([0, 1], k=1)
        assert isinstance(rectangular, np.ndarray)
        assert rectangular.shape == (2, 1)

    def test_evaluate_user_scores_truncates(self, saturated_dataset):
        evaluator = RankingEvaluator(saturated_dataset, k=4)
        scores = np.linspace(0.0, 1.0, saturated_dataset.num_items)
        result = evaluator.evaluate_user_scores(0, scores)
        # Only the single unseen item can be recommended; it is the test
        # item, so the user scores a full hit with 1/k precision.
        assert result.recall == 1.0
        assert result.hit_rate == 1.0
        assert result.precision == 1.0 / 4
        assert result.ndcg == 1.0

    def test_batched_matches_per_user_on_saturated_users(
        self, saturated_dataset, saturated_model
    ):
        evaluator = RankingEvaluator(saturated_dataset, k=4)
        assert evaluator.evaluate(
            saturated_model, batch_size=2
        ) == evaluator.evaluate(saturated_model, batch_size=None)


# ----------------------------------------------------------------------
# The shared cohort scorer's chunked fallback
# ----------------------------------------------------------------------
class TestChunkedFallback:
    def test_chunked_fallback_matches_unchunked(self, dataset):
        model = create_model(
            "neumf", num_users=dataset.num_users, num_items=dataset.num_items,
            embedding_dim=4, rng=RngFactory(5).spawn("n"),
        )
        users = np.asarray(dataset.users, dtype=np.int64)
        unchunked = batch_scores(model, users, chunk_size=None)
        chunked = batch_scores(model, users, chunk_size=4)
        assert chunked.shape == unchunked.shape
        np.testing.assert_allclose(chunked, unchunked, rtol=1e-12, atol=1e-14)
        # Each chunk reproduces the per-user pass exactly at chunk_size=1.
        singles = batch_scores(model, users, chunk_size=1)
        for row, user in zip(singles, users):
            np.testing.assert_array_equal(row, model.score_all_items(int(user)))

    def test_closed_form_ignores_chunking(self, dataset):
        model = create_model(
            "mf", num_users=dataset.num_users, num_items=dataset.num_items,
            embedding_dim=4, rng=RngFactory(6).spawn("m"),
        )
        users = np.asarray(dataset.users[:10], dtype=np.int64)
        np.testing.assert_array_equal(
            batch_scores(model, users, chunk_size=3),
            batch_scores(model, users, chunk_size=None),
        )

    def test_invalid_chunk_size_raises(self, saturated_model):
        with pytest.raises(ValueError, match="chunk_size"):
            batch_scores(saturated_model, np.array([0]), chunk_size=0)


# ----------------------------------------------------------------------
# The vectorized metric kernel against the scalar reference functions
# ----------------------------------------------------------------------
class TestBatchMetrics:
    def test_matches_scalar_metrics_on_random_rankings(self):
        from repro.eval.metrics import (
            hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k,
        )

        rng = np.random.default_rng(99)
        num_items, k = 30, 8
        users = 40
        ranked = np.stack([
            rng.permutation(num_items)[:k] for _ in range(users)
        ])
        relevant = [
            rng.choice(num_items, size=rng.integers(0, 6), replace=False)
            for _ in range(users)
        ]
        relevance = np.zeros((users, k), dtype=bool)
        for row, items in enumerate(relevant):
            relevance[row] = np.isin(ranked[row], items)
        counts = np.array([items.size for items in relevant])
        recall, ndcg, precision, hit_rate = batch_metrics_at_k(relevance, counts, k)
        for row in range(users):
            assert recall[row] == recall_at_k(ranked[row], relevant[row], k)
            assert ndcg[row] == ndcg_at_k(ranked[row], relevant[row], k)
            assert precision[row] == precision_at_k(ranked[row], relevant[row], k)
            assert hit_rate[row] == hit_rate_at_k(ranked[row], relevant[row], k)

    def test_ideal_dcg_covers_counts_beyond_width(self):
        # A user with more test items than ranked slots normalizes by the
        # k-deep ideal, exactly like the scalar function.
        relevance = np.ones((1, 3), dtype=bool)
        recall, ndcg, precision, hit_rate = batch_metrics_at_k(
            relevance, np.array([10]), k=3
        )
        assert ndcg[0] == 1.0
        assert precision[0] == 1.0
        assert recall[0] == 3 / 10

    def test_wide_relevance_is_truncated_to_k(self):
        # Hits past position k must not count, matching the scalar
        # functions' ``list(recommended)[:k]`` truncation.
        relevance = np.array([[False, False, True, True]])
        recall, ndcg, precision, hit_rate = batch_metrics_at_k(
            relevance, np.array([2]), k=2
        )
        assert recall[0] == 0.0
        assert precision[0] == 0.0
        assert hit_rate[0] == 0.0
        assert ndcg[0] == 0.0

    def test_validates_shapes(self):
        with pytest.raises(ValueError, match="relevance"):
            batch_metrics_at_k(np.zeros(3, dtype=bool), np.array([1]), k=3)
        with pytest.raises(ValueError, match="relevant_counts"):
            batch_metrics_at_k(np.zeros((2, 3), dtype=bool), np.array([1]), k=3)
        with pytest.raises(ValueError, match="k must be positive"):
            batch_metrics_at_k(np.zeros((1, 3), dtype=bool), np.array([1]), k=0)

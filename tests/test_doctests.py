"""Runs the documented examples (doctests) of the public-facing modules.

CI additionally runs ``pytest --doctest-modules`` over the same modules
(see .github/workflows/ci.yml); this mirror keeps the doctest pass inside
the tier-1 suite so README/docstring examples cannot silently rot.
"""

from __future__ import annotations

import doctest

import pytest

import repro.engine
import repro.engine.batch
import repro.engine.spec
import repro.experiments.spec
import repro.sweep.spec
import repro.tensor.backend
import repro.tensor.sparse

MODULES = [
    repro.engine,
    repro.engine.spec,
    repro.engine.batch,
    repro.experiments.spec,
    repro.sweep.spec,
    repro.tensor.backend,
    repro.tensor.sparse,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_doctests_are_present():
    """The documented modules must actually carry runnable examples."""
    attempted = sum(doctest.testmod(m).attempted for m in MODULES)
    assert attempted >= 5
